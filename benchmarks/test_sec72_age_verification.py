"""§7.2 — age verification on the top-50 porn sites, four countries."""


def test_sec72_age_verification(benchmark, study, paper, reporter):
    report = benchmark.pedantic(
        lambda: study.age_verification(top_n=50,
                                       countries=("US", "UK", "ES", "RU")),
        rounds=1, iterations=1,
    )

    for country in ("US", "UK", "ES", "RU"):
        summary = report.by_country[country]
        target = (paper.age_gate_top50_fraction_russia if country == "RU"
                  else paper.age_gate_top50_fraction)
        reporter.row(
            f"{country}: sites with age gate",
            f"{target:.0%}",
            f"{summary.gate_fraction:.0%} ({len(summary.gated_sites)} of "
            f"{summary.inspected})",
        )
    western = ("US", "UK", "ES")
    reporter.row("US/UK/ES show the same gated set", "yes",
                 "yes" if report.consistent_countries(western) else "no")
    ru_only = report.only_in("RU", others=western)
    missing = report.missing_in("RU", others=western)
    reporter.row("gate only in Russia", f"{paper.age_gate_only_russia_fraction:.0%}",
                 f"{len(ru_only) / 50:.0%} ({len(ru_only)} sites)")
    reporter.row("gate everywhere except Russia",
                 f"{paper.age_gate_except_russia_fraction:.0%}",
                 f"{len(missing) / 50:.0%} ({len(missing)} sites)")
    ru = report.by_country["RU"]
    reporter.row("verifiable (login) gates in Russia", 1,
                 len(ru.login_required_sites))
    us = report.by_country["US"]
    reporter.row("button gates bypassed by the crawler", "100%",
                 f"{us.bypass_fraction:.0%}")

    assert report.consistent_countries(western)
    assert us.bypass_fraction == 1.0          # none are "verifiable"
    assert ru_only or missing                  # Russia differs
    assert len(ru.login_required_sites) >= 1   # pornhub's social login
    assert not (ru.login_required_sites & ru.bypassed_sites)
