"""Integration tests for the instrumented browser."""

import pytest

from repro.browser.browser import Browser
from repro.net.url import parse_url, registrable_domain
from repro.webgen.universe import ClientContext

ES = ClientContext("ES", "31.0.0.1")


@pytest.fixture()
def browser(universe):
    return Browser(universe, ES)


def cookie_site(universe):
    return next(
        d for d, s in sorted(universe.porn_sites.items())
        if s.responsive and not s.crawl_flaky and s.first_party_cookies > 0
        and s.embedded_services
    )


class TestVisit:
    def test_successful_visit_records_document(self, universe, browser):
        domain = cookie_site(universe)
        visit = browser.visit(domain)
        assert visit.success
        assert visit.html
        documents = [r for r in browser.log.requests
                     if r.resource_type == "document"]
        assert any(r.fqdn == domain for r in documents)

    def test_https_first_then_downgrade(self, universe):
        domain = next(
            d for d, s in sorted(universe.porn_sites.items())
            if s.responsive and not s.crawl_flaky and not s.https
        )
        browser = Browser(universe, ES)
        visit = browser.visit(domain)
        assert visit.success
        assert not visit.https
        schemes = [r.scheme for r in browser.log.requests
                   if r.resource_type == "document" and r.fqdn == domain]
        assert schemes[0] == "https"   # attempted first
        assert schemes[-1] == "http"   # succeeded after downgrade

    def test_unreachable_site(self, universe, browser):
        dead = next(d for d, s in universe.porn_sites.items()
                    if not s.responsive)
        visit = browser.visit(dead)
        assert not visit.success
        assert visit.failure_reason

    def test_subresources_fetched(self, universe, browser):
        domain = cookie_site(universe)
        browser.visit(domain)
        third_party = [
            r for r in browser.log.requests
            if registrable_domain(r.fqdn) != registrable_domain(domain)
        ]
        assert third_party

    def test_referrer_set_on_subresources(self, universe, browser):
        domain = cookie_site(universe)
        visit = browser.visit(domain)
        for record in browser.log.requests:
            if record.resource_type in ("script", "image") and \
                    record.page_domain == domain and record.initiator is None:
                assert record.referrer == visit.url

    def test_cookies_recorded_and_jar_populated(self, universe, browser):
        domain = cookie_site(universe)
        browser.visit(domain)
        assert browser.log.cookies
        assert len(browser.jar) > 0
        first_party = [c for c in browser.log.cookies if c.domain == domain]
        assert first_party

    def test_sequence_numbers_strictly_increasing(self, universe, browser):
        browser.visit(cookie_site(universe))
        sequences = [r.seq for r in browser.log.requests] + \
            [c.seq for c in browser.log.cookies]
        assert len(sequences) == len(set(sequences))

    def test_session_persists_across_visits(self, universe):
        browser = Browser(universe, ES)
        sites = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky
        )[:5]
        for site in sites:
            browser.visit(site)
        # Cookies from earlier sites are still present later (single session).
        assert len(browser.jar) > 0
        assert len({c.page_domain for c in browser.log.cookies}) >= 1

    def test_js_calls_recorded(self, universe):
        browser = Browser(universe, ES)
        sites = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky
        )[:20]
        for site in sites:
            browser.visit(site)
        assert browser.log.js_calls

    def test_keep_html_false_drops_body(self, universe):
        browser = Browser(universe, ES, keep_html=False)
        visit = browser.visit(cookie_site(universe))
        assert visit.success
        assert visit.html == ""


class TestRedirects:
    def test_sync_redirect_followed_and_relabeled(self, universe):
        """Redirect hops carry the redirector as referrer (inclusion chain)."""
        browser = Browser(universe, ES)
        response = browser.fetch(
            parse_url("https://exosrv.com/px?cb=1"),
            page_domain="syntheticpage.com",
            resource_type="image",
            referrer="https://syntheticpage.com/",
        )
        assert response is not None
        hops = [r for r in browser.log.requests if "/sync" in r.url]
        for hop in hops:
            assert hop.referrer != "https://syntheticpage.com/"

    def test_redirect_chain_bounded(self, universe):
        browser = Browser(universe, ES)
        browser.fetch(
            parse_url("https://exosrv.com/px?cb=1"),
            page_domain="deepchain.com",
            resource_type="image",
            referrer="https://deepchain.com/",
        )
        assert len(browser.log.requests) <= 6


class _StubDNS:
    def try_resolve(self, host):
        return "203.0.113.1"


class _StubUniverse:
    """Minimal server: per-scheme outcome table, call log for assertions."""

    def __init__(self, outcomes):
        self.dns = _StubDNS()
        self.outcomes = outcomes  # scheme -> Response | Exception
        self.fetched = []

    def fetch(self, request, client):
        self.fetched.append(str(request.url))
        outcome = self.outcomes[request.url.scheme]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def script_behavior(self, url):
        return None


class TestHTTPSDowngradePolicy:
    """Only a refused TLS handshake justifies retrying over plain HTTP."""

    def _visit(self, outcomes):
        universe = _StubUniverse(outcomes)
        browser = Browser(universe, ES)
        return universe, browser, browser.visit("stub-site.com")

    def test_tls_unsupported_downgrades_to_http(self):
        from repro.net.http import Headers, Response
        from repro.webgen.universe import TLSUnsupportedError

        ok = Response(parse_url("http://stub-site.com/"), 200,
                      Headers([("Content-Type", "text/html")]),
                      "<html></html>", manifest=())
        universe, browser, visit = self._visit({
            "https": TLSUnsupportedError("stub-site.com does not support HTTPS"),
            "http": ok,
        })
        assert visit.success
        assert not visit.https
        assert [u.split(":")[0] for u in universe.fetched] == ["https", "http"]

    def test_plain_fetch_error_is_not_retried_over_http(self):
        """Geo-excluded / no-route failures are scheme-independent: one
        failed document record, not two (the satellite fix)."""
        from repro.webgen.universe import FetchError

        universe, browser, visit = self._visit({
            "https": FetchError("no route to host stub-site.com"),
            "http": FetchError("no route to host stub-site.com"),
        })
        assert not visit.success
        assert visit.failure_reason == "FetchError"
        assert universe.fetched == ["https://stub-site.com/"]
        documents = [r for r in browser.log.requests
                     if r.resource_type == "document"]
        assert len(documents) == 1

    def test_unresponsive_site_is_not_retried(self):
        from repro.webgen.universe import SiteUnresponsiveError

        universe, browser, visit = self._visit({
            "https": SiteUnresponsiveError("stub-site.com"),
            "http": SiteUnresponsiveError("stub-site.com"),
        })
        assert not visit.success
        assert len(universe.fetched) == 1

    def test_tls_error_comes_from_universe_https_check(self, universe):
        """The three serving paths raise the dedicated subclass."""
        import pytest as _pytest

        from repro.net.http import Request
        from repro.webgen.universe import TLSUnsupportedError

        no_tls_site = next(
            (d for d, s in sorted(universe.porn_sites.items())
             if s.responsive and not s.crawl_flaky and not s.https),
            None,
        )
        assert no_tls_site is not None
        with _pytest.raises(TLSUnsupportedError):
            universe.fetch(Request(parse_url(f"https://{no_tls_site}/")), ES)
        no_tls_service = next(
            (d for d, s in sorted(universe.services.items()) if not s.https),
            None,
        )
        if no_tls_service is not None:
            with _pytest.raises(TLSUnsupportedError):
                universe.fetch(
                    Request(parse_url(f"https://{no_tls_service}/px")), ES
                )
