"""The OpenWPM-style measurement crawler (§3.1).

One browser session is reused for the entire crawl — the paper keeps the
session alive to capture cookie synchronization — and only landing pages
are visited (a deliberate lower bound on tracking).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from ..browser.browser import Browser
from ..browser.events import CrawlLog
from ..net.geo import VantagePoint
from ..webgen.universe import ClientContext, Universe
from .vpn import client_for

__all__ = ["OpenWPMCrawler"]


class OpenWPMCrawler:
    """Crawls landing pages with full instrumentation from one vantage point."""

    def __init__(
        self,
        universe: Universe,
        vantage: VantagePoint,
        *,
        epoch: str = "crawl",
        keep_html: bool = True,
    ) -> None:
        self.universe = universe
        self.vantage = vantage
        self.client: ClientContext = client_for(vantage, epoch=epoch)
        self.keep_html = keep_html

    def browser_for(self, log: Optional[CrawlLog] = None) -> Browser:
        """The session browser :meth:`crawl` drives, for callers that
        interleave real visits with other work (the delta-crawl layer
        splices stored sites between visits of changed ones)."""
        return Browser(self.universe, self.client, log=log,
                       keep_html=self.keep_html)

    def visit_site(self, browser: Browser, domain: str,
                   checkpoint: Optional[Callable[
                       [str, CrawlLog, Tuple[int, int, int, int]], None
                   ]] = None) -> None:
        """One landing-page visit plus its checkpoint/trim handling."""
        log = browser.log
        marks = (len(log.visits), len(log.requests),
                 len(log.cookies), len(log.js_calls))
        browser.visit(domain)
        if checkpoint is not None and checkpoint(domain, log, marks):
            log.clear_events()

    def crawl(self, domains: Iterable[str],
              *, log: Optional[CrawlLog] = None,
              checkpoint: Optional[Callable[
                  [str, CrawlLog, Tuple[int, int, int, int]], None
              ]] = None,
              progress: Optional[Callable[..., None]] = None) -> CrawlLog:
        """Visit each domain's landing page once, in order.

        A single cookie jar spans the whole crawl; pass an existing ``log``
        to append (used when crawling the porn and regular corpora in the
        same session, and by the datastore when resuming an aborted run).

        ``checkpoint(domain, log, marks)`` fires after every completed
        visit with the pre-visit lengths of the log's (visits, requests,
        cookies, js_calls) lists, so a persistence layer can durably
        append exactly that site's event slice (see
        :func:`repro.datastore.stored_crawl`).  A checkpoint returning a
        truthy value asks for *trim mode*: the just-persisted events are
        dropped from memory (the sequence counter keeps running), which
        bounds crawl RSS by one site's events instead of the whole run.

        ``progress(event, **fields)`` is the generic observation hook the
        CLI ``--stats`` output and the measurement service share: it
        fires as ``progress("site_started", country=..., domain=...,
        index=i, total=n)`` before each visit and ``"site_finished"``
        *after* the visit's checkpoint has committed — so an exception
        raised from a ``site_finished`` callback (the service's
        cooperative cancellation) can never tear a site's stored slice.
        """
        browser = self.browser_for(log)
        log = browser.log
        domains = list(domains)
        country = self.vantage.country_code
        for index, domain in enumerate(domains):
            if progress is not None:
                progress("site_started", country=country, domain=domain,
                         index=index, total=len(domains))
            self.visit_site(browser, domain, checkpoint)
            if progress is not None:
                progress("site_finished", country=country, domain=domain,
                         index=index, total=len(domains))
        return log
