"""§4.1 — monetization models (14% subscriptions; 23% of those paid)."""

from repro.core.business import classify_business_models


def test_sec41_business(benchmark, study, paper, reporter):
    inspections = study.inspections()
    report = benchmark(lambda: classify_business_models(inspections))

    reporter.row("sites offering subscriptions",
                 f"{paper.subscription_fraction:.0%}",
                 f"{report.subscription_fraction:.1%}")
    reporter.row("of those, behind a paywall",
                 f"{paper.paid_subscription_fraction:.0%}",
                 f"{report.paid_fraction_of_subscriptions:.1%}")
    reporter.row("sites inspected", len(study.corpus_domains()),
                 report.inspected)

    assert 0.10 <= report.subscription_fraction <= 0.20
    assert 0.15 <= report.paid_fraction_of_subscriptions <= 0.35
