"""Tests for the universe builder's calibration machinery."""

import pytest

from repro.webgen import UniverseConfig, build_universe
from repro.webgen.config import CalibrationTargets
from repro.webgen.organizations import (
    PornOperator,
    TailOrgAllocator,
    operators_from_targets,
)
from repro.util import rng_for


class TestOperators:
    def test_roster_from_targets(self):
        operators = operators_from_targets(CalibrationTargets())
        assert len(operators) == 24
        assert sum(op.site_count for op in operators) == 286
        mindgeek = next(op for op in operators if op.name == "MindGeek")
        assert mindgeek.flagship_domain == "pornhub.com"
        assert mindgeek.flagship_best_rank == 22

    def test_legal_name_suffix(self):
        assert PornOperator("SexMex", 12, "sexmex.xxx", 1).legal_name == \
            "SexMex Ltd."
        assert PornOperator("AFS Media LTD", 5, "x.com", 1).legal_name == \
            "AFS Media LTD"

    def test_tail_org_allocator_sizes(self):
        allocator = TailOrgAllocator(rng_for(3, "orgs-test"),
                                     mean_domains_per_org=3.0, max_domains=8)
        for _ in range(500):
            allocator.next_org()
        sizes = allocator.organizations
        assert sum(sizes.values()) == 500
        assert max(sizes.values()) <= 8
        assert min(sizes.values()) >= 1
        # Several multi-domain organizations exist (attribution fodder).
        assert sum(1 for size in sizes.values() if size >= 2) > 10


class TestCalibrationStructure:
    """The generated universe honors its structural calibration targets."""

    def test_cookie_free_sites_have_no_cookie_setting_embeds(self, universe):
        free = 0
        for site in universe.porn_sites.values():
            if not site.responsive or site.crawl_flaky:
                continue
            setters = [
                s for s in site.embedded_services
                if universe.services[s].sets_cookies
            ]
            if not setters:
                free += 1
        total = sum(1 for s in universe.porn_sites.values()
                    if s.responsive and not s.crawl_flaky)
        # ~28% of sites must stay free of cookie-setting third parties.
        assert 0.15 <= free / total <= 0.40

    def test_non_https_services_avoid_https_sites(self, universe):
        violations = 0
        for site in universe.porn_sites.values():
            if not site.https:
                continue
            for domain in site.embedded_services:
                if not universe.services[domain].https:
                    violations += 1
        assert violations == 0

    def test_every_crawlable_site_has_embeds(self, universe):
        for site in universe.porn_sites.values():
            if site.responsive and not site.crawl_flaky:
                assert len(site.embedded_services) >= 2

    def test_owner_cluster_sizes_scale(self, universe):
        from collections import Counter

        counts = Counter(s.owner for s in universe.porn_sites.values()
                         if s.owner)
        scale = universe.config.scale
        assert counts["Gamma Entertainment"] == max(1, round(65 * scale))
        assert counts["MindGeek"] == max(1, round(54 * scale))

    def test_whois_coverage_split(self, universe):
        exposed = hidden = 0
        for domain, service in universe.services.items():
            if universe.whois.organization_of(domain):
                exposed += 1
            else:
                hidden += 1
        # ~74% of services register openly (the attributable fraction).
        assert exposed / (exposed + hidden) > 0.6

    def test_rtb_bidders_not_directly_embedded(self, universe):
        embedded = set()
        for site in universe.porn_sites.values():
            embedded.update(site.embedded_services)
        for bidder in universe.rtb_bidders:
            assert bidder not in embedded

    def test_easylist_contains_named_and_tail_rules(self, universe):
        text = universe.easylist_text
        assert "||exoclick.com^" in text
        assert "||ero-advertising.com/ad/" in text       # path-only rule
        assert "||ero-advertising.com^" not in text
        assert text.count("||") > 20

    def test_disconnect_list_is_incomplete(self, universe):
        """Disconnect covers far fewer organizations than exist (§4.2(3))."""
        all_orgs = {s.organization for s in universe.services.values()
                    if s.organization}
        assert len(universe.disconnect.organizations) < len(all_orgs)

    def test_miner_prevalence_tiny(self, universe):
        miner_sites = [
            s for s in universe.porn_sites.values()
            if any(universe.services[d].miner for d in s.embedded_services)
        ]
        assert len(miner_sites) <= max(3, 0.01 * len(universe.porn_sites))

    def test_scale_changes_corpus_size(self):
        small = build_universe(UniverseConfig(seed=11, scale=0.01))
        large = build_universe(UniverseConfig(seed=11, scale=0.03))
        assert len(large.porn_sites) > 2 * len(small.porn_sites)

    def test_seed_changes_universe(self):
        first = build_universe(UniverseConfig(seed=1, scale=0.01))
        second = build_universe(UniverseConfig(seed=2, scale=0.01))
        assert set(first.porn_sites) != set(second.porn_sites)


class TestGeoStructure:
    def test_country_unique_services_exist(self, universe):
        for code in ("US", "UK", "ES", "RU", "IN", "SG"):
            unique = [
                s for s in universe.services.values()
                if s.countries == frozenset({code})
            ]
            assert unique, f"no {code}-only services"

    def test_ru_excluded_pool(self, universe):
        excluded = [
            s for s in universe.services.values()
            if "RU" in s.excluded_countries
        ]
        # Russia must miss a visible chunk of the ecosystem (§6).
        assert len(excluded) >= universe.config.scaled(500)

    def test_geo_malware_sets_cover_india_most(self, universe):
        targeted = [
            s for s in universe.services.values()
            if s.malicious_countries is not None
        ]
        if not targeted:
            pytest.skip("no geo-targeted malware at this scale")
        from collections import Counter

        counts = Counter()
        for service in targeted:
            for code in service.malicious_countries:
                counts[code] += 1
        assert counts["IN"] >= max(counts.values()) - 1
