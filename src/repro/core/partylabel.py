"""Section 4.2(1) — first/third-party labeling of observed requests.

For every (visited site, contacted FQDN) pair the labeler decides whether
the FQDN is a first party of the site using, in order:

1. registrable-domain equality;
2. X.509 relationships (shared Subject organization, or a certificate
   whose names bridge the two domains);
3. Levenshtein similarity above 0.7 between the domains
   (``doublepimp.com`` ~ ``doublepimpssl.com``).

Third parties are further split into *direct* (called by the publisher:
the request referrer is the visited page) and *dynamic* (loaded inside
third-party frames or reached through redirect chains) — the inclusion-
chain pruning described in §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..browser.events import CrawlLog, RequestRecord
from ..net.tls import Certificate, certificate_matches_host, share_organization
from ..net.url import parse_url, registrable_domain
from ..text.levenshtein import domains_similar

__all__ = ["PartyLabels", "label_parties"]

CertLookup = Callable[[str], Optional[Certificate]]


@lru_cache(maxsize=16384)
def _domains_similar_cached(a: str, b: str, threshold: float) -> bool:
    """Memoized banded-Levenshtein similarity on a normalized pair.

    The same third-party registrable domain is re-compared against the
    same first party for every request it serves across a study's logs;
    the pair is order-normalized (similarity is symmetric) and lowered
    before keying, so the cache collapses all of that repeated DP work
    without changing a single verdict.
    """
    return domains_similar(a, b, threshold=threshold)


def _domains_similar(a: str, b: str, threshold: float) -> bool:
    a = a.lower()
    b = b.lower()
    if b < a:
        a, b = b, a
    return _domains_similar_cached(a, b, threshold)


@dataclass
class PartyLabels:
    """Labeling output for one crawl log."""

    #: page domain -> first-party FQDNs that are not the page's own domain.
    first_party: Dict[str, Set[str]] = field(default_factory=dict)
    #: page domain -> third-party FQDNs directly called by the publisher.
    third_party_direct: Dict[str, Set[str]] = field(default_factory=dict)
    #: page domain -> third-party FQDNs loaded dynamically (pruned in
    #: presence counts, per the paper's method).
    third_party_dynamic: Dict[str, Set[str]] = field(default_factory=dict)
    #: FQDNs whose relationship could not be established either way.
    unlabeled: Set[str] = field(default_factory=set)

    @property
    def all_first_party_fqdns(self) -> Set[str]:
        merged: Set[str] = set()
        for fqdns in self.first_party.values():
            merged |= fqdns
        return merged

    @property
    def all_third_party_fqdns(self) -> Set[str]:
        """Distinct direct third-party FQDNs (the Table 2 counting unit)."""
        merged: Set[str] = set()
        for fqdns in self.third_party_direct.values():
            merged |= fqdns
        return merged

    @property
    def all_dynamic_fqdns(self) -> Set[str]:
        merged: Set[str] = set()
        for fqdns in self.third_party_dynamic.values():
            merged |= fqdns
        return merged

    def third_parties_of(self, page_domain: str) -> Set[str]:
        return self.third_party_direct.get(page_domain, set())

    def sites_embedding(self, registrable: str) -> Set[str]:
        """All pages whose direct third parties include the given domain."""
        pages = set()
        for page, fqdns in self.third_party_direct.items():
            if any(registrable_domain(fqdn) == registrable for fqdn in fqdns):
                pages.add(page)
        return pages


def _is_first_party(
    page_domain: str,
    fqdn: str,
    cert_lookup: Optional[CertLookup],
    threshold: float,
) -> bool:
    page_base = registrable_domain(page_domain)
    fqdn_base = registrable_domain(fqdn)
    if page_base == fqdn_base:
        return True
    if cert_lookup is not None:
        page_cert = cert_lookup(page_domain)
        fqdn_cert = cert_lookup(fqdn)
        if share_organization(page_cert, fqdn_cert):
            return True
        if fqdn_cert is not None and certificate_matches_host(fqdn_cert, page_domain):
            return True
        if page_cert is not None and certificate_matches_host(page_cert, fqdn):
            return True
    return _domains_similar(fqdn_base, page_base, threshold)


def _is_direct(record: RequestRecord) -> bool:
    """Was this request issued by the publisher page itself?"""
    if record.resource_type == "document":
        return False
    referrer = record.referrer
    if not referrer:
        return False
    try:
        referrer_host = parse_url(referrer).host
    except Exception:
        return False
    return registrable_domain(referrer_host) == registrable_domain(record.page_domain)


def label_parties(
    log: CrawlLog,
    *,
    cert_lookup: Optional[CertLookup] = None,
    levenshtein_threshold: float = 0.7,
) -> PartyLabels:
    """Label every contacted FQDN for every visited page."""
    labels = PartyLabels()
    decided: Dict[Tuple[str, str], bool] = {}

    for record in log.requests:
        if record.failed or record.resource_type == "document":
            continue
        page = record.page_domain
        fqdn = record.fqdn
        key = (page, fqdn)
        first = decided.get(key)
        if first is None:
            first = _is_first_party(page, fqdn, cert_lookup,
                                    levenshtein_threshold)
            decided[key] = first
        if first:
            if registrable_domain(fqdn) != registrable_domain(page):
                labels.first_party.setdefault(page, set()).add(fqdn)
            continue
        if _is_direct(record):
            labels.third_party_direct.setdefault(page, set()).add(fqdn)
        else:
            labels.third_party_dynamic.setdefault(page, set()).add(fqdn)

    # A domain seen only dynamically on a page where it was also direct
    # stays direct; drop dynamic entries that duplicate direct ones.
    for page, direct in labels.third_party_direct.items():
        dynamic = labels.third_party_dynamic.get(page)
        if dynamic:
            dynamic -= direct
    return labels
