"""Parallel analysis scheduler: ``run_all`` with threads must reproduce
the serial evaluation exactly, and the banner fast path must agree with
the unfiltered DOM walk on every crawled page."""

from __future__ import annotations

from repro import Study
from repro.core.compliance.banners import (
    detect_banner,
    detect_banner_unfiltered,
)
from repro.reporting.tables import (
    render_table1,
    render_table2,
    render_table4,
    render_table8,
)


class TestSchedulerDeterminism:
    def test_run_all_parallel_equals_serial(self, universe):
        serial = Study(universe, parallelism=1)
        threaded = Study(universe, parallelism=3)
        serial.run_all()
        threaded.run_all()
        assert render_table1(serial.owners(), serial.best_rank) == \
            render_table1(threaded.owners(), threaded.best_rank)
        assert render_table2(serial.table2()) == \
            render_table2(threaded.table2())
        assert render_table4(serial.cookie_stats()) == \
            render_table4(threaded.cookie_stats())
        assert render_table8(serial.banners("ES"), serial.banners("US")) == \
            render_table8(threaded.banners("ES"), threaded.banners("US"))
        serial_policies = serial.policies()
        threaded_policies = threaded.policies()
        assert serial_policies.collected == threaded_policies.collected
        assert serial_policies.pair_count == threaded_policies.pair_count
        assert serial_policies.similar_pair_fraction == \
            threaded_policies.similar_pair_fraction

    def test_task_list_is_ordered_and_complete(self, universe):
        study = Study(universe, parallelism=1)
        names = [name for name, _ in study._analysis_tasks()]
        assert names == sorted(set(names), key=names.index)  # no duplicates
        assert "owners" in names and "table2" in names
        assert [n for n in names if n.startswith("banners:")] == \
            ["banners:ES", "banners:US"]
        geo_names = [name for name, _ in study._analysis_tasks(geo=True)]
        assert "geography" in geo_names

    def test_prefetch_is_noop_when_serial(self, universe):
        study = Study(universe, parallelism=1)
        study.prefetch_analyses()
        assert study._cache == {}


class TestBannerPrefilterParity:
    def test_fast_path_matches_full_walk(self, study):
        log = study.porn_log("ES")
        pages = [(v.site_domain, v.html)
                 for v in log.successful_visits() if v.html]
        assert pages
        detected = 0
        for site_domain, html in pages:
            fast = detect_banner(html, site_domain)
            slow = detect_banner_unfiltered(html, site_domain)
            assert fast == slow, site_domain
            if fast is not None:
                detected += 1
        assert detected > 0  # the corpus must exercise the slow path too
