"""§10 extensions — ad-blocker effectiveness, subscription tracking, and
cross-border identifier flows (the paper's future-work studies)."""

from repro.core.business import MODEL_NONE, MODEL_PAID


def test_ext_adblock_effectiveness(benchmark, study, reporter):
    comparison = benchmark.pedantic(lambda: study.adblock_comparison(),
                                    rounds=1, iterations=1)
    reporter.row("requests cancelled by EasyList/EasyPrivacy", "-",
                 comparison.requests_blocked)
    reporter.row("third-party ID cookies: baseline -> protected", "-",
                 f"{comparison.baseline_third_party_cookies} -> "
                 f"{comparison.protected_third_party_cookies} "
                 f"(-{comparison.cookie_reduction:.0%})")
    reporter.row("canvas-FP sites: baseline -> protected",
                 "most survive (91% of scripts unlisted)",
                 f"{len(comparison.baseline_canvas_sites)} -> "
                 f"{len(comparison.protected_canvas_sites)} "
                 f"(-{comparison.canvas_reduction:.0%})")
    reporter.row("tracker domains surviving the blocker", "-",
                 f"{comparison.surviving_tracker_fraction:.0%}")

    # The blocker helps with cookies but NOT with the unlisted
    # fingerprinters — the paper's central anti-tracking warning.
    assert comparison.cookie_reduction > 0.3
    assert comparison.canvas_reduction < 0.4
    assert comparison.surviving_tracker_fraction > 0.3


def test_ext_subscription_tracking(benchmark, study, reporter):
    report = benchmark(lambda: study.subscription_tracking())
    for row in report.rows:
        reporter.row(
            f"{row.model}: sites / mean TPs / mean TP cookies",
            "-",
            f"{row.site_count} / {row.mean_third_parties:.1f} / "
            f"{row.mean_third_party_id_cookies:.1f}",
        )
    ad_supported = report.row(MODEL_NONE)
    paid = report.row(MODEL_PAID)
    assert ad_supported.site_count > paid.site_count
    assert ad_supported.mean_third_parties > 0


def test_ext_cross_border(benchmark, study, reporter):
    report = benchmark.pedantic(lambda: study.cross_border(), rounds=1,
                                iterations=1)
    reporter.row("third-party requests located", "-", report.requests_total)
    reporter.row("terminating outside the EU", "-",
                 f"{report.outside_eu_fraction:.0%}")
    top = sorted(report.by_country.items(), key=lambda item: -item[1])[:5]
    reporter.row("top destination countries", "-",
                 ", ".join(f"{code}:{count}" for code, count in top))
    reporter.row("ID-cookie holders hosted outside the EU", "-",
                 f"{report.id_export_fraction:.0%} of "
                 f"{len(report.id_cookie_domains)}")

    assert report.outside_eu_fraction > 0.4
    assert report.id_export_fraction > 0.3
