"""Ablation — the TF-IDF similarity thresholds of §4.1 / §7.3.

Sweeps the policy-similarity threshold used (a) to call a pair of
policies "co-related" (§7.3's 0.5) and (b) to propose same-owner pairs
for verification (§4.1's high threshold).
"""

from conftest import Reporter

from repro.core.compliance.policies import pairwise_similarity_fractions

THRESHOLDS = (0.3, 0.5, 0.7, 0.9, 0.97)


def test_ablation_tfidf(benchmark, study, reporter):
    texts = [
        inspection.policy.text
        for inspection in study.inspections()
        if inspection.reachable and inspection.policy.link_found
        and inspection.policy.fetched_ok
        and len(inspection.policy.text) > 600
    ]
    # Cap the document count so the sweep stays square-friendly.
    texts = texts[:600]

    def sweep():
        return [
            (threshold,
             pairwise_similarity_fractions(texts, threshold=threshold)[0])
            for threshold in THRESHOLDS
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.row("policies compared", "-", len(texts))
    reporter.text("threshold  fraction-of-pairs-above")
    for threshold, fraction in rows:
        reporter.text(f"{threshold:>9}  {fraction:>22.3f}")

    fractions = [fraction for _, fraction in rows]
    # Monotone decreasing in the threshold.
    assert fractions == sorted(fractions, reverse=True)
    by_threshold = dict(rows)
    # §7.3: at 0.5 the majority of pairs are co-related (template reuse)...
    assert by_threshold[0.5] > 0.5
    # ...but near-identity (same-owner evidence) is far rarer, which is
    # why §4.1 can use it as an ownership signal.
    assert by_threshold[0.97] < 0.8 * by_threshold[0.5]
