"""The study report as an ordered list of named sections.

One source of truth for everything the full report prints: the CLI
(``repro study`` / ``repro report``) joins the sections into the
familiar stdout report, and the measurement service serves each section
individually (``GET /jobs/<id>/tables/<name>``).  Because both consumers
render through this module, a served section is byte-identical to the
corresponding chunk of ``repro report`` *by construction* — the CI
``make serve-check`` gate reassembles the full report from the served
sections and diffs it against the CLI output to keep it that way.

A section's text never carries the blank separator line; the full
report is ``"\\n\\n".join(texts)`` plus a trailing newline.
"""

from __future__ import annotations

from typing import List, Tuple

from ..net.url import registrable_domain
from .figures import figure1_ascii, figure3_ascii, figure4_ascii
from .tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
)

__all__ = [
    "FIGURE_SECTIONS",
    "full_report",
    "render_figure",
    "render_section",
    "report_sections",
    "section_names",
]

#: Section names served under ``/figures/`` rather than ``/tables/``.
FIGURE_SECTIONS = frozenset({"figure3", "figure4"})


def _corpus_section(study) -> str:
    return (f"== corpus ({len(study.corpus_domains())} sites) ==\n"
            + figure1_ascii(study.popularity()))


def _table5_section(study) -> str:
    fingerprinting = study.fingerprinting()
    porn_labels = study.porn_labels()
    regular_bases = {
        registrable_domain(fqdn)
        for fqdn in study.regular_labels().all_third_party_fqdns
    }
    return "== Table 5: fingerprinting ==\n" + render_table5(
        fingerprinting.per_service_table(
            lambda domain: len(porn_labels.sites_embedding(domain))
        ),
        is_ats=study.ats_classifier().matches_domain,
        in_regular_web=lambda domain: domain in regular_bases,
    )


def _malware_section(study) -> str:
    malware = study.malware()
    return (
        f"§5.3 malware: {len(malware.malicious_sites)} malicious porn "
        f"sites, {len(malware.malicious_third_parties)} malicious third "
        f"parties reaching {malware.affected_site_count} sites; "
        f"cryptomining: {len(malware.miner_services)} services on "
        f"{len(malware.miner_sites)} sites"
    )


def _section_builders(study, scale: float, geo: bool):
    """``(name, thunk)`` per section, in print order; nothing evaluated."""
    builders = [
        ("corpus", lambda: _corpus_section(study)),
        ("table1", lambda: "== Table 1: owners ==\n"
            + render_table1(study.owners(), study.best_rank)),
        ("table2", lambda: "== Table 2: third parties ==\n"
            + render_table2(study.table2())),
        ("table3", lambda: "== Table 3: long tail ==\n"
            + render_table3(study.table3())),
        ("figure3", lambda: "== Figure 3: organizations ==\n"
            + figure3_ascii(study.figure3(top_n=10))),
        ("table4", lambda: "== Table 4: cookies ==\n"
            + render_table4(study.cookie_stats())),
        ("figure4", lambda: "== Figure 4: cookie syncing ==\n"
            + figure4_ascii(study.cookie_sync(),
                            minimum=max(2, int(75 * scale)))),
        ("table5", lambda: _table5_section(study)),
        ("table6", lambda: "== Table 6: HTTPS ==\n"
            + render_table6(study.https_report())),
        ("malware", lambda: _malware_section(study)),
    ]
    if geo:
        builders.append(
            ("table7", lambda: "== Table 7: geography ==\n"
                + render_table7(study.geography()))
        )
    builders.append(
        ("table8", lambda: "== Table 8: banners ==\n"
            + render_table8(study.banners("ES"), study.banners("US")))
    )
    return builders


def report_sections(study, scale: float,
                    geo: bool = False) -> List[Tuple[str, str]]:
    """Every section of the full study report, in print order.

    Evaluating the list pulls each analysis through the study's memo,
    so it works identically on a live study and a store-only one
    (``repro report``).
    """
    return [(name, thunk())
            for name, thunk in _section_builders(study, scale, geo)]


def render_section(study, scale: float, name: str) -> str:
    """One section's text, evaluating only the analyses it needs.

    This is the service's result path: a job that ran a subset of
    analyses can serve the sections that subset feeds without the
    renderer demanding crawls the store does not hold.  Every section is
    addressable (``geo=True``), including ``table7``.
    """
    for section, thunk in _section_builders(study, scale, geo=True):
        if section == name:
            return thunk()
    raise KeyError(name)


def section_names(geo: bool = False) -> List[str]:
    """The section names a report renders, in order, without a study."""
    names = ["corpus", "table1", "table2", "table3", "figure3", "table4",
             "figure4", "table5", "table6", "malware"]
    if geo:
        names.append("table7")
    names.append("table8")
    return names


def full_report(study, scale: float, geo: bool = False) -> str:
    """The complete report text exactly as the CLI prints it."""
    texts = [text for _, text in report_sections(study, scale, geo=geo)]
    return "\n\n".join(texts) + "\n"


def render_figure(study, scale: float, name: str) -> str:
    """A figure's raw ASCII art (no ``== header ==`` line).

    ``figure1`` is only available here — in the report it is embedded in
    the ``corpus`` section.
    """
    if name == "figure1":
        return figure1_ascii(study.popularity())
    if name == "figure3":
        return figure3_ascii(study.figure3(top_n=10))
    if name == "figure4":
        return figure4_ascii(study.cookie_sync(),
                             minimum=max(2, int(75 * scale)))
    raise KeyError(name)
