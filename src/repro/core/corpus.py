"""Section 3 — corpus compilation and sanitization.

Three discovery sources are combined (aggregator indexes, Alexa's Adult
category, and keyword matching against the 2018 Alexa top-1M), producing
candidates that are then crawled and classified; unresponsive sites and
non-pornographic keyword matches are removed as false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..browser.browser import Browser
from ..crawler.vpn import client_for
from ..html.parser import parse_html
from ..html.query import meta_tags
from ..net.geo import VantagePoint
from ..text.tokenize import tokenize
from ..webgen.names import ADULT_KEYWORDS
from ..webgen.universe import ClientContext, Universe

__all__ = [
    "CandidateSet",
    "SanitizedCorpus",
    "compile_candidates",
    "classify_adult_content",
    "sanitize_candidates",
    "build_corpus",
]

SOURCE_AGGREGATOR = "aggregator"
SOURCE_ALEXA_CATEGORY = "alexa_category"
SOURCE_KEYWORD = "keyword"

#: Tokens whose presence in page text marks adult content.  Token-level
#: matching (not substrings) is what keeps ``essexnews.co.uk`` out.
_ADULT_TOKENS = frozenset({
    "porn", "xxx", "sex", "adult", "hardcore", "milf", "anal", "lesbian",
    "webcam", "cams", "creampie", "cumshot", "18",
})

_MIN_ADULT_TOKENS = 3


@dataclass
class CandidateSet:
    """Candidates with the source that first discovered each of them."""

    sources: Dict[str, str] = field(default_factory=dict)  # domain -> source

    def add(self, domain: str, source: str) -> bool:
        """Record a candidate; returns False when already discovered."""
        if domain in self.sources:
            return False
        self.sources[domain] = source
        return True

    @property
    def domains(self) -> List[str]:
        return sorted(self.sources)

    def count_by_source(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for source in self.sources.values():
            counts[source] = counts.get(source, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.sources)


@dataclass
class SanitizedCorpus:
    """Outcome of the manual-inspection-style sanitization pass."""

    corpus: List[str]
    unresponsive: List[str]
    non_adult: List[str]

    @property
    def false_positives(self) -> int:
        return len(self.unresponsive) + len(self.non_adult)


def compile_candidates(universe: Universe) -> CandidateSet:
    """Combine the three §3 discovery sources (deduplicating in order)."""
    candidates = CandidateSet()
    for listing in universe.aggregator_listings:
        for domain in listing:
            candidates.add(domain, SOURCE_AGGREGATOR)
    for domain in universe.alexa_category_sites:
        candidates.add(domain, SOURCE_ALEXA_CATEGORY)
    for domain in universe.alexa_top1m_domains():
        if any(keyword in domain for keyword in ADULT_KEYWORDS):
            candidates.add(domain, SOURCE_KEYWORD)
    return candidates


def classify_adult_content(html: str) -> bool:
    """Decide whether a landing page serves adult content.

    Stand-in for the paper's manual inspection of DOMs and screenshots:
    counts distinct adult vocabulary tokens across the rendered text and
    ``<meta keywords>``.
    """
    document = parse_html(html)
    tokens: Set[str] = set(tokenize(document.text()))
    for meta in meta_tags(document, "keywords"):
        tokens.update(tokenize(meta.get("content") or ""))
    return len(tokens & _ADULT_TOKENS) >= _MIN_ADULT_TOKENS


def sanitize_candidates(
    universe: Universe,
    candidates: Iterable[str],
    vantage: VantagePoint,
) -> SanitizedCorpus:
    """Crawl every candidate once and drop the false positives."""
    client = client_for(vantage, epoch="sanitization")
    corpus: List[str] = []
    unresponsive: List[str] = []
    non_adult: List[str] = []
    for domain in candidates:
        browser = Browser(universe, client)
        visit = browser.visit(domain)
        if not visit.success:
            unresponsive.append(domain)
        elif classify_adult_content(visit.html):
            corpus.append(domain)
        else:
            non_adult.append(domain)
    return SanitizedCorpus(corpus=corpus, unresponsive=unresponsive,
                           non_adult=non_adult)


def build_corpus(
    universe: Universe, vantage: VantagePoint
) -> Tuple[CandidateSet, SanitizedCorpus]:
    """The full §3 pipeline: discover, then sanitize."""
    candidates = compile_candidates(universe)
    sanitized = sanitize_candidates(universe, candidates.domains, vantage)
    return candidates, sanitized
