#!/usr/bin/env python3
"""Geographic comparison (the paper's Section 6).

Crawls the same corpus from several vantage points and compares the
third-party populations, regional ad networks, censorship, and
geo-targeted malware.

Run:  python examples/geo_comparison.py [scale] [countries...]
e.g.  python examples/geo_comparison.py 0.1 ES RU IN
"""

import sys

from repro import Study, UniverseConfig
from repro.reporting import render_table7


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    countries = sys.argv[2:] or ["ES", "US", "RU", "IN"]
    study = Study.build(UniverseConfig(scale=scale))
    print(f"corpus: {len(study.corpus_domains())} sites; "
          f"crawling from {', '.join(countries)} (scale={scale})\n")

    report = study.geography(countries)
    print(render_table7(report))

    by_country = {row.country: row for row in report.rows}
    if "RU" in by_country and "ES" in by_country:
        missing = by_country["ES"].fqdn_count - by_country["RU"].fqdn_count
        print(f"\nRussia sees {missing} fewer third-party FQDNs than Spain "
              "(services refusing Russian clients)")
    blocked = {row.country: row.blocked_sites for row in report.rows}
    for country, count in blocked.items():
        if count:
            print(f"{count} corpus sites are unreachable from {country} "
                  "(country-level blocking or server-side geo-blocking)")

    print("\nGeo-targeted malware (§6.2):")
    for country in countries:
        domains = report.malicious_domains.get(country, set())
        sites = report.malicious_sites.get(country, set())
        print(f"  {country}: {len(domains)} malicious third-party domains "
              f"on {len(sites)} sites")
    everywhere = report.malicious_domains_everywhere
    print(f"  {len(everywhere)} domains are flagged from every vantage point "
          f"(e.g. {', '.join(sorted(everywhere)[:3])})")
    geo_targeted = set()
    for country in countries:
        geo_targeted |= report.malicious_domains.get(country, set())
    geo_targeted -= everywhere
    if geo_targeted:
        print(f"  {len(geo_targeted)} domains serve malicious content only "
              "to specific countries")


if __name__ == "__main__":
    main()
