"""Section 5.2 / Table 6 — HTTPS adoption by popularity tier.

A site supports HTTPS when its landing page loaded over TLS (the crawler
tries HTTPS first and only downgrades on failure).  A third-party service
supports HTTPS when its observed requests use TLS.  A site is *fully*
HTTPS only when the page and every embedded third party use TLS; §5.2
additionally checks whether identifier cookies travel in the clear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..browser.events import CrawlLog
from ..net.url import registrable_domain
from ..webgen.config import TIER_NAMES
from .cookie_analysis import MIN_ID_LENGTH, decode_cookie_value
from .partylabel import PartyLabels
from .popularity import PopularityReport

__all__ = ["HTTPSTierRow", "HTTPSReport", "analyze_https"]


@dataclass(frozen=True)
class HTTPSTierRow:
    """One Table 6 band: sites and third parties for a popularity tier."""

    interval: str
    site_count: int
    site_https_fraction: float
    service_count: int
    service_https_fraction: float


@dataclass
class HTTPSReport:
    rows: List[HTTPSTierRow] = field(default_factory=list)
    not_fully_https_sites: Set[str] = field(default_factory=set)
    cleartext_cookie_sites: Set[str] = field(default_factory=set)
    sites_visited: int = 0

    @property
    def not_fully_https_fraction(self) -> float:
        return len(self.not_fully_https_sites) / self.sites_visited \
            if self.sites_visited else 0.0

    @property
    def cleartext_cookie_fraction(self) -> float:
        """Of the not-fully-HTTPS sites, how many leak ID cookies in clear."""
        if not self.not_fully_https_sites:
            return 0.0
        return len(self.cleartext_cookie_sites & self.not_fully_https_sites) / \
            len(self.not_fully_https_sites)


def analyze_https(
    log: CrawlLog,
    labels: PartyLabels,
    popularity: PopularityReport,
) -> HTTPSReport:
    report = HTTPSReport()
    tier_of_page: Dict[str, int] = {s.domain: s.tier for s in popularity.sites}

    # Page-level scheme: from the visit record.
    page_https: Dict[str, bool] = {}
    for visit in log.visits:
        if visit.success:
            page_https[visit.site_domain] = visit.https
    report.sites_visited = len(page_https)

    # Service-level scheme, tracked per tier of the embedding page; only
    # publisher-called third parties count (dynamic loads are pruned).
    service_scheme: Dict[int, Dict[str, bool]] = {0: {}, 1: {}, 2: {}, 3: {}}
    page_has_http_third_party: Dict[str, bool] = {}
    for record in log.requests:
        if record.failed or record.resource_type == "document":
            continue
        page = record.page_domain
        tier = tier_of_page.get(page)
        if record.fqdn not in labels.third_party_direct.get(page, ()):
            continue
        if tier is not None:
            secure = record.scheme == "https"
            previous = service_scheme[tier].get(record.fqdn)
            service_scheme[tier][record.fqdn] = (previous or False) or secure
        if record.scheme == "http":
            page_has_http_third_party[page] = True

    tier_sites: Dict[int, List[str]] = {0: [], 1: [], 2: [], 3: []}
    for page, https in page_https.items():
        tier = tier_of_page.get(page)
        if tier is not None:
            tier_sites[tier].append(page)

    for tier in range(4):
        sites = tier_sites[tier]
        https_sites = sum(1 for page in sites if page_https[page])
        services = service_scheme[tier]
        https_services = sum(1 for secure in services.values() if secure)
        report.rows.append(
            HTTPSTierRow(
                interval=TIER_NAMES[tier],
                site_count=len(sites),
                site_https_fraction=https_sites / len(sites) if sites else 0.0,
                service_count=len(services),
                service_https_fraction=https_services / len(services)
                if services else 0.0,
            )
        )

    for page, https in page_https.items():
        if not https or page_has_http_third_party.get(page):
            report.not_fully_https_sites.add(page)

    # Sensitive cookies uploaded in the clear (§5.1.1's IP/geo payloads):
    # a cookie whose decoded value carries the client address or location,
    # scoped to a domain the page contacted over plain HTTP.
    http_domains_per_page: Dict[str, Set[str]] = {}
    for record in log.requests:
        if record.scheme == "http" and not record.failed:
            http_domains_per_page.setdefault(record.page_domain, set()).add(
                registrable_domain(record.fqdn)
            )
    client_ip = log.client_ip
    for cookie in log.cookies:
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        cleartext = http_domains_per_page.get(cookie.page_domain)
        if not cleartext or registrable_domain(cookie.domain) not in cleartext:
            continue
        decodings = decode_cookie_value(cookie.value)
        sensitive = (client_ip and any(client_ip in text for text in decodings)) \
            or any("lat%3d" in text.lower() or "lat=" in text.lower()
                   for text in decodings)
        if sensitive:
            report.cleartext_cookie_sites.add(cookie.page_domain)
    return report
