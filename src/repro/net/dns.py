"""A DNS resolver over the synthetic universe.

The resolver maps FQDNs to IPv4 addresses allocated by
:mod:`repro.net.geo`.  Wildcard zones support services that mint arbitrary
subdomains (the paper observes CDN-style hosts like
``img100-589.xvideos.com``); a wildcard record resolves every label under
its zone to the same server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["DNSError", "NXDomain", "DNSResolver"]


class DNSError(Exception):
    """Base class for resolver failures."""


class NXDomain(DNSError):
    """The queried name does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"NXDOMAIN: {name}")
        self.name = name


class DNSResolver:
    """Authoritative resolver for the synthetic address space."""

    def __init__(self) -> None:
        self._records: Dict[str, str] = {}
        self._wildcards: Dict[str, str] = {}
        self._queries = 0

    @property
    def query_count(self) -> int:
        """Total lookups served (useful for crawl accounting)."""
        return self._queries

    def add_record(self, name: str, address: str) -> None:
        """Register an exact A record."""
        self._records[name.lower()] = address

    def add_wildcard(self, zone: str, address: str) -> None:
        """Register ``*.zone`` (and the zone apex) to resolve to ``address``."""
        zone = zone.lower()
        self._wildcards[zone] = address
        self._records.setdefault(zone, address)

    def resolve(self, name: str) -> str:
        """Resolve ``name`` to an IPv4 address or raise :class:`NXDomain`."""
        self._queries += 1
        name = name.lower().rstrip(".")
        address = self._records.get(name)
        if address is not None:
            return address
        # Walk up parent zones looking for a wildcard.
        labels = name.split(".")
        for i in range(1, len(labels)):
            zone = ".".join(labels[i:])
            address = self._wildcards.get(zone)
            if address is not None:
                return address
        raise NXDomain(name)

    def try_resolve(self, name: str) -> Optional[str]:
        """Like :meth:`resolve` but returns ``None`` on NXDOMAIN."""
        try:
            return self.resolve(name)
        except NXDomain:
            return None

    def knows(self, name: str) -> bool:
        return self.try_resolve(name) is not None

    def __len__(self) -> int:
        return len(self._records)
