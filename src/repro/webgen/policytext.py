"""Privacy-policy text generation.

Section 7.3 measures policies three ways: presence (16% of sites), GDPR
mentions (20% of policies), and pairwise TF-IDF similarity (76% of pairs
above 0.5 — template reuse and shared ownership).  Section 4.1 exploits
near-identical policies (similarity 1.0) to discover owner clusters.

Policies are therefore built from a small number of genuinely different
templates.  One industry-standard template dominates (owner-independent
boilerplate), so that most policy pairs are co-related, while distinct
templates stay lexically far apart.  Sites of the same operator always use
the same template with the same company substitutions, which makes their
policies nearly identical — exactly the signal the owner-clustering
analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PolicySpec", "PolicyGenerator", "TEMPLATE_COUNT", "DOMINANT_TEMPLATE"]

TEMPLATE_COUNT = 8
#: Index of the boilerplate template used by the majority of sites.
DOMINANT_TEMPLATE = 0


@dataclass(frozen=True)
class PolicySpec:
    """Ground truth about one site's privacy policy."""

    template_id: int
    target_length: int
    mentions_gdpr: bool
    discloses_cookies: bool
    discloses_data_types: bool
    discloses_third_parties: bool
    #: Enumerates the complete embedded third-party list (one site does).
    full_third_party_list: bool = False
    #: The policy link returns an HTTP error page (the 44 false positives).
    link_broken: bool = False


_COMMON_INTRO = (
    "This privacy statement explains how {company} collects, stores, uses and "
    "discloses information about visitors of {site}. By accessing or using the "
    "website you acknowledge that you have read and understood this statement. "
)

# -- Template section pools -------------------------------------------------------
# Each template is a tuple of paragraph factories with distinct vocabulary so
# inter-template TF-IDF similarity stays low while intra-template similarity
# stays near 1.0.

_TEMPLATE_SECTIONS: Tuple[Tuple[str, ...], ...] = (
    # 0: the dominant adult-industry boilerplate.
    (
        "Information we collect. When you visit {site} we automatically receive "
        "your internet protocol address, browser type, operating system, referring "
        "pages and the dates and times of your visits. This information is stored "
        "in our server logs and is used to operate and improve the website.",
        "Cookies. {site} uses cookies and similar technologies to remember your "
        "preferences, measure audience and deliver advertising. A cookie is a small "
        "text file stored by your browser. You may disable cookies in your browser "
        "settings although parts of the website may stop functioning.",
        "Advertising partners. We work with advertising networks and analytics "
        "providers that may set their own cookies and collect information about "
        "your visits to this and other websites in order to provide advertisements "
        "about goods and services of interest to you.",
        "Age requirement. The website is intended solely for adults. We do not "
        "knowingly collect information from persons under the age of eighteen. If "
        "you believe a minor has provided us information please contact us and we "
        "will delete it.",
        "Security. We take commercially reasonable measures to protect the "
        "information we collect from loss, misuse and unauthorized access, "
        "disclosure, alteration and destruction.",
        "Changes. We may update this statement from time to time. Continued use of "
        "the website after changes constitutes acceptance of the revised statement.",
        "Contact. Questions about this statement may be directed to {email}.",
    ),
    # 1: corporate legalese variant.
    (
        "Scope of processing. {company} acts as the data controller in respect of "
        "personal data processed through {site}. Categories of data processed "
        "include connection identifiers, device characteristics and usage records.",
        "Legal basis. Processing is carried out on the basis of legitimate "
        "interest, performance of contract, or consent where required by "
        "applicable law. Consent may be withdrawn at any moment without affecting "
        "prior processing.",
        "Retention. Personal data are retained no longer than necessary for the "
        "purposes described herein, after which they are erased or irreversibly "
        "anonymized pursuant to our retention schedule.",
        "Recipients. Data may be communicated to processors bound by written "
        "agreement, to affiliated undertakings, and to competent authorities where "
        "a statutory obligation exists.",
        "Rights of the data subject. You are entitled to request access, "
        "rectification, erasure, restriction of processing, portability, and to "
        "object to processing. Complaints may be lodged with a supervisory "
        "authority.",
        "Representative. Inquiries shall be addressed to the compliance office of "
        "{company} at {email}.",
    ),
    # 2: casual tube-site variant.
    (
        "Hey there. Your privacy matters to the team behind {site}, so here is the "
        "short version of what happens with your info while you enjoy our videos.",
        "What we grab automatically: your IP, what device and browser you are on, "
        "which pages you watched and how long you stayed. That is it, nothing "
        "creepy, just stats that keep the lights on.",
        "Cookies, yum. We drop a few cookies so the player remembers your volume, "
        "quality settings and whether you already clicked the entry warning. Some "
        "ad buddies drop their own cookies too.",
        "Ads keep {site} free. Our sponsors may use tracking pixels to figure out "
        "which banners work. You can block them with any ad blocker, we will not "
        "hold a grudge.",
        "Grown-ups only. You must be over 18 (or 21 in some places) to hang out "
        "here. If you are not, close the tab now.",
        "Ping us at {email} if anything worries you.",
    ),
    # 3: subscription/paysite variant.
    (
        "Membership data. When you purchase a subscription to {site} our billing "
        "agents collect your name, billing address, payment card details and email "
        "for the purpose of completing the transaction and managing your account.",
        "Billing discretion. Charges appear under a discreet descriptor. Billing "
        "records are kept by our payment processors in accordance with card "
        "scheme rules and are not shared with content partners.",
        "Account activity. We log sign-ins, downloads and streaming activity to "
        "prevent fraud, enforce concurrent session limits and recommend content.",
        "Marketing. With your permission we send newsletters about new scenes and "
        "special offers. Every message contains an unsubscribe link.",
        "Cancellation. Upon cancellation your viewing history is deleted within "
        "ninety days; invoices are retained as required by tax law.",
        "Support is available around the clock at {email}.",
    ),
    # 4: network/affiliate variant.
    (
        "About the network. {site} is operated by {company} as part of a network "
        "of affiliated adult entertainment properties sharing common "
        "infrastructure and this privacy notice.",
        "Shared identifiers. A common visitor identifier may be recognized across "
        "properties of the network to cap advertisement frequency and to combine "
        "audience measurement.",
        "Traffic partners. Clicks arriving from or leaving to partner websites are "
        "recorded together with the partner identifier for revenue accounting "
        "purposes.",
        "Statistics. Aggregate, non-identifying statistics may be published or "
        "shared with prospective advertisers.",
        "Reach the network privacy desk at {email}.",
    ),
    # 5: minimal webmaster variant.
    (
        "{site} keeps minimal records. The webserver writs standard access logs "
        "including IP addresses which rotate after fourteen days.",
        "Embedded players and banners originate from external companies; their "
        "data handling is governed by their own terms which we do not control.",
        "No accounts, no newsletters, no sale of information. Webmaster email: "
        "{email}.",
    ),
    # 6: cam-site variant.
    (
        "Live interaction. {site} offers live video chat. Messages, tips and "
        "private show records are stored to operate the service, pay performers "
        "and resolve disputes.",
        "Performer protection. Recording, capturing or redistributing streams is "
        "forbidden and technically watermarked; infringement reports are "
        "investigated using connection records.",
        "Token purchases. Payment instruments are handled exclusively by licensed "
        "payment institutions. {company} receives only a confirmation of payment.",
        "Broadcast consent. Performers grant explicit written consent and proof of "
        "age before any broadcast, in compliance with record keeping statutes.",
        "Trust and safety can be reached at {email}.",
    ),
    # 7: machine-translated variant (long-tail sites).
    (
        "Dear user, the respect of your private sphere is for {site} a thing of "
        "the most big importance. Hereunder we describe the treatment of the "
        "informations.",
        "The informations of navigation, as the address IP and the pages seen, "
        "are registered automatic in the journals of the server for the good "
        "functioning of the site.",
        "The witnesses (cookies) serve to remember your preferences and to "
        "propose publicities adapted. You can to refuse them in the parameters "
        "of your navigator.",
        "The site is reserved to the persons major of 18 years. Thank you of "
        "your comprehension. Contact: {email}.",
    ),
)

_GDPR_SECTION = (
    "European users. In accordance with the General Data Protection Regulation "
    "(GDPR, Regulation (EU) 2016/679) the processing of special categories of "
    "personal data, including data concerning sex life or sexual orientation, is "
    "carried out only with explicit consent. You may exercise your rights of "
    "access, rectification and erasure under Articles 15 to 17 of the GDPR by "
    "contacting our data protection officer."
)

_COOKIE_DISCLOSURE = (
    "Detail of cookies. First party cookies store session identifiers and player "
    "preferences. Third party cookies are set by the advertising and analytics "
    "companies integrated in the website and may contain unique identifiers used "
    "to recognize your browser over time."
)

_DATA_TYPES_DISCLOSURE = (
    "Categories of data. We process connection data (IP address, user agent), "
    "usage data (pages viewed, viewing duration), and approximate location "
    "derived from the IP address. We do not request your name or civil identity "
    "for simply browsing the website."
)

_THIRD_PARTY_DISCLOSURE = (
    "Third party services. The website integrates advertising networks, audience "
    "measurement tools and content delivery networks operated by external "
    "companies which may process your data as independent controllers."
)

_PADDING_PARAGRAPHS = (
    "Jurisdictional addendum. Depending on the territory from which you access "
    "the website, additional disclosures required by local statute are deemed "
    "incorporated into this document by reference.",
    "Glossary. 'Browser' means the software application used to retrieve and "
    "present resources; 'identifier' means any value that renders a device "
    "distinguishable; 'processing' means any operation performed upon data.",
    "Archival note. Prior versions of this statement are available upon written "
    "request and remain applicable to the periods during which they were in "
    "force.",
    "Interpretation. Should any clause of this statement be held invalid, the "
    "remaining clauses shall continue in full force and effect.",
    "Accessibility. A large print version of this statement can be requested "
    "from the contact address indicated above.",
)


class PolicyGenerator:
    """Renders policy text from a :class:`PolicySpec`."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample_spec(
        self,
        *,
        operator_template: Optional[int] = None,
        heavy_tracker: bool = False,
    ) -> PolicySpec:
        """Sample a policy spec.

        ``operator_template`` pins the template (same-operator sites share
        one); ``heavy_tracker`` biases disclosure completeness to hit the
        §7.3 figure that 72% of the top-25 tracking sites disclose their
        practices.
        """
        if operator_template is not None:
            template_id = operator_template
        elif self._rng.random() < 0.74:
            template_id = DOMINANT_TEMPLATE
        else:
            template_id = int(self._rng.integers(1, TEMPLATE_COUNT))

        # Log-normal length distribution calibrated to mean ~17k characters
        # with a heavy tail reaching ~240k.
        length = int(np.exp(self._rng.normal(9.35, 0.75)))
        length = max(1_088, min(length, 243_649))

        discloses = self._rng.random() < (0.72 if heavy_tracker else 0.45)
        return PolicySpec(
            template_id=template_id,
            target_length=length,
            mentions_gdpr=self._rng.random() < 0.20,
            discloses_cookies=discloses,
            discloses_data_types=discloses and self._rng.random() < 0.9,
            discloses_third_parties=discloses and self._rng.random() < 0.85,
            full_third_party_list=False,
            link_broken=False,
        )

    def render(
        self,
        spec: PolicySpec,
        *,
        site_domain: str,
        company: Optional[str],
        third_parties: Sequence[str] = (),
    ) -> str:
        """Render the policy text for a site."""
        company_name = company or f"the operator of {site_domain}"
        substitutions = {
            "site": site_domain,
            "company": company_name,
            "email": f"privacy@{site_domain}",
        }
        paragraphs: List[str] = [_COMMON_INTRO.format(**substitutions)]
        for section in _TEMPLATE_SECTIONS[spec.template_id]:
            paragraphs.append(section.format(**substitutions))
        if spec.discloses_cookies:
            paragraphs.append(_COOKIE_DISCLOSURE)
        if spec.discloses_data_types:
            paragraphs.append(_DATA_TYPES_DISCLOSURE)
        if spec.discloses_third_parties:
            paragraphs.append(_THIRD_PARTY_DISCLOSURE)
        if spec.full_third_party_list and third_parties:
            listing = ", ".join(sorted(third_parties))
            paragraphs.append(
                f"Complete list of integrated third party services: {listing}."
            )
        if spec.mentions_gdpr:
            paragraphs.append(_GDPR_SECTION)

        text = "\n\n".join(paragraphs)
        # Pad deterministically to approximate the target length.
        pad_index = 0
        while len(text) < spec.target_length:
            text += "\n\n" + _PADDING_PARAGRAPHS[pad_index % len(_PADDING_PARAGRAPHS)]
            pad_index += 1
        return text
