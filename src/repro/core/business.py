"""Section 4.1 — monetization-model classification.

The landing page is scanned for account-creation and premium cues
(multilingual); sites with cues are labeled subscription sites, then
split into *paid* (payment-wall markers) and *free* (registration-only
markers) — the semi-automatic pass the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..crawler.selenium import SiteInspection

__all__ = ["BusinessModel", "BusinessReport", "classify_business_models"]

MODEL_NONE = "ad_supported"
MODEL_FREE = "free_subscription"
MODEL_PAID = "paid_subscription"


@dataclass(frozen=True)
class BusinessModel:
    site_domain: str
    model: str
    has_account_option: bool
    has_premium_cue: bool
    has_payment_cue: bool


@dataclass
class BusinessReport:
    models: List[BusinessModel] = field(default_factory=list)

    @property
    def inspected(self) -> int:
        return len(self.models)

    @property
    def subscription_sites(self) -> List[BusinessModel]:
        return [m for m in self.models if m.model != MODEL_NONE]

    @property
    def subscription_fraction(self) -> float:
        return len(self.subscription_sites) / self.inspected \
            if self.inspected else 0.0

    @property
    def paid_fraction_of_subscriptions(self) -> float:
        subscriptions = self.subscription_sites
        if not subscriptions:
            return 0.0
        paid = sum(1 for m in subscriptions if m.model == MODEL_PAID)
        return paid / len(subscriptions)


def classify_business_models(
    inspections: Iterable[SiteInspection],
) -> BusinessReport:
    """Label each inspected site's monetization model."""
    report = BusinessReport()
    for inspection in inspections:
        if not inspection.reachable:
            continue
        subscription = inspection.has_account_option or inspection.has_premium_cue
        if not subscription:
            model = MODEL_NONE
        elif inspection.has_payment_cue:
            model = MODEL_PAID
        else:
            model = MODEL_FREE
        report.models.append(
            BusinessModel(
                site_domain=inspection.domain,
                model=model,
                has_account_option=inspection.has_account_option,
                has_premium_cue=inspection.has_premium_cue,
                has_payment_cue=inspection.has_payment_cue,
            )
        )
    return report
