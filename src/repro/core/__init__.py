"""The paper's analysis methodology (Sections 3-7)."""

from .ats import ATSClassifier, ATSResult
from .attribution import AttributionResult, attribute_organizations
from .business import BusinessReport, classify_business_models
from .cookie_analysis import CookieStats, analyze_cookies, decode_cookie_value
from .cookie_sync import SyncReport, detect_cookie_sync
from .corpus import (
    CandidateSet,
    SanitizedCorpus,
    build_corpus,
    classify_adult_content,
    compile_candidates,
    sanitize_candidates,
)
from .ecosystem import (
    OrganizationPrevalence,
    Table2,
    Table3,
    TierRow,
    build_figure3,
    build_table2,
    build_table3,
)
from .fingerprinting import (
    FingerprintingReport,
    analyze_fingerprinting,
    is_canvas_fingerprinting,
    is_font_enumeration,
    passes_englehardt_canvas,
)
from .geodiff import CountryObservation, CountryRow, GeoReport, analyze_geography
from .https_analysis import HTTPSReport, HTTPSTierRow, analyze_https
from .malware import MalwareReport, analyze_malware
from .owners import OwnerCluster, OwnerReport, discover_owners
from .partylabel import PartyLabels, label_parties
from .popularity import PopularityReport, SitePopularity, analyze_popularity

__all__ = [
    "ATSClassifier",
    "ATSResult",
    "AttributionResult",
    "attribute_organizations",
    "BusinessReport",
    "classify_business_models",
    "CookieStats",
    "analyze_cookies",
    "decode_cookie_value",
    "SyncReport",
    "detect_cookie_sync",
    "CandidateSet",
    "SanitizedCorpus",
    "build_corpus",
    "classify_adult_content",
    "compile_candidates",
    "sanitize_candidates",
    "OrganizationPrevalence",
    "Table2",
    "Table3",
    "TierRow",
    "build_figure3",
    "build_table2",
    "build_table3",
    "FingerprintingReport",
    "analyze_fingerprinting",
    "is_canvas_fingerprinting",
    "is_font_enumeration",
    "passes_englehardt_canvas",
    "CountryObservation",
    "CountryRow",
    "GeoReport",
    "analyze_geography",
    "HTTPSReport",
    "HTTPSTierRow",
    "analyze_https",
    "MalwareReport",
    "analyze_malware",
    "OwnerCluster",
    "OwnerReport",
    "discover_owners",
    "PartyLabels",
    "label_parties",
    "PopularityReport",
    "SitePopularity",
    "analyze_popularity",
]
