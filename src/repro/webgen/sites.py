"""Website models: ground-truth specifications for porn and regular sites.

A site spec is everything the synthetic server needs to render the site's
landing page and ancillary pages deterministically, and everything the
evaluation needs as ground truth (never read by the analysis pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from .policytext import PolicySpec
from .rank import RankTrajectory

__all__ = [
    "BannerSpec",
    "AgeGateSpec",
    "PornSiteSpec",
    "RegularSiteSpec",
    "BANNER_TYPES",
    "DISCOVERY_AGGREGATOR",
    "DISCOVERY_ALEXA_CATEGORY",
    "DISCOVERY_KEYWORD",
    "banner_to_row",
    "banner_from_row",
    "age_gate_to_row",
    "age_gate_from_row",
]

#: Degeling et al. banner taxonomy as used in Table 8.
BANNER_TYPES = ("no_option", "confirmation", "binary", "slider", "checkbox")

DISCOVERY_AGGREGATOR = "aggregator"
DISCOVERY_ALEXA_CATEGORY = "alexa_category"
DISCOVERY_KEYWORD = "keyword"


@dataclass(frozen=True)
class BannerSpec:
    """A cookie-consent banner shown on the landing page."""

    banner_type: str  # one of BANNER_TYPES
    #: Only rendered for clients in EU jurisdictions (geo-fenced banners).
    eu_only: bool = False
    #: Only rendered for non-EU clients (observed, if rarely: misconfigured
    #: geo-fencing shows banners in the US but not the EU).
    non_eu_only: bool = False

    def shown_in(self, *, in_eu: bool) -> bool:
        if self.eu_only and not in_eu:
            return False
        if self.non_eu_only and in_eu:
            return False
        return True


@dataclass(frozen=True)
class AgeGateSpec:
    """An age-verification interstitial."""

    #: "button" — warning text plus an affirmative button (bypassable);
    #: "social_login" — verifiable login-based gate (pornhub-in-Russia).
    mode: str = "button"
    #: Countries where the gate is shown; ``None`` means everywhere.
    countries: Optional[FrozenSet[str]] = None
    #: Countries where the gate is suppressed.
    suppressed_countries: FrozenSet[str] = frozenset()

    def shown_in(self, country_code: str) -> bool:
        if country_code in self.suppressed_countries:
            return False
        if self.countries is not None:
            return country_code in self.countries
        return True


@dataclass(frozen=True)
class PornSiteSpec:
    """Ground truth for one pornographic website."""

    domain: str
    trajectory: RankTrajectory
    language: str = "en"
    content_category: str = "tube"   # tube | cams | proxy | gallery | premium

    # -- ownership ---------------------------------------------------------------
    owner: Optional[str] = None       # operator name (Table 1 clusters)
    cert_org: Optional[str] = None    # X.509 Subject O (often absent)

    # -- discovery / corpus (§3) ----------------------------------------------------
    discovered_by: str = DISCOVERY_KEYWORD
    has_adult_keyword: bool = True
    #: Unresponsive during sanitization — removed as a false positive.
    responsive: bool = True
    #: Responsive at sanitization but fails during the main crawl (497 sites).
    crawl_flaky: bool = False

    # -- transport -------------------------------------------------------------------
    https: bool = False
    extra_first_party_hosts: Tuple[str, ...] = ("www",)

    # -- embedded third parties ---------------------------------------------------------
    embedded_services: Tuple[str, ...] = ()
    #: Per-country additions (regional ad networks), keyed by country code.
    regional_services: Tuple[Tuple[str, str], ...] = ()

    # -- first-party behavior --------------------------------------------------------------
    first_party_cookies: int = 2
    first_party_id_cookie: bool = True
    #: Site embeds its own visitor ID in requests to its ad network
    #: (first-party cookie-sync origin).
    passes_id_to: Optional[str] = None
    first_party_canvas_fp: bool = False

    # -- compliance (§7) ---------------------------------------------------------------------
    policy: Optional[PolicySpec] = None
    banner: Optional[BannerSpec] = None
    age_gate: Optional[AgeGateSpec] = None
    rta_label: bool = False

    # -- business (§4.1) ----------------------------------------------------------------------
    subscription: Optional[str] = None   # None | "free" | "paid"

    # -- reputation / geography -----------------------------------------------------------------
    scanner_hits: int = 0
    blocked_countries: FrozenSet[str] = frozenset()

    @property
    def tier(self) -> int:
        return self.trajectory.tier

    @property
    def is_malicious(self) -> bool:
        return self.scanner_hits >= 4

    @property
    def has_subscription(self) -> bool:
        return self.subscription is not None


# ----------------------------------------------------------------------
# Row codecs (see webgen.lazyspecs)
#
# Frozen sets are stored as sorted tuples: set equality is order-blind,
# so ``frozenset(sorted(s)) == s`` and the decoded spec compares equal
# to the one it was encoded from.
# ----------------------------------------------------------------------

def banner_to_row(spec: BannerSpec) -> tuple:
    return (spec.banner_type, spec.eu_only, spec.non_eu_only)


def banner_from_row(row: tuple) -> BannerSpec:
    return BannerSpec(row[0], eu_only=row[1], non_eu_only=row[2])


def age_gate_to_row(spec: AgeGateSpec) -> tuple:
    countries = None if spec.countries is None else tuple(sorted(spec.countries))
    return (spec.mode, countries, tuple(sorted(spec.suppressed_countries)))


def age_gate_from_row(row: tuple) -> AgeGateSpec:
    mode, countries, suppressed = row
    return AgeGateSpec(
        mode=mode,
        countries=None if countries is None else frozenset(countries),
        suppressed_countries=frozenset(suppressed),
    )


@dataclass(frozen=True)
class RegularSiteSpec:
    """Ground truth for one regular (reference corpus) website."""

    domain: str
    trajectory: RankTrajectory
    category: str = "news"
    https: bool = True
    cert_org: Optional[str] = None
    extra_first_party_hosts: Tuple[str, ...] = ("www",)
    embedded_services: Tuple[str, ...] = ()
    first_party_cookies: int = 2
    responsive: bool = True
    #: Contains an adult keyword substring — a §3 false-positive candidate.
    has_adult_keyword: bool = False
    #: Member of the paper's 9,688-site reference corpus (top-10K sample);
    #: False for keyword-trap sites that only exist as §3 false positives.
    in_reference_corpus: bool = True

    @property
    def tier(self) -> int:
        return self.trajectory.tier
