"""Third-party services: the model and the catalog of named actors.

Every advertising, analytics, CDN, social, and mining service in the
synthetic universe is a :class:`ThirdPartyService`.  The named catalog
reproduces every third-party actor the paper mentions explicitly
(ExoClick, AddThis, DoubleClick, adsco.re, xcvgdf.party, coinhive.com,
rlcdn.com, ...) with its published behavior; the long tail is generated
procedurally by :mod:`repro.webgen.universe` to hit the corpus-level counts
in :class:`repro.webgen.config.CalibrationTargets`.

``prevalence_porn`` / ``prevalence_regular`` are the fraction of sites in
each corpus that embed the service — the generator's levers for Figure 3
and Tables 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..js.runtime import CanvasBehavior, FontProbeBehavior

__all__ = [
    "ThirdPartyService",
    "NAMED_SERVICES",
    "named_service_map",
    "CATEGORY_ADS",
    "CATEGORY_ANALYTICS",
    "CATEGORY_CDN",
    "CATEGORY_SOCIAL",
    "CATEGORY_MINER",
    "CATEGORY_CONTENT",
]

CATEGORY_ADS = "advertising"
CATEGORY_ANALYTICS = "analytics"
CATEGORY_CDN = "cdn"
CATEGORY_SOCIAL = "social"
CATEGORY_MINER = "cryptomining"
CATEGORY_CONTENT = "content"

#: A canvas routine that *reads pixels back* but uses save/restore — it
#: fails Englehardt-Narayanan criterion (4), reproducing the paper's finding
#: that zero scripts pass the strict filters.
_EVASIVE_CANVAS = CanvasBehavior(
    width=280, height=60, colors=3, reads_back=True, uses_save_restore=True
)

#: The measureText pattern the paper's stricter rule catches: few fonts,
#: many same-text measurements (>= 50 total).
_MEASURE_TEXT_PROBE = FontProbeBehavior(fonts=4, repeats_per_font=16)

#: online-metrix.net's font-enumeration probe: many fonts, distinct texts.
_FONT_ENUMERATION_PROBE = FontProbeBehavior(
    fonts=120, repeats_per_font=1, distinct_texts=True
)


@dataclass(frozen=True)
class ThirdPartyService:
    """One third-party service (a registrable domain plus behavior)."""

    domain: str
    organization: Optional[str] = None
    category: str = CATEGORY_ADS
    #: Ground truth: is this an advertising/tracking service?
    is_ats: bool = True

    # -- reach ------------------------------------------------------------------
    prevalence_porn: float = 0.0
    prevalence_regular: float = 0.0
    #: Relative weight per popularity tier (0-1k, 1k-10k, 10k-100k, 100k+);
    #: scaled so mainstream services skew popular and shady ones skew tail.
    tier_weights: Tuple[float, float, float, float] = (1.0, 1.0, 1.0, 1.0)

    # -- transport / identity ------------------------------------------------------
    https: bool = True
    #: Organization string in the X.509 Subject O; ``None`` -> DV certificate
    #: that only repeats the domain name (not attributable, §4.2 footnote 7).
    cert_org: Optional[str] = None
    #: Additional hostnames (prefixes of ``domain``) used to serve content.
    host_prefixes: Tuple[str, ...] = ()
    #: Service mints arbitrary subdomains per request (img100-589.x.com).
    wildcard_subdomains: bool = False

    # -- list coverage ---------------------------------------------------------------
    in_easylist: bool = False
    #: When True the EasyList rule only matches specific ad paths, so other
    #: URLs (e.g. the fingerprinting script) escape full-URL matching.
    easylist_path_only: bool = False
    in_easyprivacy: bool = False
    in_disconnect: bool = False

    # -- cookie behavior ---------------------------------------------------------------
    sets_cookies: bool = True
    #: Expected number of distinct cookies stored per embedding site (can be
    #: below 1.0: some services only set cookies for certain ad types).
    cookie_rate: float = 1.0
    cookie_names: Tuple[str, ...] = ("uid",)
    cookie_id_length: int = 24
    #: Fraction of this service's cookies that are short session cookies.
    session_cookie_fraction: float = 0.2
    #: Fraction of cookies carrying values > 1,000 characters.
    huge_cookie_fraction: float = 0.0
    #: Fraction of ID cookies that embed the client IP (base64) — §5.1.1.
    embeds_client_ip_fraction: float = 0.0
    embeds_geo: bool = False
    geo_includes_isp: bool = False

    # -- cookie syncing -----------------------------------------------------------------
    #: Registrable domains this service redirects to with its cookie value.
    sync_partners: Tuple[str, ...] = ()
    #: Probability a given page visit triggers the sync redirect.
    sync_probability: float = 1.0
    #: Accepts first-party ID values appended by publisher pages.
    accepts_first_party_sync: bool = False

    # -- scripts -------------------------------------------------------------------------
    canvas_fp: Optional[CanvasBehavior] = None
    font_probe: Optional[FontProbeBehavior] = None
    #: Probability that a given embedding delivers the fingerprinting script
    #: (Table 5's per-service site counts are far below overall prevalence
    #: for CDNs like cloudfront.net that host fingerprinting for customers).
    fp_probability: float = 1.0
    #: Number of distinct fingerprinting script URLs this service serves
    #: (Table 5's script counts exceed site counts for e.g. adnium.com).
    fp_script_variants: int = 1
    webrtc: bool = False
    webrtc_probability: float = 1.0
    webrtc_script_variants: int = 1
    miner: bool = False
    miner_pool: str = ""

    # -- reputation -----------------------------------------------------------------------
    #: Number of VirusTotal-style scanners flagging the domain (>= 4 counts
    #: as malicious per §5.3).
    scanner_hits: int = 0
    #: When set, the service only serves malicious payloads (and is only
    #: flagged) for clients in these countries — §6.2's geo-targeting.
    malicious_countries: Optional[FrozenSet[str]] = None

    # -- geography -------------------------------------------------------------------------
    #: When set, the service is only embedded for clients in these countries.
    countries: Optional[FrozenSet[str]] = None
    #: The service refuses/fails for clients in these countries (§6: Russia
    #: sees ~700 fewer third-party services).
    excluded_countries: FrozenSet[str] = frozenset()

    @property
    def fingerprints(self) -> bool:
        return self.canvas_fp is not None or self.font_probe is not None

    @property
    def hosts(self) -> Tuple[str, ...]:
        """All static FQDNs this service serves from."""
        if not self.host_prefixes:
            return (self.domain,)
        return tuple(f"{prefix}.{self.domain}" for prefix in self.host_prefixes) + (
            self.domain,
        )

    def serves_country(self, country_code: str) -> bool:
        if country_code in self.excluded_countries:
            return False
        if self.countries is not None and country_code not in self.countries:
            return False
        return True

    def is_malicious_for(self, country_code: str) -> bool:
        """True when a client in ``country_code`` receives malicious content."""
        if self.scanner_hits < 4:
            return False
        if self.malicious_countries is None:
            return True
        return country_code in self.malicious_countries


def _svc(**kwargs) -> ThirdPartyService:
    return ThirdPartyService(**kwargs)


#: Every third-party actor the paper names, with its published behavior.
NAMED_SERVICES: List[ThirdPartyService] = [
    # ---- Alphabet (74% of porn sites overall; GA 39%, DoubleClick 12%) ------
    _svc(domain="google-analytics.com", organization="Alphabet",
         category=CATEGORY_ANALYTICS, prevalence_porn=0.39, prevalence_regular=0.65,
         tier_weights=(3.0, 2.0, 1.0, 0.6), cert_org="Google LLC",
         in_easyprivacy=True, in_disconnect=True, sets_cookies=False),
    _svc(domain="doubleclick.net", organization="Alphabet",
         prevalence_porn=0.12, prevalence_regular=0.60,
         tier_weights=(4.0, 2.5, 1.0, 0.5), cert_org="Google LLC",
         in_easylist=True, in_disconnect=True, cookie_names=("IDE", "DSID"),
         sync_partners=("adsrvr.org", "criteo.com"), sync_probability=0.35),
    _svc(domain="googleapis.com", organization="Alphabet", category=CATEGORY_CDN,
         is_ats=False, prevalence_porn=0.30, prevalence_regular=0.55,
         cert_org="Google LLC", in_disconnect=True, sets_cookies=False),
    _svc(domain="gstatic.com", organization="Alphabet", category=CATEGORY_CDN,
         is_ats=False, prevalence_porn=0.25, prevalence_regular=0.45,
         cert_org="Google LLC", in_disconnect=True, sets_cookies=False),
    _svc(domain="googlesyndication.com", organization="Alphabet",
         prevalence_porn=0.05, prevalence_regular=0.35,
         tier_weights=(3.0, 2.0, 1.0, 0.4), cert_org="Google LLC",
         in_easylist=True, in_disconnect=True),

    # ---- ExoClick (the porn-specialist giant: 43% of porn, 6 regular sites) --
    _svc(domain="exosrv.com", organization="ExoClick",
         prevalence_porn=0.21, prevalence_regular=0.0004,
         tier_weights=(1.5, 1.5, 1.0, 0.8), cert_org="ExoClick S.L.",
         in_easylist=True, cookie_names=("uid", "zsess", "splash"),
         cookie_rate=2.0, huge_cookie_fraction=0.05,
         embeds_client_ip_fraction=0.85,
         sync_partners=("exoclick.com", "tsyndicate.com", "doublepimp.com"),
         sync_probability=0.9, accepts_first_party_sync=True),
    _svc(domain="exoclick.com", organization="ExoClick",
         prevalence_porn=0.14, prevalence_regular=0.0003,
         tier_weights=(1.5, 1.5, 1.0, 0.8), cert_org="ExoClick S.L.",
         in_easylist=True, cookie_names=("uid",), cookie_rate=0.5,
         embeds_client_ip_fraction=0.29,
         huge_cookie_fraction=0.15,
         sync_partners=("exosrv.com",), sync_probability=0.9,
         accepts_first_party_sync=True),
    _svc(domain="exdynsrv.com", organization="ExoClick",
         prevalence_porn=0.10, prevalence_regular=0.0,
         cert_org="ExoClick S.L.", in_easylist=True,
         wildcard_subdomains=True, cookie_names=("xdid",),
         cookie_rate=0.5, embeds_client_ip_fraction=0.3,
         sync_partners=("exosrv.com",), sync_probability=0.5),

    # ---- CDNs / infrastructure -----------------------------------------------
    _svc(domain="cloudflare.com", organization="Cloudflare",
         category=CATEGORY_CDN, is_ats=False,
         prevalence_porn=0.35, prevalence_regular=0.30, cert_org="Cloudflare, Inc.",
         in_easylist=True, easylist_path_only=True, in_disconnect=True,
         cookie_names=("__cfduid",), session_cookie_fraction=0.0,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_probability=0.0126, fp_script_variants=2),
    _svc(domain="cloudfront.net", organization="Amazon", category=CATEGORY_CDN,
         is_ats=False, prevalence_porn=0.08, prevalence_regular=0.25,
         cert_org="Amazon.com, Inc.", in_easylist=True, easylist_path_only=True,
         in_disconnect=True, wildcard_subdomains=True, sets_cookies=False,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_probability=0.061, fp_script_variants=8),
    _svc(domain="alexa.com", organization="Amazon", category=CATEGORY_ANALYTICS,
         prevalence_porn=0.04, prevalence_regular=0.05, cert_org="Amazon.com, Inc.",
         in_easyprivacy=True, in_disconnect=True, cookie_names=("aid",)),

    # ---- Oracle ------------------------------------------------------------------
    _svc(domain="addthis.com", organization="Oracle", category=CATEGORY_SOCIAL,
         prevalence_porn=0.17, prevalence_regular=0.10, cert_org="Oracle Corporation",
         in_easyprivacy=True, in_disconnect=True,
         cookie_names=("__atuvc", "uvc", "loc"), cookie_rate=1.2,
         session_cookie_fraction=0.0,
         sync_partners=("bluekai.com",), sync_probability=0.4),
    _svc(domain="bluekai.com", organization="Oracle", category=CATEGORY_ANALYTICS,
         prevalence_porn=0.01, prevalence_regular=0.06, cert_org="Oracle Corporation",
         in_easyprivacy=True, in_disconnect=True, cookie_names=("bku",),
         accepts_first_party_sync=True),

    # ---- Other mainstream actors ---------------------------------------------------
    _svc(domain="yandex.ru", organization="Yandex", category=CATEGORY_ANALYTICS,
         prevalence_porn=0.04, prevalence_regular=0.08, cert_org="Yandex LLC",
         in_easyprivacy=True, in_disconnect=True,
         cookie_names=("yandexuid", "i", "yp"), cookie_rate=1.2,
         session_cookie_fraction=0.0),
    _svc(domain="facebook.net", organization="Facebook", category=CATEGORY_SOCIAL,
         prevalence_porn=0.008, prevalence_regular=0.40, cert_org="Facebook, Inc.",
         in_easyprivacy=True, in_disconnect=True, cookie_names=("fr",)),
    _svc(domain="criteo.com", organization="Criteo", prevalence_porn=0.002,
         prevalence_regular=0.12, cert_org="Criteo SA", in_easylist=True,
         in_disconnect=True, accepts_first_party_sync=True),
    _svc(domain="scorecardresearch.com", organization="comScore",
         category=CATEGORY_ANALYTICS, prevalence_porn=0.002,
         prevalence_regular=0.10, cert_org="comScore, Inc.",
         in_easyprivacy=True, in_disconnect=True),
    _svc(domain="adsrvr.org", organization="The Trade Desk",
         prevalence_porn=0.001, prevalence_regular=0.08, cert_org="The Trade Desk Inc.",
         in_easylist=True, in_disconnect=True, accepts_first_party_sync=True),
    _svc(domain="amazon-adsystem.com", organization="Amazon",
         prevalence_porn=0.001, prevalence_regular=0.12, cert_org="Amazon.com, Inc.",
         in_easylist=True, in_disconnect=True),
    _svc(domain="rlcdn.com", organization="TowerData/Acxiom",
         category=CATEGORY_ANALYTICS,
         prevalence_porn=0.0006,  # 4 porn sites, one offering illegal content
         prevalence_regular=0.04, cert_org="Acxiom Corporation",
         in_easyprivacy=True, in_disconnect=True, accepts_first_party_sync=True),

    # ---- Porn-specialized ad networks -------------------------------------------------
    _svc(domain="trafficjunky.net", organization="TrafficJunky",
         prevalence_porn=0.08, prevalence_regular=0.0, cert_org="TrafficJunky Inc.",
         in_easylist=True, cookie_names=("tj_uid",),
         sync_partners=("exosrv.com", "doublepimp.com"), sync_probability=0.5,
         tier_weights=(4.0, 2.0, 0.8, 0.3)),
    _svc(domain="juicyads.com", organization="JuicyAds",
         prevalence_porn=0.04, prevalence_regular=0.0, cert_org="JuicyAds Media Inc.",
         in_easylist=True,
         cookie_names=("juicy_uid", "jad_session", "jad_freq"),
         cookie_rate=1.9, huge_cookie_fraction=0.30,
         sync_partners=("exosrv.com",), sync_probability=0.4),
    _svc(domain="ero-advertising.com", organization="EroAdvertising",
         prevalence_porn=0.04, prevalence_regular=0.0005, cert_org="Interwebs Media B.V.",
         in_easylist=True, easylist_path_only=True, cookie_names=("eroa_uid",),
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_probability=0.13, fp_script_variants=32,
         sync_partners=("doublepimp.com",), sync_probability=0.3),
    _svc(domain="doublepimp.com", organization="DoublePimp",
         prevalence_porn=0.06, prevalence_regular=0.0, cert_org="Double Pimp LLC",
         in_easylist=True, host_prefixes=("ssl",),
         cookie_names=("dp_uid",), accepts_first_party_sync=True,
         sync_partners=("exoclick.com",), sync_probability=0.4),
    _svc(domain="tsyndicate.com", organization="TrafficStars",
         prevalence_porn=0.05, prevalence_regular=0.0, cert_org="Traffic Stars Ltd",
         in_easylist=True, cookie_names=("ts_uid",), huge_cookie_fraction=0.25,
         accepts_first_party_sync=True,
         sync_partners=("exosrv.com",), sync_probability=0.5),
    _svc(domain="popads.net", organization="PopAds",
         prevalence_porn=0.03, prevalence_regular=0.002, cert_org="Tomksoft S.A.",
         in_easylist=True, tier_weights=(0.3, 0.8, 1.0, 1.3)),
    _svc(domain="propellerads.com", organization="PropellerAds",
         prevalence_porn=0.03, prevalence_regular=0.004, cert_org="Propeller Ads Ltd",
         in_easylist=True, tier_weights=(0.3, 0.8, 1.0, 1.3)),
    _svc(domain="adxpansion.com", organization="AdXpansion",
         prevalence_porn=0.02, prevalence_regular=0.0, cert_org="AdXpansion Inc.",
         in_easylist=True),
    _svc(domain="trafficfactory.biz", organization="Traffic Factory",
         prevalence_porn=0.05, prevalence_regular=0.0, cert_org="Traffic Factory SARL",
         in_easylist=True, wildcard_subdomains=True,
         tier_weights=(3.0, 2.0, 1.0, 0.5)),

    # ---- hprofits ad exchange (Fig. 4's same-organization sync triangle) -------
    _svc(domain="hprofits.com", organization="HProfits",
         prevalence_porn=0.015, prevalence_regular=0.0, cert_org="HProfits Ltd",
         accepts_first_party_sync=True),
    _svc(domain="hd100546b.com", organization="HProfits",
         prevalence_porn=0.012, prevalence_regular=0.0, cert_org="HProfits Ltd",
         sync_partners=("hprofits.com",), sync_probability=0.9),
    _svc(domain="bd202457b.com", organization="HProfits",
         prevalence_porn=0.012, prevalence_regular=0.0, cert_org="HProfits Ltd",
         sync_partners=("hprofits.com",), sync_probability=0.9),

    # ---- Table 5: fingerprinting services ------------------------------------------
    _svc(domain="adsco.re", organization="Adsco",
         prevalence_porn=0.024, prevalence_regular=0.001, cert_org=None,
         in_easylist=False, webrtc=True, webrtc_probability=0.8,
         webrtc_script_variants=1, sets_cookies=False),
    _svc(domain="adnium.com", organization="Adnium",
         prevalence_porn=0.0041, prevalence_regular=0.0, cert_org="Adnium Inc.",
         in_easylist=True, easylist_path_only=True,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_script_variants=41),
    _svc(domain="highwebmedia.com", organization="HighWebMedia",
         prevalence_porn=0.0035, prevalence_regular=0.0004,
         cert_org="Multi Media LLC",  # chaturbate.com's operator
         in_easylist=True, easylist_path_only=True,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_script_variants=1),
    _svc(domain="xcvgdf.party", organization=None,
         prevalence_porn=0.0028, prevalence_regular=0.0, cert_org=None,
         in_easylist=False, canvas_fp=_EVASIVE_CANVAS,
         font_probe=_MEASURE_TEXT_PROBE, fp_script_variants=18),
    _svc(domain="provers.pro", organization=None,
         prevalence_porn=0.0024, prevalence_regular=0.0, cert_org=None,
         in_easylist=True, easylist_path_only=True,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_script_variants=1),
    _svc(domain="montwam.top", organization=None,
         prevalence_porn=0.002, prevalence_regular=0.0, cert_org=None,
         in_easylist=True,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_script_variants=25),
    _svc(domain="dditscdn.com", organization=None,
         prevalence_porn=0.0016, prevalence_regular=0.0005, cert_org=None,
         in_easylist=True, easylist_path_only=True,
         canvas_fp=_EVASIVE_CANVAS, font_probe=_MEASURE_TEXT_PROBE,
         fp_script_variants=1),
    _svc(domain="online-metrix.net", organization="ThreatMetrix",
         category=CATEGORY_ANALYTICS,
         prevalence_porn=0.0008, prevalence_regular=0.01,
         cert_org="ThreatMetrix Inc.", in_easyprivacy=True,
         font_probe=_FONT_ENUMERATION_PROBE, webrtc=True),
    _svc(domain="traffichunt.com", organization="TraffiHunt",
         prevalence_porn=0.005, prevalence_regular=0.002,
         cert_org="Traffic Hunt Media", in_easylist=True, webrtc=True,
         webrtc_script_variants=2),

    # ---- Geo-cookie services (§5.1.1) ------------------------------------------------
    _svc(domain="fling.com", organization="Global Personals Media",
         prevalence_porn=0.0014, prevalence_regular=0.0,
         cert_org="Global Personals Media LLC",
         cookie_names=("geo", "loc"), cookie_rate=2.0, embeds_geo=True,
         geo_includes_isp=False),
    _svc(domain="playwithme.com", organization=None,
         prevalence_porn=0.0008, prevalence_regular=0.0, cert_org=None,
         cookie_names=("loc",), embeds_geo=True, geo_includes_isp=True),

    # ---- Long-tail actors named in §4.2.2 ---------------------------------------------
    _svc(domain="adultforce.com", organization=None,
         category=CATEGORY_ANALYTICS, prevalence_porn=0.003,
         prevalence_regular=0.0, cert_org=None, tier_weights=(0.0, 0.0, 0.6, 2.0)),
    _svc(domain="zingyads.com", organization=None,
         prevalence_porn=0.003, prevalence_regular=0.0, cert_org=None,
         tier_weights=(0.0, 0.0, 0.6, 2.0)),
    _svc(domain="betweendigital.ru", organization=None, prevalence_porn=0.0002,
         prevalence_regular=0.0, cert_org=None, tier_weights=(0.0, 0.0, 0.2, 2.0)),
    _svc(domain="datamind.ru", organization=None, prevalence_porn=0.0002,
         prevalence_regular=0.0, cert_org=None, tier_weights=(0.0, 0.0, 0.2, 2.0)),
    _svc(domain="adlabs.ru", organization=None, prevalence_porn=0.0002,
         prevalence_regular=0.0, cert_org=None, tier_weights=(0.0, 0.0, 0.2, 2.0)),
    _svc(domain="adx.com.ru", organization=None, prevalence_porn=0.0002,
         prevalence_regular=0.0, cert_org=None, tier_weights=(0.0, 0.0, 0.2, 2.0)),
    _svc(domain="itraffictrade.com", organization=None,
         prevalence_porn=0.002, prevalence_regular=0.0, cert_org=None,
         scanner_hits=9, tier_weights=(0.0, 0.2, 1.0, 2.0)),

    # ---- Cryptominers (§5.3) -------------------------------------------------------------
    _svc(domain="coinhive.com", organization="Coinhive",
         category=CATEGORY_MINER, prevalence_porn=0.0008,
         prevalence_regular=0.0002, cert_org=None, miner=True,
         miner_pool="wss://pool.coinhive.com/ws", scanner_hits=34,
         in_easylist=True, sets_cookies=False),
    _svc(domain="jsecoin.com", organization="JSEcoin",
         category=CATEGORY_MINER, prevalence_porn=0.0003,
         prevalence_regular=0.0001, cert_org="JSEcoin Ltd", miner=True,
         miner_pool="wss://pool.jsecoin.com/ws", scanner_hits=12,
         in_easylist=True, sets_cookies=False),
    _svc(domain="bitcoin-pay.eu", organization=None,
         category=CATEGORY_MINER, prevalence_porn=0.0002,
         prevalence_regular=0.0, cert_org=None, miner=True,
         miner_pool="wss://ws.crypto-webminer.com/ws", scanner_hits=8,
         sets_cookies=False),
]


def named_service_map() -> Dict[str, ThirdPartyService]:
    """The named catalog indexed by registrable domain."""
    return {service.domain: service for service in NAMED_SERVICES}
