"""Longitudinal trend sections across evolving universe epochs.

``repro trend`` points at one store per epoch (each written by
``repro study --store --epoch N``, ideally with ``--since`` so every
epoch after the first is a cheap delta crawl) and renders how the
ecosystem shifts as :func:`~repro.webgen.evolve.evolve_universe` plays
time forward: tracker prevalence, HTTPS adoption, and churn among the
top third-party organizations.

Input is a sequence of ``(epoch, study)`` pairs; the renderers sort by
epoch, so callers can pass stores in any order.  Every metric is pulled
through the study memo and works identically on live and store-only
studies.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .tables import format_table

__all__ = ["trend_report", "trend_sections"]


def _ordered(studies: Sequence[Tuple[int, object]]):
    return sorted(studies, key=lambda pair: pair[0])


def _visited(study) -> int:
    return type(study)._successful_visit_count(study.porn_source())


def tracker_trend_section(studies: Sequence[Tuple[int, object]]) -> str:
    """Tracker prevalence by epoch: distinct ATS services and reach."""
    rows = []
    for epoch, study in _ordered(studies):
        ats = study.porn_ats()
        visited = _visited(study)
        with_ats = sum(1 for fqdns in ats.per_page.values() if fqdns)
        fraction = with_ats / visited if visited else 0.0
        rows.append((epoch, ats.fqdn_count, len(ats.ats_domains_relaxed),
                     with_ats, f"{fraction:.1%}"))
    return ("== trend: tracker prevalence ==\n"
            + format_table(
                ("epoch", "ATS FQDNs", "ATS domains", "sites w/ ATS",
                 "prevalence"),
                rows))


def https_trend_section(studies: Sequence[Tuple[int, object]]) -> str:
    """HTTPS adoption by epoch: fully-HTTPS sites and cleartext leaks."""
    rows = []
    for epoch, study in _ordered(studies):
        report = study.https_report()
        fully = 1.0 - report.not_fully_https_fraction
        rows.append((epoch, report.sites_visited, f"{fully:.1%}",
                     len(report.not_fully_https_sites),
                     f"{report.cleartext_cookie_fraction:.1%}"))
    return ("== trend: HTTPS adoption ==\n"
            + format_table(
                ("epoch", "sites", "fully HTTPS", "not fully",
                 "cleartext cookies"),
                rows))


def organization_trend_section(
    studies: Sequence[Tuple[int, object]], top_n: int = 5
) -> str:
    """Top third-party organizations by epoch, with churn annotations.

    Each epoch row lists the ``top_n`` organizations by porn-site reach
    (the Figure 3 ranking) and, from the second epoch on, which names
    entered and left the top set relative to the previous epoch — the
    consolidation/birth/death dynamics of
    :func:`~repro.webgen.evolve.evolve_universe` made visible.
    """
    lines = [f"== trend: top {top_n} organizations =="]
    previous = None
    for epoch, study in _ordered(studies):
        bars = study.figure3(top_n=top_n)
        names = [bar.organization for bar in bars]
        listing = ", ".join(
            f"{bar.organization} ({bar.porn_fraction:.0%})" for bar in bars
        )
        lines.append(f"epoch {epoch}: {listing}")
        if previous is not None:
            entered = [name for name in names if name not in previous]
            exited = [name for name in previous if name not in names]
            if entered or exited:
                lines.append(
                    "    churn: +" + (", ".join(entered) or "-")
                    + " / -" + (", ".join(exited) or "-")
                )
            else:
                lines.append("    churn: none")
        previous = names
    return "\n".join(lines)


def trend_sections(
    studies: Sequence[Tuple[int, object]]
) -> List[Tuple[str, str]]:
    """Every trend section, in print order, as ``(name, text)``."""
    return [
        ("trackers", tracker_trend_section(studies)),
        ("https", https_trend_section(studies)),
        ("organizations", organization_trend_section(studies)),
    ]


def trend_report(studies: Sequence[Tuple[int, object]]) -> str:
    """The complete longitudinal report as the CLI prints it."""
    texts = [text for _, text in trend_sections(studies)]
    return "\n\n".join(texts) + "\n"
