"""The synthetic web: assembly (builder) and serving (server side).

:func:`build_universe` deterministically constructs every website and
third-party service from a :class:`~repro.webgen.config.UniverseConfig`.
:class:`Universe` then acts as the *server side* of the web: the browser
sends it :class:`~repro.net.http.Request` objects and receives responses
whose cookies, redirects, and script behaviors reproduce — in aggregate —
the behaviors the paper measured.

Ground truth (site specs, service specs) lives here and is used only by
the generator and by evaluation code that validates the analysis pipeline;
the analysis itself consumes crawl logs exclusively.
"""

from __future__ import annotations

import base64
import dataclasses
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple,
)

import numpy as np

from ..blocklists.disconnect import DisconnectEntry, DisconnectList
from ..cache import FetchCache
from ..js.runtime import CanvasBehavior, FontProbeBehavior, ScriptBehavior
from ..net.dns import DNSResolver
from ..net.geo import COUNTRIES, GeoIPDatabase, IPAllocator
from ..net.http import Headers, Request, Response
from ..net.tls import Certificate
from ..net.whois import WhoisRegistry
from ..net.url import URL, parse_url, registrable_domain
from ..util import rng_for, stable_hash, token_for
from .config import CalibrationTargets, UniverseConfig
from .names import ADULT_KEYWORDS, NameFactory
from .organizations import PornOperator, TailOrgAllocator, operators_from_targets
from .policytext import (
    DOMINANT_TEMPLATE,
    TEMPLATE_COUNT,
    PolicyGenerator,
    PolicySpec,
)
from .rank import RankModel
from .render import (
    page_manifest,
    render_error_page,
    render_policy_page,
    render_porn_landing,
    render_regular_landing,
)
from .sites import (
    AgeGateSpec,
    BannerSpec,
    DISCOVERY_AGGREGATOR,
    DISCOVERY_ALEXA_CATEGORY,
    DISCOVERY_KEYWORD,
    PornSiteSpec,
    RegularSiteSpec,
)
from .thirdparty import (
    CATEGORY_ADS,
    CATEGORY_ANALYTICS,
    CATEGORY_CDN,
    CATEGORY_MINER,
    CATEGORY_SOCIAL,
    NAMED_SERVICES,
    ThirdPartyService,
)

__all__ = [
    "ClientContext",
    "FetchError",
    "SiteUnresponsiveError",
    "SiteTimeoutError",
    "TLSUnsupportedError",
    "Universe",
    "build_universe",
]

_COUNTRY_CODES = ("US", "UK", "ES", "RU", "IN", "SG")

#: Canvas/measureText behavior templates for tail and first-party scripts.
_TAIL_CANVAS = CanvasBehavior(width=260, height=80, colors=2, reads_back=True,
                              uses_save_restore=True)
_TAIL_PROBE = FontProbeBehavior(fonts=5, repeats_per_font=13)


class FetchError(Exception):
    """The request could not be served at all (network-level failure)."""


class SiteUnresponsiveError(FetchError):
    """The host never responds (dead site — a §3 sanitization false positive)."""


class SiteTimeoutError(FetchError):
    """The site exceeded the crawler's 120 s page-load timeout."""


class TLSUnsupportedError(FetchError):
    """The host refused the TLS handshake (HTTP-only server).

    The one failure mode where the crawler's HTTPS-first policy should
    retry over plain HTTP (§5.2); every other :class:`FetchError` —
    dead site, timeout, no route, geo-excluded service — fails the same
    way on both schemes, so downgrading would only mint a second failed
    request record.
    """


@dataclass(frozen=True)
class ClientContext:
    """Who is asking: a vantage point plus the crawl phase.

    ``epoch`` distinguishes the sanitization crawl from the main crawl so
    that the 497 flaky sites succeed in the former and fail in the latter,
    as in the paper's corpus accounting.
    """

    country_code: str = "ES"
    client_ip: str = "31.0.0.1"
    epoch: str = "crawl"  # "sanitization" | "crawl"

    @property
    def in_eu(self) -> bool:
        return COUNTRIES[self.country_code].in_eu


def _fraction(*parts) -> float:
    """A deterministic uniform [0,1) value derived from the parts."""
    return (stable_hash(*parts) % 10_000_000) / 10_000_000.0


class Universe:
    """The assembled synthetic web (server side + data sources)."""

    #: Does serving ever read *request cookies*?  ``fetch`` keys its memo on
    #: ``(url, referrer, country, client_ip, epoch)`` and every handler below
    #: derives cookie values server-side (``token_for``), so the answer for
    #: this class is ``False`` — the cookie-relevant projection of the jar is
    #: empty and a stored visit slice is reusable whenever its content hash
    #: and vantage match (see ``repro.datastore.delta``).  A subclass that
    #: makes responses depend on the jar must flip this flag; delta crawls
    #: then stop splicing at the first jar divergence instead of assuming
    #: slice purity.
    jar_sensitive = False

    def __init__(
        self,
        config: UniverseConfig,
        *,
        porn_sites: Mapping[str, PornSiteSpec],
        regular_sites: Mapping[str, RegularSiteSpec],
        services: Dict[str, ThirdPartyService],
        site_cdns: Dict[str, str],
        dynamic_cdn_sites: Set[str],
        rtb_bidders: List[str],
        certificates: Mapping[str, Certificate],
        easylist_text: str,
        easyprivacy_text: str,
        disconnect: DisconnectList,
        aggregator_listings: Tuple[Tuple[str, ...], ...],
        alexa_category_sites: Tuple[str, ...],
        policy_texts: Mapping[str, str],
        full_list_site: Optional[str],
        whois: Optional[WhoisRegistry] = None,
        fetch_cache_size: Optional[int] = None,
    ) -> None:
        self.config = config
        self.targets = config.targets
        self.porn_sites = porn_sites
        self.regular_sites = regular_sites
        self.services = services
        self.site_cdns = site_cdns          # cdn registrable domain -> site domain
        self.dynamic_cdn_sites = dynamic_cdn_sites
        self.rtb_bidders = rtb_bidders
        self.certificates = certificates
        self.easylist_text = easylist_text
        self.easyprivacy_text = easyprivacy_text
        self.disconnect = disconnect
        self.aggregator_listings = aggregator_listings
        self.alexa_category_sites = alexa_category_sites
        self._policy_texts = policy_texts
        self.full_list_site = full_list_site
        self.whois = whois if whois is not None else WhoisRegistry()
        #: Evolution lineage: base epoch -> frozenset of site domains whose
        #: *content* changed between that epoch and this universe's.
        #: Populated by ``evolve_universe`` (epoch-0 universes have no
        #: lineage); ``changed_domains_since`` is the accessor.
        self.content_changed_since: Dict[int, frozenset] = {}

        self.geoip = GeoIPDatabase()
        self.dns = DNSResolver()
        self._cdn_of_site = {site: cdn for cdn, site in site_cdns.items()}
        self._site_for_host: Dict[str, Tuple[str, str]] = {}
        self._build_routing()
        #: Render cache: serving is a pure function of (URL, referrer,
        #: client), so identical requests — the same ad pixel embedded on
        #: the same page, a bidder script recurring across frames — are
        #: served from memory.  Deterministic failures are cached too.
        #: The cap bounds resident response bytes independently of scale
        #: (memory-sensitive callers pass a smaller ``fetch_cache_size``).
        self.fetch_cache = FetchCache(
            maxsize=fetch_cache_size if fetch_cache_size else 200_000
        )

    # ------------------------------------------------------------------
    # Routing / DNS
    # ------------------------------------------------------------------

    #: Hosting countries for the synthetic servers (weights approximate the
    #: adult-hosting market: US and Dutch datacenters dominate).
    _HOSTING = ("US", "US", "US", "NL", "NL", "DE", "SG")

    def changed_domains_since(self, epoch: int) -> Optional[frozenset]:
        """Sites whose content changed since ``epoch``, if lineage is known.

        ``None`` means this universe was not derived from that epoch by
        an in-process evolution chain, and the caller must fall back to
        content-hash comparison (``repro.webgen.evolve``).  When a set is
        returned it is a proven *superset* of the hash-differing sites —
        evolution only alters serve-relevant state through the site-spec
        overlays it records — so splicing everything outside it is safe.
        """
        return self.content_changed_since.get(epoch)

    def _hosting_country(self, domain: str) -> str:
        if domain.endswith(".ru"):
            return "RU"
        return self._HOSTING[stable_hash(domain, "hosting") % len(self._HOSTING)]

    def _build_routing(self) -> None:
        allocator = IPAllocator()
        for domain, site in self.porn_sites.items():
            address = allocator.allocate(self._hosting_country(domain))
            self.dns.add_record(domain, address)
            for prefix in site.extra_first_party_hosts:
                self.dns.add_record(f"{prefix}.{domain}", address)
            if domain in self.dynamic_cdn_sites:
                self.dns.add_wildcard(domain, address)
            self._site_for_host[domain] = (domain, "porn")
        for domain, site in self.regular_sites.items():
            address = allocator.allocate(self._hosting_country(domain))
            self.dns.add_record(domain, address)
            for prefix in site.extra_first_party_hosts:
                self.dns.add_record(f"{prefix}.{domain}", address)
            self._site_for_host[domain] = (domain, "regular")
        for cdn_domain, site_domain in self.site_cdns.items():
            address = allocator.allocate(self._hosting_country(cdn_domain))
            self.dns.add_wildcard(cdn_domain, address)
            self._site_for_host[cdn_domain] = (site_domain, "cdn")
        for domain, service in self.services.items():
            address = allocator.allocate(self._hosting_country(domain))
            self.dns.add_wildcard(domain, address)

    # ------------------------------------------------------------------
    # Data-source APIs (stand-ins for Alexa / VirusTotal / EasyList feeds)
    # ------------------------------------------------------------------

    def alexa_top1m_domains(self) -> List[str]:
        """Every domain that appeared in the top-1M at least once in 2018."""
        domains = [
            domain
            for domain, site in self.porn_sites.items()
            if site.trajectory.ever_present
        ]
        domains.extend(
            domain
            for domain, site in self.regular_sites.items()
            if site.trajectory.ever_present
        )
        return sorted(domains)

    def reference_regular_corpus(self) -> List[str]:
        """The 9,688-site regular reference dataset (§3, Alexa top-10K)."""
        return sorted(
            domain
            for domain, site in self.regular_sites.items()
            if site.in_reference_corpus
        )

    def rank_history(self, domain: str):
        """The site's 2018 rank-list summary (public Alexa-style data).

        Returns a :class:`~repro.webgen.rank.RankTrajectory` or ``None``
        for domains never tracked.  This is a *data source* (the paper's
        longitudinal Alexa dataset), not crawl ground truth.
        """
        site = self.porn_sites.get(domain) or self.regular_sites.get(domain)
        return site.trajectory if site is not None else None

    def scanner_hits(self, domain: str, country_code: str = "ES") -> int:
        """VirusTotal-style aggregated detections for a domain.

        Geo-targeted distributors are only flagged by scanners probing from
        (or simulating) the targeted countries.
        """
        key = registrable_domain(domain)
        service = self.services.get(key)
        if service is not None:
            if service.scanner_hits and service.malicious_countries is not None:
                return (
                    service.scanner_hits
                    if country_code in service.malicious_countries
                    else 0
                )
            return service.scanner_hits
        site = self.porn_sites.get(key)
        if site is not None:
            return site.scanner_hits
        return 0

    def policy_text(self, site_domain: str) -> Optional[str]:
        return self._policy_texts.get(site_domain)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def fetch(self, request: Request, client: ClientContext) -> Response:
        """Serve one HTTP request from the given client (memoized).

        Responses depend only on the URL, the ``Referer`` header, and the
        client context — never on request cookies — so the render cache
        key captures the full input space and hits are bit-identical to
        recomputation.
        """
        key = (str(request.url), request.referrer, client.country_code,
               client.client_ip, client.epoch)
        return self.fetch_cache.fetch(
            key, lambda: self._fetch_uncached(request, client)
        )

    def _fetch_uncached(self, request: Request, client: ClientContext) -> Response:
        host = request.url.host
        base = registrable_domain(host)

        service = self.services.get(base)
        if service is not None:
            return self._serve_service(service, request, client)

        routed = self._site_for_host.get(base)
        if routed is None:
            raise FetchError(f"no route to host {host}")
        site_domain, kind = routed
        if kind == "cdn":
            return self._serve_asset(request)
        if kind == "regular":
            return self._serve_regular(self.regular_sites[site_domain], request, client)
        return self._serve_porn(self.porn_sites[site_domain], request, client)

    # -- porn sites ------------------------------------------------------------

    def _serve_porn(
        self, site: PornSiteSpec, request: Request, client: ClientContext
    ) -> Response:
        if not site.responsive:
            raise SiteUnresponsiveError(site.domain)
        if site.crawl_flaky and client.epoch == "crawl":
            raise SiteTimeoutError(site.domain)
        if client.country_code in site.blocked_countries:
            return Response(request.url, 451,
                            body=render_error_page(451, "Unavailable For Legal Reasons"),
                            manifest=())
        if request.url.scheme == "https" and not site.https:
            raise TLSUnsupportedError(f"{site.domain} does not support HTTPS")

        path = request.url.path
        if path == "/":
            return self._porn_landing(site, request, client)
        if path == "/privacy":
            return self._porn_policy(site, request)
        if path.startswith("/js/fp"):
            return self._script_response(request)
        return self._serve_asset(request)

    def _porn_landing(
        self, site: PornSiteSpec, request: Request, client: ClientContext
    ) -> Response:
        verified = request.url.query_params().get("verified") == "1"
        show_gate = (
            site.age_gate is not None and site.age_gate.shown_in(client.country_code)
        )
        if verified and site.age_gate is not None and site.age_gate.mode == "button":
            show_gate = False
        show_banner = site.banner is not None and site.banner.shown_in(
            in_eu=client.in_eu
        )
        embeds = self._embeds_for(site, client)
        body = render_porn_landing(
            site,
            embeds=embeds,
            show_age_gate=show_gate,
            show_banner=show_banner,
            policy_available=site.policy is not None,
            verified=verified,
        )
        headers = Headers()
        headers.add("Content-Type", "text/html")
        for header in self._first_party_cookies(site, client):
            headers.add("Set-Cookie", header)
        return Response(request.url, 200, headers, body,
                        manifest=page_manifest(embeds))

    def _porn_policy(self, site: PornSiteSpec, request: Request) -> Response:
        policy = site.policy
        if policy is None or policy.link_broken or site.domain not in self._policy_texts:
            headers = Headers([("Content-Type", "text/html")])
            return Response(request.url, 404, headers,
                            render_error_page(404, "Not Found"), manifest=())
        body = render_policy_page(site.domain, self._policy_texts[site.domain])
        return Response(request.url, 200, Headers([("Content-Type", "text/html")]),
                        body, manifest=())

    def _first_party_cookies(
        self, site: PornSiteSpec, client: ClientContext
    ) -> List[str]:
        """Set-Cookie headers the landing page issues."""
        if site.first_party_cookies <= 0:
            return []
        seed = self.config.seed
        headers = [
            # Session cookie: excluded by the paper's session filter.
            f"PHPSESSID={token_for(26, seed, site.domain, 'sess', client.client_ip)}; Path=/",
            # Short preference cookies: excluded by the 6-character filter.
            "theme=drk; Path=/; Max-Age=31536000",
            f"lang={site.language[:3]}; Path=/; Max-Age=31536000",
            "vol=80; Path=/",
        ]
        id_names = ("uid", "vid", "tid", "pid", "cid", "nid")
        for index in range(min(site.first_party_cookies, len(id_names))):
            name = id_names[index]
            value = token_for(24, seed, site.domain, "fp", name, client.client_ip)
            # A small share of first-party identifier cookies are enormous
            # serialized blobs (§5.1.1: values up to 3,600 characters).
            if _fraction(site.domain, name, "fphuge") < 0.03:
                filler = 1_100 + stable_hash(site.domain, name, "fphugelen") % 2_500
                value += token_for(filler, seed, site.domain, name, "fphuge")
            headers.append(f"{name}={value}; Path=/; Max-Age=31536000")
        return headers

    def first_party_uid(self, site_domain: str, client: ClientContext) -> str:
        """The site's own visitor identifier (also its ``uid`` cookie value)."""
        return token_for(24, self.config.seed, site_domain, "fp", "uid",
                         client.client_ip)

    # -- regular sites ------------------------------------------------------------

    def _serve_regular(
        self, site: RegularSiteSpec, request: Request, client: ClientContext
    ) -> Response:
        if not site.responsive:
            raise SiteUnresponsiveError(site.domain)
        if request.url.scheme == "https" and not site.https:
            raise TLSUnsupportedError(f"{site.domain} does not support HTTPS")
        if request.url.path != "/":
            return self._serve_asset(request)
        embeds = self._regular_embeds(site, client)
        body = render_regular_landing(site, embeds=embeds)
        headers = Headers([("Content-Type", "text/html")])
        if site.first_party_cookies > 0:
            seed = self.config.seed
            headers.add(
                "Set-Cookie",
                f"session={token_for(20, seed, site.domain, 'sess')}; Path=/",
            )
            headers.add(
                "Set-Cookie",
                f"uid={token_for(24, seed, site.domain, 'fp', 'uid', client.client_ip)};"
                " Path=/; Max-Age=31536000",
            )
        return Response(request.url, 200, headers, body,
                        manifest=page_manifest(embeds))

    # -- embeds ----------------------------------------------------------------------

    def _service_host(
        self, service: ThirdPartyService, site_domain: str, client: ClientContext
    ) -> str:
        if service.wildcard_subdomains:
            if service.category == CATEGORY_CDN:
                # Per-customer distribution hosts (dxxxx.cloudfront.net),
                # bucketized so the FQDN population stays bounded.
                bucket = stable_hash(site_domain, service.domain, "dist") % 64
                return f"d{token_for(6, self.config.seed, service.domain, bucket)}{bucket}.{service.domain}"
            # Ad-serving pools rotated per country (srvN.exdynsrv.com).
            pool_slot = 1 + stable_hash(site_domain, service.domain,
                                        client.country_code) % 8
            return f"srv{pool_slot}-{client.country_code.lower()}.{service.domain}"
        hosts = service.hosts
        return hosts[stable_hash(site_domain, service.domain, "host") % len(hosts)]

    def _embed_for(
        self,
        service: ThirdPartyService,
        site_domain: str,
        client: ClientContext,
        *,
        page_https: bool = True,
        pub_value: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Decide (kind, url) for one service embedded on one site.

        Pages reference third parties with their own scheme (HTTP pages use
        ``http://`` embeds to avoid mixed-content blocking), so a resource
        travels over TLS only when both the page and the service support it.
        """
        scheme = "https" if (service.https and page_https) else "http"
        host = self._service_host(service, site_domain, client)
        base = f"{scheme}://{host}"
        token = token_for(8, self.config.seed, site_domain, service.domain)

        if service.miner:
            return ("script", f"{base}/miner.js")
        if service.fingerprints and _fraction(site_domain, service.domain, "fp") \
                < service.fp_probability:
            variant = stable_hash(site_domain, service.domain, "fpv") \
                % max(service.fp_script_variants, 1)
            return ("script", f"{base}/fp/fp-{variant}.js")
        if service.webrtc and _fraction(site_domain, service.domain, "rtc") \
                < service.webrtc_probability:
            variant = stable_hash(site_domain, service.domain, "rtcv") \
                % max(service.webrtc_script_variants, 1)
            return ("script", f"{base}/rtc/check-{variant}.js")

        if service.category == CATEGORY_ANALYTICS:
            return ("script", f"{base}/analytics.js")
        if service.category == CATEGORY_SOCIAL:
            return ("script", f"{base}/widget.js")
        if service.category == CATEGORY_CDN:
            choice = stable_hash(site_domain, service.domain, "cdnkind") % 3
            if choice == 0:
                return ("script", f"{base}/lib/app-{token}.js")
            if choice == 1:
                return ("link", f"{base}/css/base-{token}.css")
            return ("img", f"{base}/img/sprite-{token}.png")

        # Advertising: mix of script tags, tracking pixels, and ad iframes.
        suffix = f"?pub={pub_value}" if pub_value else ""
        choice = stable_hash(site_domain, service.domain, "adkind") % 100
        if choice < 60:
            return ("script", f"{base}/ad/banner-{token}.js{suffix}")
        if choice < 85:
            if suffix:
                return ("img", f"{base}/px{suffix}&cb={token}")
            return ("img", f"{base}/px?cb={token}")
        return ("iframe", f"{base}/ad/frame-{token}.html{suffix}")

    def _embeds_for(
        self, site: PornSiteSpec, client: ClientContext
    ) -> List[Tuple[str, str]]:
        embeds: List[Tuple[str, str]] = []
        pub_value = (
            self.first_party_uid(site.domain, client)
            if site.passes_id_to is not None and site.first_party_id_cookie
            else None
        )
        for domain in site.embedded_services:
            service = self.services.get(domain)
            if service is None or not service.serves_country(client.country_code):
                continue
            value = pub_value if domain == site.passes_id_to else None
            embed = self._embed_for(service, site.domain, client,
                                    page_https=site.https, pub_value=value)
            embeds.append(embed)
            # Some services load several distinct fingerprinting scripts on
            # one page (Table 5: adnium.com serves 41 scripts on 26 sites).
            if "/fp/fp-" in embed[1] and service.fp_script_variants > 1 \
                    and _fraction(site.domain, domain, "fp2") < 0.6:
                variant = (stable_hash(site.domain, domain, "fpv") + 1
                           + stable_hash(site.domain, domain, "fpv2")) \
                    % service.fp_script_variants
                base = embed[1].rsplit("/fp/", 1)[0]
                embeds.append(("script", f"{base}/fp/fp-{variant}.js"))
        # First-party resources.
        cdn = self._cdn_of_site.get(site.domain)
        if cdn is not None:
            scheme = "https" if site.https else "http"
            embeds.append(("img", f"{scheme}://static.{cdn}/img/logo.png"))
        if site.domain in self.dynamic_cdn_sites:
            scheme = "https" if site.https else "http"
            first = 100 + stable_hash(site.domain, client.country_code, "a") % 100
            second = 500 + stable_hash(site.domain, client.country_code, "b") % 100
            embeds.append(
                ("img", f"{scheme}://img{first}-{second}.{site.domain}/th.jpg")
            )
        if site.first_party_canvas_fp:
            scheme = "https" if site.https else "http"
            embeds.append(("script", f"{scheme}://{site.domain}/js/fp.js"))
        return embeds

    def _regular_embeds(
        self, site: RegularSiteSpec, client: ClientContext
    ) -> List[Tuple[str, str]]:
        embeds = []
        for domain in site.embedded_services:
            service = self.services.get(domain)
            if service is None or not service.serves_country(client.country_code):
                continue
            embeds.append(self._embed_for(service, site.domain, client,
                                          page_https=site.https))
        cdn = self._cdn_of_site.get(site.domain)
        if cdn is not None:
            scheme = "https" if site.https else "http"
            embeds.append(("img", f"{scheme}://static.{cdn}/img/logo.png"))
        return embeds

    # -- third-party service endpoints --------------------------------------------------

    def _serve_service(
        self, service: ThirdPartyService, request: Request, client: ClientContext
    ) -> Response:
        if not service.serves_country(client.country_code):
            raise FetchError(f"{service.domain} unavailable in {client.country_code}")
        if request.url.scheme == "https" and not service.https:
            raise TLSUnsupportedError(f"{service.domain} does not support HTTPS")

        path = request.url.path
        site_context = self._referrer_site(request)

        if path.startswith("/ad/frame"):
            return self._serve_ad_frame(service, request, client, site_context)
        if path.endswith(".js"):
            return self._script_response(request)
        if path.endswith(".css") or path.endswith(".png") or path.endswith(".jpg"):
            return self._serve_asset(request)
        if path == "/px" or path == "/collect":
            return self._serve_beacon(service, request, client, site_context)
        if path == "/sync":
            return self._serve_sync(service, request, client, site_context)
        if path == "/ws":
            # Miner pool websocket handshake.
            return Response(request.url, 200,
                            Headers([("Content-Type", "application/json")]),
                            '{"pool":"ok"}')
        return self._serve_asset(request)

    def _referrer_site(self, request: Request) -> str:
        referrer = request.referrer
        if not referrer:
            return "direct"
        try:
            return registrable_domain(parse_url(referrer).host)
        except Exception:
            return "direct"

    def service_cookie_value(
        self,
        service: ThirdPartyService,
        name: str,
        client: ClientContext,
        *,
        site_context: str,
    ) -> str:
        """The deterministic cookie value ``service`` stores for this browser.

        The base identifier is stable per (service, name, client) — a real
        tracker recognizes a returning browser — but the *encoding* varies
        per site for services that embed the client IP or geolocation.
        """
        seed = self.config.seed
        base = token_for(service.cookie_id_length, seed, service.domain, name,
                         client.client_ip)
        if service.embeds_geo and name in ("geo", "loc"):
            coords = self.geoip.coordinates_of(client.client_ip) or (0.0, 0.0)
            value = f"lat%3D{coords[0]:.4f}%26lon%3D{coords[1]:.4f}"
            if service.geo_includes_isp:
                asn = 64_000 + stable_hash(client.client_ip) % 1000
                value += f"%26isp%3DAS{asn}%20SynthNet%20Telecom"
            return value
        if _fraction(service.domain, site_context, name, "ip") \
                < service.embeds_client_ip_fraction:
            raw = f"{base}:{client.client_ip}".encode()
            return base64.b64encode(raw).decode().rstrip("=")
        if _fraction(service.domain, site_context, name, "huge") \
                < service.huge_cookie_fraction:
            filler_len = 1_100 + stable_hash(service.domain, name, "hugelen") % 2_500
            return base + token_for(filler_len, seed, service.domain, name, "huge")
        return base

    def _service_set_cookies(
        self,
        service: ThirdPartyService,
        request: Request,
        client: ClientContext,
        site_context: str,
    ) -> List[str]:
        if not service.sets_cookies or not service.cookie_names:
            return []
        headers = []
        per_name_p = min(1.0, service.cookie_rate / len(service.cookie_names))
        for name in service.cookie_names:
            if _fraction(service.domain, site_context, name, "set") >= per_name_p:
                continue
            value = self.service_cookie_value(service, name, client,
                                              site_context=site_context)
            attributes = f"Domain={service.domain}; Path=/"
            if _fraction(service.domain, name, "sessiontype") \
                    < service.session_cookie_fraction:
                pass  # session cookie: no Max-Age
            else:
                attributes += "; Max-Age=31536000"
            if service.https:
                attributes += "; Secure"
            headers.append(f"{name}={value}; {attributes}")
        return headers

    def _sync_location(
        self,
        service: ThirdPartyService,
        client: ClientContext,
        site_context: str,
        *,
        hop: int,
    ) -> Optional[str]:
        """Where (if anywhere) this service redirects to sync its cookie."""
        if not service.sync_partners:
            return None
        if _fraction(service.domain, site_context, "sync") >= service.sync_probability:
            return None
        candidates = [
            partner
            for partner in service.sync_partners
            if partner in self.services
            and self.services[partner].serves_country(client.country_code)
        ]
        if not candidates:
            return None
        partner = candidates[
            stable_hash(service.domain, site_context, "partner") % len(candidates)
        ]
        partner_service = self.services[partner]
        scheme = "https" if partner_service.https else "http"
        # The value shipped is the service's own primary cookie value.
        name = service.cookie_names[0] if service.cookie_names else "uid"
        value = self.service_cookie_value(service, name, client,
                                          site_context=site_context)
        return (
            f"{scheme}://{partner}/sync?uid={value}&src={service.domain}&hop={hop}"
        )

    def _serve_beacon(
        self,
        service: ThirdPartyService,
        request: Request,
        client: ClientContext,
        site_context: str,
    ) -> Response:
        headers = Headers([("Content-Type", "image/gif")])
        for cookie_header in self._service_set_cookies(service, request, client,
                                                       site_context):
            headers.add("Set-Cookie", cookie_header)
        location = self._sync_location(service, client, site_context, hop=1)
        if location is not None:
            headers.set("Location", location)
            return Response(request.url, 302, headers, "")
        return Response(request.url, 200, headers, "GIF89a")

    def _serve_sync(
        self,
        service: ThirdPartyService,
        request: Request,
        client: ClientContext,
        site_context: str,
    ) -> Response:
        """Receiving end of a cookie-sync redirect: store the mapping."""
        headers = Headers([("Content-Type", "image/gif")])
        for cookie_header in self._service_set_cookies(service, request, client,
                                                       site_context):
            headers.add("Set-Cookie", cookie_header)
        params = request.url.query_params()
        hop = int(params.get("hop", "1") or "1")
        if hop < 2 and _fraction(service.domain, site_context, "chain") < 0.25:
            location = self._sync_location(service, client, site_context, hop=hop + 1)
            if location is not None:
                headers.set("Location", location)
                return Response(request.url, 302, headers, "")
        return Response(request.url, 200, headers, "GIF89a")

    def _serve_ad_frame(
        self,
        service: ThirdPartyService,
        request: Request,
        client: ClientContext,
        site_context: str,
    ) -> Response:
        """An ad iframe: loads RTB bidders *dynamically* (not publisher-called)."""
        parts = ["<html><body>"]
        scripts: List[Tuple[str, str]] = []
        if self.rtb_bidders:
            count = 1 + stable_hash(service.domain, site_context, "nbid") % 2
            for index in range(count):
                bidder = self.rtb_bidders[
                    stable_hash(service.domain, site_context, "bid", index)
                    % len(self.rtb_bidders)
                ]
                bidder_service = self.services[bidder]
                if not bidder_service.serves_country(client.country_code):
                    continue
                scheme = "https" if bidder_service.https else "http"
                token = token_for(6, self.config.seed, site_context, bidder)
                src = f"{scheme}://{bidder}/ad/bid-{token}.js"
                parts.append(f'<script src="{src}"></script>')
                scripts.append(("script", src))
        parts.append("<div class='ad'>sponsored</div></body></html>")
        headers = Headers([("Content-Type", "text/html")])
        for cookie_header in self._service_set_cookies(service, request, client,
                                                       site_context):
            headers.add("Set-Cookie", cookie_header)
        return Response(request.url, 200, headers, "\n".join(parts),
                        manifest=tuple(scripts))

    def _script_response(self, request: Request) -> Response:
        headers = Headers([("Content-Type", "application/javascript")])
        return Response(request.url, 200, headers,
                        f"/* synthetic script {request.url.path} */")

    def _serve_asset(self, request: Request) -> Response:
        content_type = "text/css" if request.url.path.endswith(".css") else "image/png"
        return Response(request.url, 200,
                        Headers([("Content-Type", content_type)]), "")

    # -- script behaviors ------------------------------------------------------------------

    def script_behavior(self, url: URL) -> Optional[ScriptBehavior]:
        """What the script fetched from ``url`` does when executed."""
        base = registrable_domain(url.host)
        path = url.path
        scheme_host = f"{url.scheme}://{url.host}"

        service = self.services.get(base)
        if service is None:
            # First-party fingerprinting script (§5.1.3: 26% of canvas
            # scripts are served first party).
            if path.startswith("/js/fp"):
                return ScriptBehavior(canvas=_TAIL_CANVAS, font_probe=_TAIL_PROBE,
                                      reads_navigator=True)
            return None

        if path == "/miner.js":
            return ScriptBehavior(is_miner=True, miner_pool=service.miner_pool)
        if path.startswith("/fp/"):
            beacons = (f"{scheme_host}/px?cb=fp",) if service.sets_cookies else ()
            return ScriptBehavior(
                canvas=service.canvas_fp,
                font_probe=service.font_probe,
                uses_webrtc=service.webrtc,
                beacons=beacons,
                reads_navigator=True,
            )
        if path.startswith("/rtc/"):
            beacons = (f"{scheme_host}/px?cb=rtc",) if service.sets_cookies else ()
            return ScriptBehavior(uses_webrtc=True, beacons=beacons,
                                  reads_navigator=True)
        if path.startswith("/ad/banner") or path.startswith("/ad/bid"):
            return ScriptBehavior(beacons=(f"{scheme_host}/px?cb=ad",),
                                  reads_navigator=True)
        if path == "/analytics.js":
            # Analytics snippets store their visitor ID as a *first-party*
            # cookie via document.cookie (the `_ga` pattern); the value is
            # minted by the executing browser per page.
            first_party_cookie = None
            if not service.sets_cookies:
                first_party_cookie = (f"_{service.domain[:2]}", "")
            return ScriptBehavior(beacons=(f"{scheme_host}/collect?v=1",),
                                  reads_navigator=True,
                                  sets_document_cookie=first_party_cookie)
        if path == "/widget.js":
            return ScriptBehavior(beacons=(f"{scheme_host}/px?cb=w",))
        return None

    # -- certificates --------------------------------------------------------------------------

    def certificate_for(self, host: str) -> Optional[Certificate]:
        """The leaf certificate presented for ``host`` (HTTPS hosts only)."""
        return self.certificates.get(registrable_domain(host))

    def whois_organization(self, host: str) -> Optional[str]:
        """WHOIS registrant organization for the host's registrable domain.

        A data-source API (the paper's WHOIS queries); returns ``None``
        for privacy-redacted or unregistered records.
        """
        return self.whois.organization_of(host)
