"""Table 3 — third-party presence per popularity tier (the long tail)."""

from conftest import scaled

from repro.core.ecosystem import build_table3
from repro.reporting.tables import render_table3


def test_table3_long_tail(benchmark, study, paper, reporter):
    labels = study.porn_labels()
    popularity = study.crawled_popularity()
    table = benchmark(lambda: build_table3(labels, popularity))

    for index, row in enumerate(table.rows):
        reporter.row(
            f"tier {row.interval}: sites",
            scaled(paper.tier_site_counts[index]),
            row.site_count,
        )
        reporter.row(
            f"tier {row.interval}: third-party domains (unique)",
            f"{scaled(paper.tier_third_party_totals[index])} "
            f"({scaled(paper.tier_third_party_unique[index])})",
            f"{row.third_party_total} ({row.third_party_unique})",
        )
    reporter.row("domains present in all four tiers", "3%",
                 f"{table.all_tier_fraction:.1%}")
    reporter.text(render_table3(table))

    # Shape: the 10k-100k tier hosts the most distinct third parties, and
    # unique domains concentrate in the unpopular tiers.
    totals = [row.third_party_total for row in table.rows]
    assert totals[2] == max(totals)
    uniques = [row.third_party_unique for row in table.rows]
    assert uniques[2] + uniques[3] > uniques[0] + uniques[1]
    assert 0.0 < table.all_tier_fraction < 0.10
