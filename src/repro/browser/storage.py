"""Crawl-log persistence (the stand-in for OpenWPM's SQLite store).

A :class:`~repro.browser.events.CrawlLog` serializes to a JSON-Lines file:
one header line, then one line per visit/request/cookie/JS-call record.
Logs round-trip losslessly, so expensive crawls can be archived and the
analyses re-run without the universe — which is how the original study's
pipeline operated on stored OpenWPM databases.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import IO, Dict, Iterable, Union

from ..js.api import JSCall
from .events import CookieRecord, CrawlLog, PageVisit, RequestRecord

__all__ = ["save_log", "load_log", "dump_lines", "parse_lines"]

_FORMAT = "repro-crawl-log"
_VERSION = 1

PathLike = Union[str, pathlib.Path]


def _record_dict(record) -> Dict:
    return dataclasses.asdict(record)


def dump_lines(log: CrawlLog) -> Iterable[str]:
    """Yield the JSONL lines for a crawl log."""
    yield json.dumps({
        "format": _FORMAT,
        "version": _VERSION,
        "country_code": log.country_code,
        "client_ip": log.client_ip,
        "seq": log._seq,
    })
    for visit in log.visits:
        yield json.dumps({"kind": "visit", **_record_dict(visit)})
    for request in log.requests:
        yield json.dumps({"kind": "request", **_record_dict(request)})
    for cookie in log.cookies:
        yield json.dumps({"kind": "cookie", **_record_dict(cookie)})
    for call in log.js_calls:
        yield json.dumps({"kind": "js_call", **_record_dict(call)})


def save_log(log: CrawlLog, path: PathLike) -> None:
    """Write the log to ``path`` as JSON Lines."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for line in dump_lines(log):
            handle.write(line + "\n")


def parse_lines(lines: Iterable[str]) -> CrawlLog:
    """Rebuild a crawl log from JSONL lines (inverse of :func:`dump_lines`)."""
    iterator = iter(lines)
    try:
        header = json.loads(next(iterator))
    except StopIteration:
        raise ValueError("empty crawl-log stream") from None
    if header.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} stream")
    if header.get("version") != _VERSION:
        raise ValueError(f"unsupported version {header.get('version')!r}")

    log = CrawlLog(country_code=header.get("country_code", ""),
                   client_ip=header.get("client_ip", ""))
    for line in iterator:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.pop("kind", None)
        if kind == "visit":
            log.visits.append(PageVisit(**payload))
        elif kind == "request":
            log.requests.append(RequestRecord(**payload))
        elif kind == "cookie":
            log.cookies.append(CookieRecord(**payload))
        elif kind == "js_call":
            log.js_calls.append(JSCall(**payload))
        else:
            raise ValueError(f"unknown record kind: {kind!r}")
    log._seq = header.get("seq", 0)
    return log


def load_log(path: PathLike) -> CrawlLog:
    """Read a crawl log previously written by :func:`save_log`."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_lines(handle)
