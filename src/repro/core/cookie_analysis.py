"""Section 5.1.1 / Table 4 — HTTP cookie analysis.

The pipeline (all over crawl-log cookie records, deduplicated per
(page, cookie domain, name, value)):

1. count all stored cookies and the fraction of sites installing any;
2. filter to *potential identifier* cookies: non-session, value length of
   at least six characters;
3. split first-party / third-party by registrable domain;
4. decode values (base64 and URL decoding) hunting for the client IP and
   for geolocation coordinates;
5. rank the third-party domains installing the most ID cookies (Table 4).
"""

from __future__ import annotations

import base64
import binascii
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple
from urllib.parse import unquote

from ..browser.events import CookieRecord, CrawlLog
from ..net.url import registrable_domain

__all__ = [
    "CookieStats",
    "TopCookieDomain",
    "analyze_cookies",
    "decode_cookie_value",
    "MIN_ID_LENGTH",
]

MIN_ID_LENGTH = 6
HUGE_LENGTH = 1_000

_GEO_RE = re.compile(r"lat\s*=\s*(-?\d+(?:\.\d+)?).*?lon\s*=\s*(-?\d+(?:\.\d+)?)",
                     re.IGNORECASE | re.DOTALL)
_ISP_RE = re.compile(r"isp\s*=\s*([^&;]+)", re.IGNORECASE)


def decode_cookie_value(value: str) -> List[str]:
    """All plausible decodings of a cookie value (URL, then base64)."""
    decodings = [value]
    unquoted = unquote(value)
    if unquoted != value:
        decodings.append(unquoted)
    for candidate in list(decodings):
        padded = candidate + "=" * (-len(candidate) % 4)
        try:
            decoded = base64.b64decode(padded, validate=True).decode(
                "utf-8", errors="strict"
            )
        except (binascii.Error, UnicodeDecodeError, ValueError):
            continue
        if decoded and decoded.isprintable():
            decodings.append(decoded)
    return decodings


@dataclass(frozen=True)
class TopCookieDomain:
    """One Table 4 row."""

    domain: str
    site_fraction: float
    site_count: int
    cookie_count: int
    is_ats: bool
    in_regular_web: bool
    ip_cookie_fraction: float


@dataclass
class CookieStats:
    """Everything §5.1.1 reports."""

    total_cookies: int = 0
    sites_with_cookies: int = 0
    sites_visited: int = 0
    id_cookies: int = 0
    huge_id_cookies: int = 0
    first_party_id_cookies: int = 0
    third_party_id_cookies: int = 0
    third_party_cookie_domains: Set[str] = field(default_factory=set)
    sites_with_third_party_cookies: int = 0
    ip_cookies: int = 0
    ip_cookie_domains: Dict[str, int] = field(default_factory=dict)
    geo_cookies: int = 0
    geo_cookie_sites: Set[str] = field(default_factory=set)
    geo_cookies_with_isp: int = 0
    #: (name, value) -> number of distinct sites where observed.
    popular_cookies: Dict[Tuple[str, str], int] = field(default_factory=dict)
    top_domains: List[TopCookieDomain] = field(default_factory=list)

    @property
    def sites_with_cookies_fraction(self) -> float:
        return self.sites_with_cookies / self.sites_visited \
            if self.sites_visited else 0.0

    @property
    def sites_with_third_party_cookies_fraction(self) -> float:
        return self.sites_with_third_party_cookies / self.sites_visited \
            if self.sites_visited else 0.0

    def popular_cookie_site_coverage(self, top: int = 100) -> float:
        """Fraction of sites carrying at least one of the ``top`` most
        widespread (name, value) cookies."""
        if not self.popular_cookies or not self.sites_visited:
            return 0.0
        ranked = sorted(self.popular_cookies.values(), reverse=True)[:top]
        # Popular cookies overlap heavily on the same sites; the max single
        # coverage is the floor, the sum the (unreachable) ceiling.
        return min(1.0, max(ranked) / self.sites_visited)


def _dedupe(cookies: Iterable[CookieRecord]) -> Iterator[CookieRecord]:
    """Yield each (page, domain, name, value) cookie once, in order.

    A generator rather than a list so the analysis streams: only the
    dedup key set is retained, never the records themselves — which is
    what lets :func:`analyze_cookies` run over a datastore cursor
    without hydrating the log.
    """
    seen: Set[Tuple[str, str, str, str]] = set()
    for cookie in cookies:
        key = (cookie.page_domain, cookie.domain, cookie.name, cookie.value)
        if key in seen:
            continue
        seen.add(key)
        yield cookie


def analyze_cookies(
    log: CrawlLog,
    *,
    ats_domains: Optional[Set[str]] = None,
    regular_web_domains: Optional[Set[str]] = None,
    top_n: int = 5,
) -> CookieStats:
    """Run the full §5.1.1 pipeline over one crawl log.

    ``log`` may be a hydrated :class:`CrawlLog` or any object exposing
    re-iterable ``cookies``/``successful_visits()`` plus ``client_ip``
    (e.g. :class:`~repro.datastore.StoredLogView`): every event is
    consumed in one streaming pass.
    """
    stats = CookieStats()
    visited = {visit.site_domain for visit in log.successful_visits()}
    stats.sites_visited = len(visited)

    client_ip = log.client_ip
    sites_with_cookies: Set[str] = set()
    sites_with_tp: Set[str] = set()
    per_domain_cookies: Dict[str, int] = {}
    per_domain_sites: Dict[str, Set[str]] = {}
    per_domain_ip: Dict[str, int] = {}
    popular: Dict[Tuple[str, str], Set[str]] = {}

    for cookie in _dedupe(log.cookies):
        stats.total_cookies += 1
        sites_with_cookies.add(cookie.page_domain)
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        stats.id_cookies += 1
        if len(cookie.value) > HUGE_LENGTH:
            stats.huge_id_cookies += 1
        base = registrable_domain(cookie.domain)
        third_party = base != registrable_domain(cookie.page_domain)
        if third_party:
            stats.third_party_id_cookies += 1
            stats.third_party_cookie_domains.add(base)
            sites_with_tp.add(cookie.page_domain)
            per_domain_cookies[base] = per_domain_cookies.get(base, 0) + 1
            per_domain_sites.setdefault(base, set()).add(cookie.page_domain)
        else:
            stats.first_party_id_cookies += 1

        popular.setdefault((cookie.name, cookie.value), set()).add(
            cookie.page_domain
        )

        decodings = decode_cookie_value(cookie.value)
        has_ip = client_ip and any(client_ip in text for text in decodings)
        if has_ip:
            stats.ip_cookies += 1
            stats.ip_cookie_domains[base] = stats.ip_cookie_domains.get(base, 0) + 1
            if third_party:
                per_domain_ip[base] = per_domain_ip.get(base, 0) + 1
        for text in decodings:
            match = _GEO_RE.search(text)
            if match:
                stats.geo_cookies += 1
                stats.geo_cookie_sites.add(cookie.page_domain)
                if _ISP_RE.search(text):
                    stats.geo_cookies_with_isp += 1
                break

    stats.sites_with_cookies = len(sites_with_cookies)
    stats.sites_with_third_party_cookies = len(sites_with_tp)
    stats.popular_cookies = {
        key: len(sites) for key, sites in popular.items()
    }

    ranked = sorted(per_domain_sites.items(), key=lambda item: -len(item[1]))
    for domain, sites in ranked[:top_n]:
        count = per_domain_cookies.get(domain, 0)
        stats.top_domains.append(
            TopCookieDomain(
                domain=domain,
                site_fraction=len(sites) / stats.sites_visited
                if stats.sites_visited else 0.0,
                site_count=len(sites),
                cookie_count=count,
                is_ats=bool(ats_domains) and domain in ats_domains,
                in_regular_web=bool(regular_web_domains)
                and domain in regular_web_domains,
                ip_cookie_fraction=per_domain_ip.get(domain, 0) / count
                if count else 0.0,
            )
        )
    return stats
