"""Unit tests for the geography comparison built on handcrafted inputs."""

import pytest

from repro.browser.events import CrawlLog, PageVisit
from repro.core.ats import ATSResult
from repro.core.geodiff import CountryObservation, analyze_geography
from repro.core.malware import MalwareReport
from repro.core.partylabel import PartyLabels


def observation(country, fqdns, ats=(), malicious_domains=(),
                malicious_sites=(), blocked=0):
    log = CrawlLog(country_code=country)
    for index in range(blocked):
        log.visits.append(
            PageVisit(f"blocked-{index}.com", "https://x/", False, status=451)
        )
    labels = PartyLabels()
    labels.third_party_direct["page.com"] = set(fqdns)
    ats_result = ATSResult(ats_fqdns=set(ats))
    malware = MalwareReport(
        malicious_third_parties=set(malicious_domains),
        sites_with_malicious_third_parties={
            site: set(malicious_domains) for site in malicious_sites
        },
    )
    return CountryObservation(log=log, labels=labels, ats=ats_result,
                              malware=malware)


class TestGeoUnit:
    def build(self):
        observations = {
            "ES": observation("ES", {"a.com", "b.com", "es-only.com"},
                              ats={"a.com"},
                              malicious_domains={"mal.com", "es-mal.com"},
                              malicious_sites={"s1.com", "s2.com"}),
            "RU": observation("RU", {"a.com", "ru-only.ru"},
                              ats={"a.com", "ru-only.ru"},
                              malicious_domains={"mal.com"},
                              malicious_sites={"s1.com"},
                              blocked=2),
        }
        return analyze_geography(
            observations, regular_web_fqdns={"a.com", "unrelated.net"}
        )

    def test_unique_counts(self):
        report = self.build()
        rows = {row.country: row for row in report.rows}
        assert rows["ES"].unique_fqdns == 2      # b.com, es-only.com
        assert rows["RU"].unique_fqdns == 1      # ru-only.ru

    def test_unique_ats(self):
        report = self.build()
        rows = {row.country: row for row in report.rows}
        assert rows["ES"].unique_ats == 0        # a.com seen in both
        assert rows["RU"].unique_ats == 1

    def test_web_ecosystem_fraction(self):
        report = self.build()
        rows = {row.country: row for row in report.rows}
        assert rows["ES"].web_ecosystem_fraction == pytest.approx(1 / 3)
        assert rows["RU"].web_ecosystem_fraction == pytest.approx(1 / 2)

    def test_blocked_counted(self):
        report = self.build()
        rows = {row.country: row for row in report.rows}
        assert rows["RU"].blocked_sites == 2
        assert rows["ES"].blocked_sites == 0

    def test_totals_are_unions(self):
        report = self.build()
        assert report.total_fqdns == 4
        assert report.total_ats == 2

    def test_malware_everywhere_intersection(self):
        report = self.build()
        assert report.malicious_domains_everywhere == {"mal.com"}
        assert report.malicious_sites_everywhere == {"s1.com"}
