"""Measurement-as-a-service: a long-running server over a shared store.

The CLI runs one study per process; this package turns the same
machinery into a service many clients share.  Four layers, stdlib only:

1. :mod:`jobs` — the job model (universe config + vantage points +
   analysis selection), a persistent queue journaled to SQLite next to
   the shard files, and the worker pool that executes jobs on the
   existing ``Study``/``stored_crawl`` machinery with cooperative
   cancellation at per-site checkpoint boundaries.
2. :mod:`events` — per-job append-only event logs fanned out to any
   number of subscribers (the same per-site/per-analysis hooks the CLI
   progress output consumes).
3. :mod:`sse` — Server-Sent Events framing for those event streams.
4. :mod:`server` / :mod:`api` — the HTTP surface: submit/list/cancel
   jobs, stream progress, and fetch result tables/figures rendered
   byte-identically to ``repro report`` straight from the store.

Start it with ``repro serve --store DIR --port N --workers K``.
"""

from .events import EventLog, JobEvent, TERMINAL_KINDS
from .jobs import (
    ANALYSIS_NAMES,
    Job,
    JobCancelled,
    JobManager,
    JobSpec,
    JobState,
)
from .server import ReproServer

__all__ = [
    "ANALYSIS_NAMES",
    "EventLog",
    "Job",
    "JobCancelled",
    "JobEvent",
    "JobManager",
    "JobSpec",
    "JobState",
    "ReproServer",
    "TERMINAL_KINDS",
]
