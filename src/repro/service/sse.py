"""Server-Sent Events framing (RFC-less but WHATWG-spec-shaped).

One event frame per :class:`~repro.service.events.JobEvent`::

    id: <seq>
    event: <kind>
    data: <payload as canonical JSON>
    <blank line>

Payloads are serialized with sorted keys so the byte stream two
subscribers receive is identical, not merely equivalent.  Idle
connections get comment frames (``: heartbeat``) which browsers and
``curl`` ignore but which keep middleboxes from reaping the socket and
let the server notice a dead peer.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from .events import JobEvent

__all__ = ["HEARTBEAT_FRAME", "format_event", "parse_stream"]

#: Comment frame sent when a stream has been idle for a heartbeat period.
HEARTBEAT_FRAME = b": heartbeat\n\n"


def format_event(event: JobEvent) -> bytes:
    """The wire frame for one event."""
    data = json.dumps(event.payload, sort_keys=True, separators=(",", ":"))
    return (f"id: {event.seq}\n"
            f"event: {event.kind}\n"
            f"data: {data}\n\n").encode("utf-8")


def parse_stream(chunks: Iterator[bytes]
                 ) -> Iterator[Tuple[Optional[int], str, Dict]]:
    """Decode an SSE byte stream into ``(seq, kind, payload)`` tuples.

    The inverse of :func:`format_event`, used by the test suite, the CI
    serve-check client, and the benchmark subscribers.  Comment frames
    are dropped; incomplete trailing data is ignored (a closed stream
    ends mid-frame only when the peer died).
    """
    buffer = b""
    for chunk in chunks:
        buffer += chunk
        while b"\n\n" in buffer:
            frame, buffer = buffer.split(b"\n\n", 1)
            seq: Optional[int] = None
            kind = "message"
            data_lines: List[str] = []
            for line in frame.decode("utf-8").splitlines():
                if line.startswith(":"):
                    continue
                if line.startswith("id:"):
                    seq = int(line[3:].strip())
                elif line.startswith("event:"):
                    kind = line[6:].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
            if not data_lines and seq is None:
                continue  # pure comment frame
            payload = json.loads("\n".join(data_lines)) if data_lines else {}
            yield seq, kind, payload
