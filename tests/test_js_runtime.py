"""Unit tests for script behaviors and the instrumented API log."""

from repro.js.api import API, JSCall, calls_by_script
from repro.js.runtime import (
    CanvasBehavior,
    FontProbeBehavior,
    ScriptBehavior,
    execute_script,
)


def run(behavior, url="https://t.com/s.js", host="site.com"):
    return execute_script(url, behavior, document_host=host)


class TestCanvasExecution:
    def test_canvas_draw_sequence(self):
        calls, _ = run(ScriptBehavior(canvas=CanvasBehavior(colors=3)))
        apis = [c.api for c in calls]
        assert apis[0] == API.CANVAS_CREATE
        assert apis.count(API.CONTEXT_FILL_STYLE) == 3
        assert API.CONTEXT_FILL_TEXT in apis
        assert API.CANVAS_TO_DATA_URL in apis

    def test_save_restore_emitted_when_flagged(self):
        calls, _ = run(
            ScriptBehavior(canvas=CanvasBehavior(uses_save_restore=True))
        )
        apis = {c.api for c in calls}
        assert API.CONTEXT_SAVE in apis
        assert API.CONTEXT_RESTORE in apis

    def test_get_image_data_variant(self):
        spec = CanvasBehavior(read_api=API.CONTEXT_GET_IMAGE_DATA, read_area=500)
        calls, _ = run(ScriptBehavior(canvas=spec))
        reads = [c for c in calls if c.api == API.CONTEXT_GET_IMAGE_DATA]
        assert len(reads) == 1
        assert reads[0].arg("area") == 500

    def test_no_read_back(self):
        calls, _ = run(ScriptBehavior(canvas=CanvasBehavior(reads_back=False)))
        apis = {c.api for c in calls}
        assert API.CANVAS_TO_DATA_URL not in apis
        assert API.CONTEXT_GET_IMAGE_DATA not in apis


class TestFontProbe:
    def test_same_text_measurement_counts(self):
        probe = FontProbeBehavior(fonts=4, repeats_per_font=16)
        calls, _ = run(ScriptBehavior(font_probe=probe))
        measures = [c for c in calls if c.api == API.CONTEXT_MEASURE_TEXT]
        assert len(measures) == 64
        texts = {c.arg("text") for c in measures}
        assert len(texts) == 1  # all the same text

    def test_distinct_texts_mode(self):
        probe = FontProbeBehavior(fonts=60, repeats_per_font=1,
                                  distinct_texts=True)
        calls, _ = run(ScriptBehavior(font_probe=probe))
        measures = [c for c in calls if c.api == API.CONTEXT_MEASURE_TEXT]
        texts = {c.arg("text") for c in measures}
        assert len(texts) == 60

    def test_font_set_per_font(self):
        probe = FontProbeBehavior(fonts=7)
        calls, _ = run(ScriptBehavior(font_probe=probe))
        fonts = [c for c in calls if c.api == API.CONTEXT_SET_FONT]
        assert len(fonts) == 7
        assert {c.arg("font_index") for c in fonts} == set(range(7))


class TestOtherBehaviors:
    def test_webrtc_calls(self):
        calls, _ = run(ScriptBehavior(uses_webrtc=True))
        apis = {c.api for c in calls}
        assert API.RTC_PEER_CONNECTION in apis
        assert API.RTC_ICE_CANDIDATE in apis

    def test_miner_emits_worker_and_pool_request(self):
        behavior = ScriptBehavior(is_miner=True,
                                  miner_pool="wss://pool.coinhive.com/ws")
        calls, follow_ups = run(behavior)
        workers = [c for c in calls if c.api == API.WORKER_CREATE]
        assert len(workers) == 1
        assert workers[0].arg("purpose") == "cryptomining"
        assert "wss://pool.coinhive.com/ws" in follow_ups

    def test_beacons_returned_as_follow_ups(self):
        behavior = ScriptBehavior(beacons=("https://t.com/px?cb=1",))
        _, follow_ups = run(behavior)
        assert follow_ups == ["https://t.com/px?cb=1"]

    def test_navigator_reads(self):
        calls, _ = run(ScriptBehavior(reads_navigator=True))
        apis = {c.api for c in calls}
        assert API.NAVIGATOR_USER_AGENT in apis
        assert API.SCREEN_RESOLUTION in apis

    def test_document_cookie_set(self):
        calls, _ = run(ScriptBehavior(sets_document_cookie=("fpjs", "abc")))
        sets = [c for c in calls if c.api == API.DOCUMENT_COOKIE_SET]
        assert len(sets) == 1
        assert sets[0].arg("name") == "fpjs"

    def test_fingerprints_property(self):
        assert ScriptBehavior(canvas=CanvasBehavior()).is_fingerprinting
        assert ScriptBehavior(font_probe=FontProbeBehavior()).is_fingerprinting
        assert not ScriptBehavior(uses_webrtc=True).is_fingerprinting


class TestCallGrouping:
    def test_calls_by_script(self):
        calls = [
            JSCall("https://a.com/1.js", "s.com", API.CONTEXT_SAVE, {}),
            JSCall("https://b.com/2.js", "s.com", API.CONTEXT_SAVE, {}),
            JSCall("https://a.com/1.js", "t.com", API.CONTEXT_RESTORE, {}),
        ]
        grouped = calls_by_script(calls)
        assert len(grouped) == 2
        assert len(grouped["https://a.com/1.js"]) == 2

    def test_call_records_carry_document_host(self):
        calls, _ = run(ScriptBehavior(uses_webrtc=True), host="page.com")
        assert all(c.document_host == "page.com" for c in calls)
