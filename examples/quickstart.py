#!/usr/bin/env python3
"""Quickstart: build a small synthetic porn-web universe, crawl ten sites
with the instrumented browser, and look at what the trackers did.

Run:  python examples/quickstart.py
"""

from repro import UniverseConfig, build_universe
from repro.crawler import OpenWPMCrawler, VantagePointManager
from repro.net.url import registrable_domain


def main() -> None:
    # A 2%-scale universe: ~137 porn sites, ~200 regular sites, full
    # third-party ecosystem structure. seed makes everything reproducible.
    universe = build_universe(UniverseConfig(seed=42, scale=0.02))
    print(f"universe: {len(universe.porn_sites)} porn sites, "
          f"{len(universe.regular_sites)} regular sites, "
          f"{len(universe.services)} third-party services\n")

    # Crawl ten landing pages from the Spanish vantage point, reusing one
    # browser session (cookies persist across sites, as in the paper).
    vantage_points = VantagePointManager()
    crawler = OpenWPMCrawler(universe, vantage_points.home)
    sites = sorted(
        domain for domain, site in universe.porn_sites.items()
        if site.responsive and not site.crawl_flaky
    )[:10]
    log = crawler.crawl(sites)

    print(f"crawled {len(log.visits)} landing pages")
    print(f"  HTTP requests observed : {len(log.requests)}")
    print(f"  cookies stored         : {len(log.cookies)}")
    print(f"  JS API calls           : {len(log.js_calls)}\n")

    # Who did the pages talk to?
    third_parties = sorted({
        registrable_domain(record.fqdn)
        for record in log.requests
        if registrable_domain(record.fqdn)
        != registrable_domain(record.page_domain)
    })
    print(f"third-party domains contacted ({len(third_parties)}):")
    for domain in third_parties[:15]:
        print(f"  - {domain}")
    if len(third_parties) > 15:
        print(f"  ... and {len(third_parties) - 15} more")

    # Which third parties dropped identifier cookies?
    id_cookies = [
        cookie for cookie in log.cookies
        if not cookie.session and len(cookie.value) >= 6
        and registrable_domain(cookie.domain)
        != registrable_domain(cookie.page_domain)
    ]
    print(f"\nthird-party identifier cookies: {len(id_cookies)}")
    for cookie in id_cookies[:5]:
        print(f"  {cookie.domain:<24} {cookie.name}="
              f"{cookie.value[:24]}{'...' if len(cookie.value) > 24 else ''}")


if __name__ == "__main__":
    main()
