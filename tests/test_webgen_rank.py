"""Unit tests for the rank-trajectory model (Figure 1 substrate)."""

import numpy as np
import pytest

from repro.util import rng_for
from repro.webgen.rank import (
    RankModel,
    RankTrajectory,
    TOP_LIST_SIZE,
    summarize_series,
    tier_of_rank,
)


def model(days=365):
    return RankModel(rng_for(7, "rank-test"), days=days)


class TestTierOfRank:
    def test_boundaries(self):
        assert tier_of_rank(1) == 0
        assert tier_of_rank(1_000) == 0
        assert tier_of_rank(1_001) == 1
        assert tier_of_rank(10_000) == 1
        assert tier_of_rank(10_001) == 2
        assert tier_of_rank(100_000) == 2
        assert tier_of_rank(100_001) == 3
        assert tier_of_rank(5_000_000) == 3


class TestSampling:
    def test_best_rank_within_tier(self):
        m = model()
        for tier, (low, high) in enumerate(
            [(30, 1_000), (1_001, 10_000), (10_001, 100_000), (100_001, 4_000_000)]
        ):
            for _ in range(20):
                trajectory = m.sample(tier)
                assert low <= trajectory.best_rank <= high

    def test_pinned_best_rank(self):
        trajectory = model().sample(0, best_rank=22)
        assert trajectory.best_rank == 22
        assert trajectory.observed_best >= 22

    def test_observed_best_close_to_true_best(self):
        # With 365 half-normal draws the minimum multiplier is ~1.
        trajectory = model().sample(1, best_rank=5_000)
        assert trajectory.observed_best <= 6_000

    def test_median_at_least_best(self):
        for _ in range(20):
            trajectory = model().sample(2)
            if trajectory.ever_present:
                assert trajectory.observed_median >= trajectory.observed_best
                assert trajectory.observed_worst >= trajectory.observed_median

    def test_presence_fraction_bounds(self):
        for tier in range(4):
            trajectory = model().sample(tier)
            assert 0.0 <= trajectory.presence_fraction <= 1.0

    def test_tier0_sites_mostly_always_present(self):
        m = model()
        always = sum(m.sample(0).always_present for _ in range(100))
        assert always > 70

    def test_tier3_sites_rarely_always_present(self):
        m = model()
        always = sum(m.sample(3).always_present for _ in range(100))
        assert always < 25

    def test_dropout_preserves_best_day(self):
        # Even a high-dropout site keeps its best rank observable, so the
        # site's popularity tier is stable.
        m = model()
        for _ in range(50):
            trajectory = m.sample(2)
            if trajectory.ever_present:
                assert trajectory.tier == tier_of_rank(trajectory.observed_best)


class TestSummaries:
    def test_summarize_full_presence(self):
        series = np.array([10, 20, 30])
        summary = summarize_series(series)
        assert summary.observed_best == 10
        assert summary.observed_median == 20
        assert summary.observed_worst == 30
        assert summary.always_present
        assert summary.always_top_1k

    def test_summarize_with_censoring(self):
        series = np.array([500, TOP_LIST_SIZE + 5, 800])
        summary = summarize_series(series)
        assert summary.days_present == 2
        assert summary.observed_best == 500
        assert not summary.always_present

    def test_never_present(self):
        series = np.full(10, TOP_LIST_SIZE + 1)
        summary = summarize_series(series)
        assert not summary.ever_present
        assert summary.observed_best == 0
        assert summary.tier == 3

    def test_always_top_1k_requires_presence(self):
        series = np.array([900, TOP_LIST_SIZE + 1])
        assert not summarize_series(series).always_top_1k

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            RankModel(rng_for(1, "x"), days=0)

    def test_daily_series_positive(self):
        series = model(100).daily_series(50, 1.0)
        assert (series >= 1).all()
        assert len(series) == 100
