"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``corpus``        — compile and sanitize the §3 corpus, print the accounting.
``crawl``         — crawl N sites from a vantage point, print tracker summary.
``study``         — run the full study and print every table and figure.
``report``        — render every table and figure purely from a crawl store.
``trend``         — longitudinal report across per-epoch stores: tracker
                    prevalence, HTTPS adoption, and organization churn.
``store info``    — print a store's run manifests (timings, counts, caches).
``store reshard`` — convert a single-file store into an N-shard directory.
``serve``         — run the measurement service: a job queue, SSE progress
                    streams, and result endpoints over one shared store.

Every crawling command accepts ``--scale`` (corpus size as a fraction of
the paper's 6,843 sites), ``--seed``, and ``--store PATH`` (persist
crawls to a SQLite datastore; an interrupted run resumes at per-site
granularity; add ``--store-shards N`` to create a sharded store).
``report`` and ``store info`` read scale and seed from the store itself.

Longitudinal runs add ``--epoch N`` (evolve the universe N epochs past
the seed one: trackers are born, die, and consolidate; sites migrate to
HTTPS, adopt banners, and churn content) and ``--since PATH`` (delta
crawl: splice event slices for provably-unchanged sites out of a prior
epoch's store instead of re-rendering them — byte-identical to a full
crawl by construction, and several times faster at low churn).

The CLI builds its universes in *lazy* mode: site specs are minted on
first fetch from compact packed rows (bit-identical to eager
construction, which the test suite keeps as the parity reference), so
memory stays proportional to the sites actually visited.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import Study, UniverseConfig
from .net.url import registrable_domain
from .reporting import full_report


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale (1.0 = the paper's 6,843 sites)")
    parser.add_argument("--seed", type=int, default=20191021)
    parser.add_argument("--epoch", type=int, default=0,
                        help="evolve the universe this many epochs past "
                             "the seed one (tracker birth/death/"
                             "consolidation, HTTPS migration, banner "
                             "spread, content churn)")
    parser.add_argument("--churn", type=float, default=0.1,
                        help="fraction of sites whose content changes "
                             "per epoch")


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="persist crawls to this SQLite datastore "
                             "(resumable; re-runs skip stored sites)")
    parser.add_argument("--store-shards", metavar="N", type=int, default=None,
                        help="create the store as N shard files keyed by "
                             "site domain (checkpoints touch one shard)")
    parser.add_argument("--since", metavar="PATH", default=None,
                        help="delta crawl against this prior-epoch store: "
                             "sites whose content is provably unchanged "
                             "splice their stored slices instead of "
                             "re-rendering (results byte-identical to a "
                             "full crawl)")
    parser.add_argument("--incremental", action="store_true",
                        help="cache per-site analysis partials next to the "
                             "store and reuse them across epochs: only "
                             "churned sites are re-analyzed, tables stay "
                             "byte-identical to a full recompute")


def _build_study(args: argparse.Namespace) -> Study:
    from .webgen.builder import build_universe

    config = UniverseConfig(seed=args.seed, scale=args.scale,
                            epoch=getattr(args, "epoch", 0),
                            churn=getattr(args, "churn", 0.1))
    incremental = bool(getattr(args, "incremental", False))
    if incremental and getattr(args, "store", None) is None:
        raise SystemExit("error: --incremental requires --store "
                         "(the partial cache lives next to the store)")
    return Study(build_universe(config, lazy=True),
                 store=getattr(args, "store", None),
                 store_shards=getattr(args, "store_shards", None),
                 baseline_store=getattr(args, "since", None),
                 aggregate_cache=incremental or None,
                 parallelism=getattr(args, "parallelism", None))


def cmd_corpus(args: argparse.Namespace) -> int:
    study = _build_study(args)
    candidates, sanitized = study.corpus()
    by_source = candidates.count_by_source()
    print(f"candidates: {len(candidates)}")
    for source, count in sorted(by_source.items()):
        print(f"  {source}: {count}")
    print(f"false positives: {sanitized.false_positives} "
          f"({len(sanitized.unresponsive)} unresponsive, "
          f"{len(sanitized.non_adult)} non-adult)")
    print(f"sanitized corpus: {len(sanitized.corpus)} sites")
    report = study.popularity()
    print(f"always in the top-1M: {report.always_top_1m_count} "
          f"({report.always_top_1m_fraction:.0%})")
    return 0


def _print_cache_stats(universe) -> None:
    from .html.parser import parse_cache_stats

    for name, stats in (("fetch cache", universe.fetch_cache.stats),
                        ("parse cache", parse_cache_stats())):
        print(f"{name}: {stats.hits} hits / {stats.misses} misses "
              f"({stats.hit_rate:.0%} hit rate, "
              f"{stats.evictions} evictions)")


def cmd_crawl(args: argparse.Namespace) -> int:
    from collections import Counter

    from .crawler import OpenWPMCrawler

    study = _build_study(args)
    domains = study.corpus_domains()[: args.sites]
    # The same per-site hook the measurement service streams over SSE;
    # here it just counts milestones for the --stats summary.
    progress_counts: Counter = Counter()

    def progress(event: str, **fields) -> None:
        # The fork executor backend replays worker tallies as one
        # event with count=N; inline events carry no count field.
        progress_counts[event] += fields.get("count", 1)

    hook = progress if args.stats else None
    started = time.perf_counter()
    if args.store:
        from .datastore import stored_crawl

        log = stored_crawl(
            study.store, study.universe,
            study.vantage_points.point(args.country),
            Study._PORN_KIND, domains, progress=hook,
            baseline=study.baseline_store,
        )
    else:
        crawler = OpenWPMCrawler(
            study.universe, study.vantage_points.point(args.country)
        )
        log = crawler.crawl(domains, progress=hook)
    elapsed = time.perf_counter() - started
    ok = sum(1 for visit in log.visits if visit.success)
    print(f"crawled {ok}/{len(domains)} sites from {args.country}: "
          f"{len(log.requests)} requests, {len(log.cookies)} cookies, "
          f"{len(log.js_calls)} JS calls")
    third_parties = sorted({
        registrable_domain(record.fqdn) for record in log.requests
        if registrable_domain(record.fqdn)
        != registrable_domain(record.page_domain)
    })
    print(f"{len(third_parties)} third-party domains; top of the list:")
    for domain in third_parties[: args.top]:
        print(f"  {domain}")
    if args.stats:
        print(f"\ncrawl wall time: {elapsed:.2f}s")
        print(f"progress events: {progress_counts['site_started']} sites "
              f"started, {progress_counts['site_finished']} finished, "
              f"{progress_counts['site_spliced']} spliced, "
              f"{progress_counts['run_started']} runs")
        _print_cache_stats(study.universe)
    return 0


def _render_study(study: Study, scale: float, geo: bool) -> None:
    """Print every table and figure (shared by ``study`` and ``report``).

    The text comes verbatim from :func:`repro.reporting.full_report`,
    the same section renderer the measurement service serves results
    through — which is what makes a served table byte-identical to this
    output (CI's ``make serve-check`` reassembles the report from the
    service's sections and diffs it against this command).
    """
    print(full_report(study, scale, geo=geo), end="")


def _print_similarity_stats() -> None:
    from .text.sparse import engine_stats

    counters = engine_stats()
    print(f"similarity engine: {counters.documents} docs across "
          f"{counters.engines} fits, {counters.vocabulary} vocabulary "
          f"terms, {counters.nonzeros} nonzeros, "
          f"{counters.blocks} gram blocks, "
          f"{counters.candidate_pairs} candidate pairs")


def cmd_study(args: argparse.Namespace) -> int:
    study = _build_study(args)
    # Evaluate every analysis up front: with --parallelism > 1 crawls
    # fan out across the process pool and analyses across threads;
    # with 1 this reproduces the lazy serial order.  Rendering below is
    # pure cache reads either way, so the printed report is
    # byte-identical across parallelism settings.
    study.run_all(geo=args.geo)
    _render_study(study, args.scale, args.geo)
    if args.stats:
        print()
        _print_similarity_stats()
        _print_cache_stats(study.universe)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .datastore import CrawlStore, MissingRunError
    from .webgen.builder import build_universe

    store = CrawlStore(args.store)
    config = store.stored_config()
    if config is None:
        print(f"error: {args.store} holds no runs; populate it with "
              "`repro study --store` first", file=sys.stderr)
        return 1
    # The synthetic universe is rebuilt (cheap, deterministic) for the
    # analyses' lookup tables; crawl data streams from the store and no
    # browser session is ever started.
    study = Study(build_universe(config, lazy=True), store=store,
                  store_only=True,
                  aggregate_cache=args.incremental or None)
    try:
        _render_study(study, config.scale, args.geo)
    except MissingRunError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    from .datastore import (
        AggregateStore,
        CrawlStore,
        MissingRunError,
        aggregates_path,
    )
    from .reporting import trend_report
    from .webgen.builder import build_universe

    # One shared partial cache for the whole series: every epoch store of
    # a longitudinal run resolves to the same base cache file (the -eN
    # suffix is stripped), so spliced sites analyzed at epoch N are cache
    # hits at every later epoch.
    cache = (AggregateStore(aggregates_path(args.stores[0]))
             if args.incremental else None)
    studies = []
    stores = []
    for path in args.stores:
        store = CrawlStore(path)
        config = store.stored_config()
        if config is None:
            print(f"error: {path} holds no runs; populate it with "
                  "`repro study --store` first", file=sys.stderr)
            return 1
        stores.append((path, config.epoch, store))
        studies.append(
            (config.epoch,
             Study(build_universe(config, lazy=True), store=store,
                   store_only=True, aggregate_cache=cache))
        )
    epochs = [epoch for epoch, _ in studies]
    if len(set(epochs)) != len(epochs):
        print(f"error: duplicate epochs in {args.stores} "
              f"(epochs {sorted(epochs)}); pass one store per epoch",
              file=sys.stderr)
        return 1
    try:
        print(trend_report(studies), end="")
    except MissingRunError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.stats:
        # Each epoch store is opened once and scanned per *analysis*
        # (never per rendered section); the counters prove it.
        print()
        for path, epoch, store in sorted(stores, key=lambda item: item[1]):
            counts = store.io_stats
            print(f"epoch {epoch} ({path}): {counts['opens']} connection "
                  f"opens, {counts['scans']} event scans")
        if cache is not None:
            stats = cache.stats
            print(f"aggregate cache: {stats.hits} hits / "
                  f"{stats.misses} misses over {len(stores)} epochs "
                  f"({cache.row_count()} rows)")
    return 0


def _format_timestamp(stamp) -> str:
    if stamp is None:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stamp))


def cmd_store_info(args: argparse.Namespace) -> int:
    from .datastore import CrawlStore

    store = CrawlStore(args.path)
    config = store.stored_config()
    manifests = store.run_manifests()
    layout = f"{store.shard_count} shards" if store.sharded else "single file"
    print(f"store: {args.path} (schema v{store.schema_version()}, {layout})")
    if config is not None:
        print(f"universe: seed={config.seed} scale={config.scale}")
    print(f"runs: {len(manifests)}")
    if args.shards:
        from .reporting import render_shard_table

        print()
        print(render_shard_table(store.shard_infos()))
    for run in manifests:
        status = "complete" if run.complete else \
            f"partial {run.completed_sites}/{run.total_sites}"
        label = run.run_id if isinstance(run.run_id, int) \
            else run.run_key[:12]
        print(f"\n[{label}] {run.kind} from {run.country_code} "
              f"({run.client_ip}) — {status}")
        print(f"    sites: {run.completed_sites}/{run.total_sites}  "
              f"visits: {run.visits}  requests: {run.requests}  "
              f"cookies: {run.cookies}  js_calls: {run.js_calls}")
        print(f"    crawl time: {run.elapsed:.2f}s "
              f"({run.sites_per_second:.1f} sites/s)  "
              f"started: {_format_timestamp(run.started_at)}  "
              f"finished: {_format_timestamp(run.finished_at)}")
        if args.verbose:
            print(f"    run key: {run.run_key}")
            stats = run.stats or {}
            for cache in ("fetch_cache", "parse_cache"):
                counters = stats.get(cache)
                if counters is None:
                    continue
                lookups = counters["hits"] + counters["misses"]
                rate = counters["hits"] / lookups if lookups else 0.0
                print(f"    {cache}: {counters['hits']} hits / "
                      f"{counters['misses']} misses ({rate:.0%} hit rate, "
                      f"{counters['evictions']} evictions)")
            if "resumed_from_site" in stats and stats["resumed_from_site"]:
                print(f"    resumed from site {stats['resumed_from_site']}")
    if args.verbose:
        _print_aggregate_info(store)
    return 0


def _print_aggregate_info(store) -> None:
    """The aggregate-cache block of ``repro store info -v``."""
    import os

    from .datastore import AggregateStore, aggregates_path

    path = aggregates_path(store.path)
    if not os.path.exists(path):
        return
    cache = AggregateStore(path)
    try:
        rows = cache.row_count()
        per_analysis = cache.per_analysis_rows()
        listing = ", ".join(f"{name}: {count}"
                            for name, count in sorted(per_analysis.items()))
        print(f"\naggregate cache: {path}")
        print(f"    {rows} partials ({cache.total_bytes()} payload bytes)"
              + (f" — {listing}" if listing else ""))
        last = cache.last_study_stats()
        if last:
            lookups = last["hits"] + last["misses"]
            rate = last["hits"] / lookups if lookups else 0.0
            print(f"    last study: {last['hits']} hits / "
                  f"{last['misses']} misses ({rate:.0%} hit rate, "
                  f"{last.get('corrupt', 0)} corrupt)")
    finally:
        cache.close()


def cmd_store_reshard(args: argparse.Namespace) -> int:
    from .datastore import reshard_store

    try:
        paths = reshard_store(args.src, args.dst, shards=args.shards)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"resharded {args.src} into {len(paths)} shards at {args.dst}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import ReproServer

    server = ReproServer(
        args.store, port=args.port, host=args.host, workers=args.workers,
        store_shards=args.store_shards, verbose=args.verbose,
    )
    # Flushed before blocking so wrapper scripts can scrape the bound
    # port (--port 0 binds an ephemeral one).
    print(f"serving on {server.url} (store {args.store}, "
          f"{args.workers} worker{'s' if args.workers != 1 else ''})",
          flush=True)
    try:
        server.serve_forever()
    finally:
        server.stop()
    return 0


def package_version() -> str:
    """The installed package version, or the one pinned in pyproject.toml.

    A source checkout run via ``PYTHONPATH=src`` has no installed
    distribution, so the pyproject file two levels above the package is
    the fallback source of truth.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        pass
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        for line in pyproject.read_text().splitlines():
            if line.startswith("version"):
                return line.split("=", 1)[1].strip().strip('"')
    except OSError:
        pass
    return "unknown"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tales from the Porn' (IMC 2019)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus = subparsers.add_parser("corpus", help="compile the §3 corpus")
    _add_common(corpus)
    corpus.set_defaults(func=cmd_corpus)

    crawl = subparsers.add_parser("crawl", help="crawl sites, show trackers")
    _add_common(crawl)
    _add_store(crawl)
    crawl.add_argument("--sites", type=int, default=25)
    crawl.add_argument("--country", default="ES",
                       choices=["ES", "US", "UK", "RU", "IN", "SG"])
    crawl.add_argument("--top", type=int, default=15)
    crawl.add_argument("--stats", action="store_true",
                       help="print fetch/parse cache hit rates after the crawl")
    crawl.set_defaults(func=cmd_crawl)

    study = subparsers.add_parser("study", help="run the whole paper")
    _add_common(study)
    _add_store(study)
    study.add_argument("--geo", action="store_true",
                       help="include the six-country Table 7 (slow)")
    study.add_argument("--parallelism", type=int, default=None,
                       help="worker count for crawl/analysis fan-out "
                            "(default: cpu count; 1 = historical serial "
                            "order; output is byte-identical either way)")
    study.add_argument("--stats", action="store_true",
                       help="print similarity-engine counters and "
                            "fetch/parse cache hit rates after the report")
    study.set_defaults(func=cmd_study)

    report = subparsers.add_parser(
        "report", help="render all tables/figures from a store (no crawling)"
    )
    report.add_argument("--store", metavar="PATH", required=True,
                        help="crawl datastore written by study/crawl --store")
    report.add_argument("--geo", action="store_true",
                        help="include the six-country Table 7")
    report.add_argument("--incremental", action="store_true",
                        help="serve per-site partials from the aggregate "
                             "cache next to the store (byte-identical "
                             "tables; only churned sites re-analyzed)")
    report.set_defaults(func=cmd_report)

    trend = subparsers.add_parser(
        "trend", help="longitudinal report across per-epoch stores"
    )
    trend.add_argument("stores", metavar="STORE", nargs="+",
                       help="one crawl store per epoch (any order); each "
                            "written by `repro study --store --epoch N`")
    trend.add_argument("--incremental", action="store_true",
                       help="share one aggregate cache across the series: "
                            "1 full analysis pass + (K-1) churn-sized "
                            "passes instead of K full passes")
    trend.add_argument("--stats", action="store_true",
                       help="print per-epoch store open/scan counts (and "
                            "cache hit rates under --incremental)")
    trend.set_defaults(func=cmd_trend)

    store = subparsers.add_parser("store", help="inspect a crawl datastore")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    info = store_sub.add_parser("info", help="print run manifests")
    info.add_argument("path", help="path to the datastore")
    info.add_argument("--verbose", "-v", action="store_true",
                      help="include run keys and cache hit/miss counters")
    info.add_argument("--shards", action="store_true",
                      help="list per-shard file sizes and row counts")
    info.set_defaults(func=cmd_store_info)
    reshard = store_sub.add_parser(
        "reshard", help="convert a single-file store to an N-shard directory"
    )
    reshard.add_argument("src", help="existing single-file (v1) store")
    reshard.add_argument("dst", help="directory to create for the shards")
    reshard.add_argument("--shards", type=int, required=True,
                         help="number of shard files (>= 2)")
    reshard.set_defaults(func=cmd_store_reshard)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived measurement service"
    )
    serve.add_argument("--store", metavar="DIR", required=True,
                       help="shared crawl datastore jobs read and write "
                            "(created if missing)")
    serve.add_argument("--port", type=int, default=8008,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--workers", type=int, default=1,
                       help="measurement worker threads draining the "
                            "job queue")
    serve.add_argument("--store-shards", metavar="N", type=int, default=None,
                       help="create the store as N shard files")
    serve.add_argument("--verbose", "-v", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Conventional 128+SIGINT exit, and no traceback splatter when a
        # long crawl or the serve loop is ^C'd.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
