"""§7.3 — privacy policies: presence, GDPR mentions, similarity, Polisis."""

from conftest import scaled

from repro.core.compliance.policies import CollectedPolicy, analyze_policies
from repro.net.url import registrable_domain


def test_sec73_policies(benchmark, study, paper, reporter):
    collected = [
        CollectedPolicy(i.domain, i.policy.text, i.policy.status)
        for i in study.inspections()
        if i.reachable and i.policy.link_found
    ]
    observed = {
        page: {registrable_domain(f) for f in fqdns}
        for page, fqdns in study.porn_labels().third_party_direct.items()
    }
    corpus_size = len(study.corpus_domains())
    report = benchmark.pedantic(
        lambda: analyze_policies(collected, corpus_size=corpus_size,
                                 observed_third_parties=observed),
        rounds=1, iterations=1,
    )

    reporter.row("sites with accessible privacy policy",
                 f"{paper.privacy_policy_fraction:.0%}",
                 f"{report.presence_fraction:.1%}")
    reporter.row("HTTP-error false positives",
                 scaled(paper.policy_http_error_false_positives),
                 report.http_error_false_positives)
    reporter.row("policies mentioning the GDPR",
                 f"{paper.policy_gdpr_mention_fraction:.0%}",
                 f"{report.gdpr_fraction:.1%}")
    reporter.row("mean policy length (letters)", paper.policy_mean_length,
                 int(report.mean_letters))
    reporter.row("min / max length",
                 f"{paper.policy_min_length} / {paper.policy_max_length}",
                 f"{report.min_letters} / {report.max_letters}")
    reporter.row("policy pairs with similarity > 0.5",
                 f"{paper.policy_pairs_similar_fraction:.0%}",
                 f"{report.similar_pair_fraction:.1%}")
    reporter.row("pairs compared", "1,202,312", report.pair_count)
    top25 = study.top_sites(25)
    reporter.row("top-25 tracking sites disclosing practices", "72%",
                 f"{report.disclosure_fraction(top25):.0%}")
    reporter.row("sites disclosing the full third-party list", 1,
                 len(report.full_list_sites))

    assert 0.10 <= report.presence_fraction <= 0.22
    assert 0.12 <= report.gdpr_fraction <= 0.30
    assert report.similar_pair_fraction > 0.6
    assert report.mean_letters > 8_000
    assert len(report.full_list_sites) >= 1
