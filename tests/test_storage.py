"""Tests for crawl-log persistence (JSONL round-trip)."""

import pytest

from repro.browser.storage import dump_lines, load_log, parse_lines, save_log
from repro.core.cookie_analysis import analyze_cookies
from repro.core.cookie_sync import detect_cookie_sync
from repro.core.partylabel import label_parties


class TestRoundTrip:
    def test_full_round_trip(self, porn_log, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_log(porn_log, path)
        loaded = load_log(path)
        assert loaded.country_code == porn_log.country_code
        assert loaded.client_ip == porn_log.client_ip
        assert len(loaded.visits) == len(porn_log.visits)
        assert len(loaded.requests) == len(porn_log.requests)
        assert len(loaded.cookies) == len(porn_log.cookies)
        assert len(loaded.js_calls) == len(porn_log.js_calls)

    def test_records_identical(self, porn_log, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_log(porn_log, path)
        loaded = load_log(path)
        assert loaded.requests[0] == porn_log.requests[0]
        assert loaded.cookies[0] == porn_log.cookies[0]
        assert loaded.visits[0] == porn_log.visits[0]
        assert loaded.js_calls[0] == porn_log.js_calls[0]

    def test_seq_preserved(self, porn_log, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_log(porn_log, path)
        loaded = load_log(path)
        assert loaded._seq == porn_log._seq
        assert [r.seq for r in loaded.requests] == \
            [r.seq for r in porn_log.requests]

    def test_analyses_agree_on_loaded_log(self, porn_log, universe, tmp_path):
        """The whole §4/§5 pipeline gives identical results on a reloaded
        log — crawls can be archived and re-analyzed without the universe."""
        path = tmp_path / "crawl.jsonl"
        save_log(porn_log, path)
        loaded = load_log(path)

        original_labels = label_parties(porn_log,
                                        cert_lookup=universe.certificate_for)
        loaded_labels = label_parties(loaded,
                                      cert_lookup=universe.certificate_for)
        assert original_labels.all_third_party_fqdns == \
            loaded_labels.all_third_party_fqdns

        assert analyze_cookies(porn_log).id_cookies == \
            analyze_cookies(loaded).id_cookies
        assert detect_cookie_sync(porn_log).pair_counts == \
            detect_cookie_sync(loaded).pair_counts


class TestFormatValidation:
    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_lines([])

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a"):
            parse_lines(['{"format": "something-else", "version": 1}'])

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            parse_lines(['{"format": "repro-crawl-log", "version": 99}'])

    def test_unknown_record_kind_rejected(self):
        lines = [
            '{"format": "repro-crawl-log", "version": 1, '
            '"country_code": "ES", "client_ip": "", "seq": 0}',
            '{"kind": "mystery"}',
        ]
        with pytest.raises(ValueError, match="unknown record kind"):
            parse_lines(lines)

    def test_blank_lines_tolerated(self):
        lines = [
            '{"format": "repro-crawl-log", "version": 1, '
            '"country_code": "ES", "client_ip": "", "seq": 0}',
            "",
            "   ",
        ]
        log = parse_lines(lines)
        assert log.country_code == "ES"

    def test_dump_lines_are_single_line_json(self, porn_log):
        import json

        for line in dump_lines(porn_log):
            assert "\n" not in line
            json.loads(line)
