"""Shared fixtures: a small deterministic universe and a study over it.

Scale 0.04 keeps the full pipeline under a few seconds while leaving
every population (operators, banners, miners, geo-targeted malware)
non-empty.
"""

from __future__ import annotations

import pytest

from repro import Study, UniverseConfig
from repro.crawler import OpenWPMCrawler, VantagePointManager
from repro.webgen import build_universe

SMALL_SCALE = 0.04
SEED = 20191021


@pytest.fixture(scope="session")
def universe():
    return build_universe(UniverseConfig(seed=SEED, scale=SMALL_SCALE))


@pytest.fixture(scope="session")
def study(universe):
    return Study(universe)


@pytest.fixture(scope="session")
def vantage_points():
    return VantagePointManager()


@pytest.fixture(scope="session")
def crawlable_porn(universe):
    """Sanitized, crawl-survivable porn domains (sorted for determinism)."""
    return sorted(
        domain
        for domain, site in universe.porn_sites.items()
        if site.responsive and not site.crawl_flaky
    )


@pytest.fixture(scope="session")
def porn_log(study):
    return study.porn_log()


@pytest.fixture(scope="session")
def regular_log(study):
    return study.regular_log()
