"""Render-manifest fast path: manifest == HTMLParser extraction, always.

Two layers of parity:

1. **Response level** — for every HTML response the universe serves
   (porn landings across clients and verification states, regular
   landings, policy pages, error pages, ad frames), the render manifest
   must list exactly the subresources the tolerant HTML parser extracts
   from the body.
2. **Crawl level** — a manifest-driven crawl and a parse-driven crawl of
   the whole corpus must produce byte-identical ``CrawlLog``s.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.browser.browser import Browser, _RESOURCE_TAGS
from repro.html.parser import parse_html
from repro.net.http import Request
from repro.net.url import parse_url
from repro.webgen.universe import ClientContext, FetchError

CLIENTS = (
    ClientContext("ES", "31.0.0.1"),
    ClientContext("US", "3.0.0.1"),
    ClientContext("RU", "5.0.0.1"),
)


def parse_extraction(body: str):
    """The parse-driven fetch list: (kind, url) per resource tag, DOM order.

    Mirrors the browser's historical extraction exactly: resource tags in
    ``_RESOURCE_TAGS`` order would be *fetched* grouped by tag, but the
    manifest stores document order — so compare as multisets per kind.
    """
    document = parse_html(body)
    entries = []
    for tag, attr, _ in _RESOURCE_TAGS:
        for element in document.iter():
            if element.tag != tag:
                continue
            raw = element.get(attr)
            if not raw or raw.startswith("/"):
                continue
            entries.append((tag, raw))
    return entries


def manifest_grouped(manifest):
    """Manifest entries grouped per tag kind in ``_RESOURCE_TAGS`` order."""
    kind_to_tag = {"script": "script", "img": "img", "iframe": "iframe",
                   "link": "link"}
    grouped = []
    for tag, _, _ in _RESOURCE_TAGS:
        grouped.extend(
            (tag, url) for kind, url in manifest if kind_to_tag[kind] == tag
        )
    return grouped


def fetch(universe, url_text, client):
    return universe.fetch(Request(parse_url(url_text)), client)


def iter_html_responses(universe, client):
    """Yield every rendered page type for one client vantage point."""
    for domain, site in sorted(universe.porn_sites.items()):
        if not site.responsive or site.crawl_flaky:
            continue
        scheme = "https" if site.https else "http"
        for path in ("/", "/?verified=1", "/privacy"):
            try:
                response = yield_one(universe, f"{scheme}://{domain}{path}", client)
            except FetchError:
                continue
            if response is not None:
                yield f"porn:{path}", response
    for domain, site in sorted(universe.regular_sites.items()):
        if not site.responsive:
            continue
        scheme = "https" if site.https else "http"
        try:
            response = yield_one(universe, f"{scheme}://{domain}/", client)
        except FetchError:
            continue
        if response is not None:
            yield "regular:/", response


def yield_one(universe, url_text, client):
    response = fetch(universe, url_text, client)
    if "text/html" in response.content_type:
        return response
    return None


class TestResponseManifests:
    @pytest.mark.parametrize("client", CLIENTS, ids=lambda c: c.country_code)
    def test_every_rendered_page_type(self, universe, client):
        """Manifest == parser extraction for every HTML response served."""
        seen = 0
        for label, response in iter_html_responses(universe, client):
            assert response.manifest is not None, label
            assert manifest_grouped(response.manifest) == \
                parse_extraction(response.body), (label, str(response.url))
            seen += 1
        assert seen > 0

    def test_ad_frames_and_error_pages(self, universe):
        client = CLIENTS[0]
        frames = 0
        for domain, site in sorted(universe.porn_sites.items()):
            if not site.responsive or site.crawl_flaky:
                continue
            landing = fetch(
                universe,
                f"{'https' if site.https else 'http'}://{domain}/",
                client,
            )
            for kind, url in landing.manifest:
                if kind != "iframe":
                    continue
                try:
                    frame = fetch(universe, url, client)
                except FetchError:
                    continue
                if not frame.ok or "text/html" not in frame.content_type:
                    continue
                assert frame.manifest is not None
                assert manifest_grouped(frame.manifest) == \
                    parse_extraction(frame.body), url
                frames += 1
            if frames >= 25:
                break
        assert frames > 0

    def test_geo_blocked_page_has_empty_manifest(self, universe):
        blocked = next(
            ((d, s) for d, s in sorted(universe.porn_sites.items())
             if s.responsive and not s.crawl_flaky and s.blocked_countries),
            None,
        )
        if blocked is None:
            pytest.skip("no geo-blocked site at this scale")
        domain, site = blocked
        country = sorted(site.blocked_countries)[0]
        client = ClientContext(country, "9.0.0.1")
        scheme = "https" if site.https else "http"
        response = fetch(universe, f"{scheme}://{domain}/", client)
        assert response.status == 451
        assert response.manifest == ()
        assert parse_extraction(response.body) == []


class TestCrawlParity:
    def _crawl(self, universe, *, use_manifest):
        universe.fetch_cache.clear()
        browser = Browser(universe, ClientContext("ES", "31.0.0.1"),
                          use_manifest=use_manifest)
        for domain in sorted(universe.porn_sites):
            browser.visit(domain)
        for domain in sorted(universe.regular_sites):
            browser.visit(domain)
        return browser.log

    @staticmethod
    def _dump(log):
        return (
            [dataclasses.astuple(record) for record in log.requests],
            [dataclasses.astuple(cookie) for cookie in log.cookies],
            [dataclasses.astuple(visit) for visit in log.visits],
            [repr(call) for call in log.js_calls],
        )

    def test_manifest_crawl_bit_identical_to_parse_crawl(self, universe):
        """The tentpole guarantee: zero observable difference, ever."""
        manifest_log = self._crawl(universe, use_manifest=True)
        parse_log = self._crawl(universe, use_manifest=False)
        assert self._dump(manifest_log) == self._dump(parse_log)
        # Sanity: the crawl actually exercised subresources and cookies.
        assert len(manifest_log.requests) > len(manifest_log.visits)
        assert manifest_log.cookies
