"""Tests for the §10 future-work extensions."""

import pytest

from repro.core.business import MODEL_NONE, MODEL_PAID


class TestAdblockSimulation:
    @pytest.fixture(scope="class")
    def comparison(self, study):
        return study.adblock_comparison()

    def test_blocker_cancels_requests(self, comparison):
        assert comparison.requests_blocked > 0

    def test_blocker_reduces_third_party_cookies(self, comparison):
        assert comparison.protected_third_party_cookies < \
            comparison.baseline_third_party_cookies
        assert comparison.cookie_reduction > 0.2

    def test_unlisted_fingerprinters_survive(self, comparison):
        """The paper's warning: blocklists miss the porn-specialized
        fingerprinters, so canvas fingerprinting largely survives."""
        if not comparison.baseline_canvas_sites:
            pytest.skip("no canvas sites at this scale")
        assert comparison.canvas_reduction < 0.5

    def test_some_trackers_survive(self, comparison):
        assert 0.0 < comparison.surviving_tracker_fraction < 1.0

    def test_blocked_requests_not_in_log(self, study, universe):
        from repro.core.extensions.adblock_sim import crawl_with_adblocker

        domains = study.corpus_domains()[:10]
        log = crawl_with_adblocker(
            universe, study.vantage_points.home, domains,
            study.ats_classifier(),
        )
        for record in log.requests:
            assert record.error != "BLOCKED" or record.failed


class TestSubscriptionTracking:
    @pytest.fixture(scope="class")
    def report(self, study):
        return study.subscription_tracking()

    def test_all_models_reported(self, report):
        assert {row.model for row in report.rows} == \
            {MODEL_NONE, "free_subscription", MODEL_PAID}

    def test_site_counts_positive(self, report):
        ad_supported = report.row(MODEL_NONE)
        assert ad_supported is not None
        assert ad_supported.site_count > 0

    def test_means_non_negative(self, report):
        for row in report.rows:
            assert row.mean_third_parties >= 0
            assert row.mean_third_party_id_cookies >= 0
            assert 0.0 <= row.sites_with_tracking_fraction <= 1.0


class TestCrossBorder:
    @pytest.fixture(scope="class")
    def report(self, study):
        return study.cross_border()

    def test_requests_located(self, report):
        assert report.requests_total > 0
        assert sum(report.by_country.values()) == report.requests_total

    def test_majority_leaves_the_eu(self, report):
        """US/SG hosting dominates ad-tech: most tracking traffic from an
        EU visitor terminates outside the EU."""
        assert report.outside_eu_fraction > 0.4

    def test_id_exports_flagged(self, report):
        assert report.id_cookie_domains
        assert report.id_exporting_domains <= report.id_cookie_domains
        assert report.id_export_fraction > 0.3

    def test_country_codes_valid(self, report):
        from repro.net.geo import COUNTRIES

        for code in report.by_country:
            assert code in COUNTRIES
