"""Tests for §7: banners, age verification, and privacy policies."""

import pytest

from repro.core.compliance.banners import (
    BANNER_BINARY,
    BANNER_CONFIRMATION,
    BANNER_NO_OPTION,
    BANNER_OTHER,
    detect_banner,
)
from repro.core.compliance.policies import (
    analyze_policies,
    CollectedPolicy,
    extract_disclosures,
    pairwise_similarity_fractions,
)


def banner_html(buttons="", extra=""):
    return (
        "<html><body>"
        '<div id="cb" style="position:fixed;bottom:0">'
        "This website uses cookies to improve your experience. "
        f"{buttons}{extra}</div>"
        "<p>content</p></body></html>"
    )


class TestBannerDetection:
    def test_no_option(self):
        observation = detect_banner(banner_html(), "s.com")
        assert observation is not None
        assert observation.banner_type == BANNER_NO_OPTION

    def test_confirmation(self):
        observation = detect_banner(
            banner_html("<button>Accept</button>"), "s.com"
        )
        assert observation.banner_type == BANNER_CONFIRMATION

    def test_binary(self):
        observation = detect_banner(
            banner_html("<button>Accept</button><button>Decline</button>")
        )
        assert observation.banner_type == BANNER_BINARY

    def test_slider_is_other(self):
        observation = detect_banner(
            banner_html('<input type="range"><button>Accept</button>')
        )
        assert observation.banner_type == BANNER_OTHER

    def test_checkbox_is_other(self):
        observation = detect_banner(
            banner_html('<input type="checkbox"><button>Accept</button>')
        )
        assert observation.banner_type == BANNER_OTHER

    def test_no_banner_returns_none(self):
        html = "<html><body><p>just content, no consent</p></body></html>"
        assert detect_banner(html) is None

    def test_non_floating_text_not_detected(self):
        html = ("<html><body><p>our cookie recipes use real cookies"
                "</p></body></html>")
        assert detect_banner(html) is None

    def test_age_gate_not_mistaken_for_banner(self):
        html = (
            "<html><body>"
            '<div style="position:fixed">You must be 18 years or older. '
            "<button>Enter</button></div></body></html>"
        )
        assert detect_banner(html) is None

    def test_multilingual_detection(self):
        html = (
            "<html><body>"
            '<div style="position:fixed">Este sitio utiliza cookies.'
            "<button>Aceptar</button></div></body></html>"
        )
        observation = detect_banner(html)
        assert observation is not None
        assert observation.banner_type == BANNER_CONFIRMATION


class TestBannerIntegration:
    def test_eu_fraction_larger_than_us(self, study):
        eu = study.banners("ES")
        us = study.banners("US")
        assert eu.total_fraction >= us.total_fraction
        # Both tiny (a few percent of the corpus).
        assert eu.total_fraction < 0.10

    def test_confirmation_most_common(self, study):
        eu = study.banners("ES")
        row = eu.as_row()
        assert row[BANNER_CONFIRMATION] >= row[BANNER_BINARY]
        assert row[BANNER_CONFIRMATION] >= row[BANNER_OTHER]

    def test_detected_banners_match_ground_truth(self, universe, study):
        eu = study.banners("ES")
        for observation in eu.observations:
            spec = universe.porn_sites[observation.site_domain].banner
            assert spec is not None


class TestAgeVerificationIntegration:
    @pytest.fixture(scope="class")
    def report(self, study):
        return study.age_verification(top_n=25)

    def test_western_countries_consistent(self, report):
        assert report.consistent_countries(["US", "UK", "ES"])

    def test_russia_differs(self, report):
        ru_only = report.only_in("RU", others=["US", "UK", "ES"])
        missing = report.missing_in("RU", others=["US", "UK", "ES"])
        assert ru_only or missing

    def test_button_gates_bypassable(self, report):
        summary = report.by_country["US"]
        # Every US gate is a simple button: the crawler passes them all.
        assert summary.bypass_fraction == 1.0

    def test_social_login_gate_in_russia(self, report):
        summary = report.by_country["RU"]
        if not summary.login_required_sites:
            pytest.skip("pornhub not in top-N at this scale")
        assert summary.login_required_sites <= summary.gated_sites
        assert not (summary.login_required_sites & summary.bypassed_sites)


class TestPolicyAnalysis:
    def test_http_error_false_positives_filtered(self):
        policies = [
            CollectedPolicy("a.com", "word " * 500, 200),
            CollectedPolicy("b.com", "404 Not Found", 404),
            CollectedPolicy("c.com", "short", 200),
        ]
        report = analyze_policies(policies, corpus_size=10)
        assert len(report.valid_policies) == 1
        assert report.http_error_false_positives == 2

    def test_gdpr_mentions_counted(self):
        gdpr_text = ("In accordance with the General Data Protection "
                     "Regulation your rights are described. " * 40)
        plain_text = "We collect some data for functionality purposes. " * 40
        report = analyze_policies(
            [CollectedPolicy("a.com", gdpr_text, 200),
             CollectedPolicy("b.com", plain_text, 200)],
            corpus_size=10,
        )
        assert report.gdpr_mentions == 1

    def test_length_statistics(self):
        report = analyze_policies(
            [CollectedPolicy("a.com", "x" * 1000, 200),
             CollectedPolicy("b.com", "y" * 3000, 200)],
            corpus_size=10,
        )
        assert report.min_letters == 1000
        assert report.max_letters == 3000
        assert report.mean_letters == 2000

    def test_pairwise_similarity_identical_docs(self):
        fraction, pairs = pairwise_similarity_fractions(
            ["the same text here"] * 4
        )
        assert pairs == 6
        assert fraction == 1.0

    def test_pairwise_similarity_disjoint_docs(self):
        fraction, _ = pairwise_similarity_fractions(
            ["alpha beta gamma", "delta epsilon zeta", "eta theta iota"]
        )
        assert fraction == 0.0

    def test_disclosure_extraction(self):
        summary = extract_disclosures(
            "We use cookies. Information we collect includes your IP. "
            "Third party advertising networks are integrated.",
            candidate_domains=["exoclick.com"],
        )
        assert summary.discloses_cookies
        assert summary.discloses_data_types
        assert summary.discloses_third_parties
        assert summary.discloses_practices

    def test_full_list_detection(self):
        text = "We integrate exoclick.com, doublepimp.com and juicyads.com."
        summary = extract_disclosures(
            text,
            candidate_domains=["exoclick.com", "doublepimp.com",
                               "juicyads.com"],
        )
        assert len(summary.mentioned_domains) == 3

    def test_integration_headlines(self, study):
        report = study.policies()
        assert 0.08 <= report.presence_fraction <= 0.25
        assert 0.05 <= report.gdpr_fraction <= 0.40
        assert report.similar_pair_fraction > 0.5
        assert report.mean_letters > 3_000

    def test_full_list_site_found(self, universe, study):
        report = study.policies()
        if universe.full_list_site in {p.site_domain
                                       for p in report.valid_policies}:
            assert universe.full_list_site in report.full_list_sites
