"""A small DOM: element tree with attributes, text, and traversal.

The interaction crawler (Section 3.1) inspects parent and grandparent
elements of keyword matches to confirm age gates, and the banner detector
(Section 7.1) looks for floating elements — both need a real tree with
upward links and style inspection, provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Element", "TextNode", "Node", "VOID_TAGS"]

#: Tags that never have children or a closing tag.
VOID_TAGS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta",
     "source", "track", "wbr"}
)


@dataclass
class TextNode:
    """A run of character data inside an element."""

    text: str
    parent: Optional["Element"] = field(default=None, repr=False)


class Element:
    """An HTML element with attributes, children, and a parent link."""

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        parent: Optional["Element"] = None,
    ) -> None:
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.parent = parent
        self.children: List[Node] = []

    # -- construction ---------------------------------------------------------

    def append(self, node: "Node") -> "Node":
        node.parent = self
        self.children.append(node)
        return node

    def append_child(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> "Element":
        child = Element(tag, attrs, parent=self)
        self.children.append(child)
        return child

    def append_text(self, text: str) -> TextNode:
        node = TextNode(text, parent=self)
        self.children.append(node)
        return node

    # -- attributes -----------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(name.lower(), default)

    @property
    def id(self) -> Optional[str]:
        return self.attrs.get("id")

    @property
    def classes(self) -> List[str]:
        return self.attrs.get("class", "").split()

    @property
    def style(self) -> Dict[str, str]:
        """Parse the inline ``style`` attribute into a property map."""
        style: Dict[str, str] = {}
        for declaration in self.attrs.get("style", "").split(";"):
            if ":" not in declaration:
                continue
            prop, _, value = declaration.partition(":")
            style[prop.strip().lower()] = value.strip().lower()
        return style

    @property
    def is_floating(self) -> bool:
        """Heuristic for overlay/banner elements: fixed/absolute positioning."""
        position = self.style.get("position", "")
        return position in ("fixed", "absolute", "sticky")

    # -- traversal --------------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over elements (self included)."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def iter_text_nodes(self) -> Iterator[TextNode]:
        for child in self.children:
            if isinstance(child, TextNode):
                yield child
            elif isinstance(child, Element):
                yield from child.iter_text_nodes()

    def text(self, *, separator: str = " ") -> str:
        """All descendant text joined with ``separator``."""
        parts = [node.text.strip() for node in self.iter_text_nodes()]
        return separator.join(part for part in parts if part)

    def own_text(self) -> str:
        """Text directly inside this element (children excluded)."""
        parts = [
            child.text.strip() for child in self.children if isinstance(child, TextNode)
        ]
        return " ".join(part for part in parts if part)

    def ancestors(self) -> Iterator["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def grandparent(self) -> Optional["Element"]:
        return self.parent.parent if self.parent is not None else None

    def depth(self) -> int:
        return sum(1 for _ in self.ancestors())

    def __repr__(self) -> str:
        ident = f"#{self.id}" if self.id else ""
        return f"<Element {self.tag}{ident} children={len(self.children)}>"


Node = object  # union of Element and TextNode; kept loose for simplicity
