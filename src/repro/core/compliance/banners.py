"""Section 7.1 / Table 8 — cookie-consent banner detection.

The detector walks the rendered DOM looking for floating elements whose
text discusses cookies (8 languages), then classifies the banner with the
Degeling et al. taxonomy.  As in the paper, the automated pipeline only
separates *No option* / *Confirmation* / *Binary*; slider and checkbox
banners land in *Others* because classifying them further would require
interacting with the controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ...browser.events import CrawlLog
from ...html.dom import Element
from ...html.parser import parse_html
from ...html.query import find_all
from ...text.langs import COOKIE_BANNER_KEYWORDS, all_keywords

__all__ = [
    "BANNER_NO_OPTION",
    "BANNER_CONFIRMATION",
    "BANNER_BINARY",
    "BANNER_OTHER",
    "BannerObservation",
    "BannerReport",
    "detect_banner",
    "analyze_banners",
]

BANNER_NO_OPTION = "no_option"
BANNER_CONFIRMATION = "confirmation"
BANNER_BINARY = "binary"
BANNER_OTHER = "other"

_COOKIE_WORDS = all_keywords(COOKIE_BANNER_KEYWORDS)

_ACCEPT_WORDS = frozenset({
    "accept", "ok", "agree", "got it", "aceptar", "accepter", "aceitar",
    "принять", "accetto", "akzeptieren",
})
_REJECT_WORDS = frozenset({
    "decline", "reject", "refuse", "rechazar", "refuser", "recusar",
    "отказ", "rifiuto", "ablehnen", "refuz",
})


@dataclass(frozen=True)
class BannerObservation:
    """One detected banner."""

    site_domain: str
    banner_type: str
    text: str


def _classify_banner(banner: Element) -> str:
    has_slider = any(
        element.get("type") == "range" for element in find_all(banner, "input")
    )
    has_checkbox = any(
        element.get("type") == "checkbox" for element in find_all(banner, "input")
    )
    if has_slider or has_checkbox:
        return BANNER_OTHER
    accept = False
    reject = False
    for button in find_all(banner, "button"):
        text = button.text().lower()
        if any(word in text for word in _ACCEPT_WORDS):
            accept = True
        if any(word in text for word in _REJECT_WORDS):
            reject = True
    if accept and reject:
        return BANNER_BINARY
    if accept:
        return BANNER_CONFIRMATION
    return BANNER_NO_OPTION


def detect_banner(html: str, site_domain: str = "") -> Optional[BannerObservation]:
    """Find and classify a cookie banner in a rendered landing page."""
    document = parse_html(html)
    for element in document.iter():
        if not element.is_floating:
            continue
        text = element.text().lower()
        if not text:
            continue
        if not any(word in text for word in _COOKIE_WORDS):
            continue
        # Age gates also float and may mention a cookie policy link; require
        # the *cookie* wording to dominate rather than age warnings.
        if "18" in text and "cookie" not in text:
            continue
        return BannerObservation(
            site_domain=site_domain,
            banner_type=_classify_banner(element),
            text=text[:160],
        )
    return None


@dataclass
class BannerReport:
    """Table 8 aggregate for one vantage point."""

    observations: List[BannerObservation] = field(default_factory=list)
    sites_checked: int = 0

    def count(self, banner_type: str) -> int:
        return sum(1 for o in self.observations if o.banner_type == banner_type)

    def fraction(self, banner_type: str) -> float:
        return self.count(banner_type) / self.sites_checked \
            if self.sites_checked else 0.0

    @property
    def total_fraction(self) -> float:
        return len(self.observations) / self.sites_checked \
            if self.sites_checked else 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            BANNER_NO_OPTION: self.fraction(BANNER_NO_OPTION),
            BANNER_CONFIRMATION: self.fraction(BANNER_CONFIRMATION),
            BANNER_BINARY: self.fraction(BANNER_BINARY),
            BANNER_OTHER: self.fraction(BANNER_OTHER),
            "total": self.total_fraction,
        }


def analyze_banners(log: CrawlLog, *, corpus_size: Optional[int] = None) -> BannerReport:
    """Detect banners on every successfully crawled landing page.

    ``corpus_size`` normalizes the Table 8 fractions over the full
    sanitized corpus (the paper's denominator, N = 6,843) rather than only
    the successfully crawled pages.
    """
    report = BannerReport()
    visits = log.successful_visits()
    report.sites_checked = corpus_size if corpus_size else len(visits)
    for visit in visits:
        if not visit.html:
            continue
        observation = detect_banner(visit.html, visit.site_domain)
        if observation is not None:
            report.observations.append(observation)
    return report
