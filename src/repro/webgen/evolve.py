"""Deterministic epoch evolution of an assembled universe.

The paper measures a single snapshot; longitudinal studies (Clash of the
Trackers, WhoTracks.Me) need the ecosystem to *change over time*.
:func:`evolve_universe` derives epoch ``N+1`` from epoch ``N`` with the
churn patterns those studies report:

- a ``config.churn`` fraction of sites change page content (their embed
  order rotates, or their RTA labeling flips),
- trackers die (tail services are delisted from the pages that embedded
  them), are born (new unlisted ad-tech domains appear and spread), and
  consolidate (one organization absorbs another — a pure attribution
  change that does not alter a single page),
- sites migrate to HTTPS, and consent banners spread post-GDPR.

Everything is a pure function of ``(seed, epoch)``: evolving the same
universe twice yields byte-identical successors, and
``build_universe(UniverseConfig(epoch=N))`` reaches the same epoch by
applying N evolution steps to the epoch-0 build.

The **domain corpus is invariant** across epochs — no site is born or
dies, only content and the third-party ecosystem change.  That gives
every epoch the same corpus ``domains_hash`` so delta crawls
(:mod:`repro.datastore.delta`) can map site slices 1:1 between epochs.

**Content hashes.**  :class:`ContentHashIndex` fingerprints what a visit
to a site *could possibly observe*: the packed site spec, the site's CDN
assignment, and the transitive service closure (embedded services, their
sync partners, the RTB bidders reachable through any ad frame).  A
service fingerprint covers every behavioral field but excludes exactly
``organization`` / ``cert_org`` / ``in_disconnect`` — attribution
metadata that consolidation rewrites without changing any response byte
— so consolidation-only epochs splice 100% of sites.  Hashes are
intentionally conservative: a hash match guarantees identical visit
logs; a mismatch merely forces a real visit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..net.tls import Certificate
from ..net.whois import WhoisRegistry
from ..util import stable_hash
from .config import UniverseConfig
from .lazyspecs import LazyCertificates, porn_spec_to_row, regular_spec_to_row
from .sites import BANNER_TYPES, BannerSpec, PornSiteSpec
from .thirdparty import (
    CATEGORY_ADS,
    CATEGORY_ANALYTICS,
    CATEGORY_CDN,
    ThirdPartyService,
)
from .universe import Universe

__all__ = [
    "evolve_universe",
    "ContentHashIndex",
    "site_content_hash",
    "AnalysisHashIndex",
    "analysis_hash_index",
]

#: Per-epoch probability that a non-HTTPS porn site migrates to HTTPS.
HTTPS_MIGRATION_RATE = 0.02
#: Per-epoch probability that a bannerless responsive porn site gains one.
BANNER_SPREAD_RATE = 0.02
#: Fraction of the service catalog delisted per epoch (tail services only).
TRACKER_DEATH_FRACTION = 0.02
#: Per-epoch probability that one organization absorbs another.
CONSOLIDATION_RATE = 0.7
#: Fraction of porn sites that pick up a newly-born tracker.
BIRTH_SPREAD_FRACTION = 0.01

#: Service fields that consolidation rewrites; everything else is part of
#: the behavioral fingerprint.  Keep in sync with ``evolve_universe``.
ATTRIBUTION_ONLY_FIELDS = frozenset({"organization", "cert_org", "in_disconnect"})


class _OverlayMap(Mapping):
    """Base spec mapping plus a small dict of per-epoch overrides.

    Iteration preserves base key order (evolution never adds or removes
    sites), so routing tables and RNG-free scans stay order-identical to
    the base epoch.  Works over eager dicts and ``LazySpecMap`` alike —
    consumers only use the ``Mapping`` interface.
    """

    def __init__(self, base: Mapping, changed: Dict[str, object]) -> None:
        self._base = base
        self._changed = changed

    def __getitem__(self, domain: str):
        spec = self._changed.get(domain)
        if spec is not None:
            return spec
        return self._base[domain]

    def get(self, domain, default=None):
        spec = self._changed.get(domain)
        if spec is not None:
            return spec
        return self._base.get(domain, default)

    def __contains__(self, domain: object) -> bool:
        return domain in self._base

    def __iter__(self) -> Iterator[str]:
        return iter(self._base)

    def __len__(self) -> int:
        return len(self._base)

    def items(self):  # type: ignore[override]
        changed = self._changed
        for domain, spec in self._base.items():
            override = changed.get(domain)
            yield domain, (override if override is not None else spec)

    def values(self):  # type: ignore[override]
        for _, spec in self.items():
            yield spec


def _service_fingerprint(service: ThirdPartyService) -> bytes:
    """Canonical bytes of every field that can influence a served byte.

    Excludes exactly ``ATTRIBUTION_ONLY_FIELDS`` plus generation-time
    ground truth (``is_ats``, prevalences, tier weights, scanner
    reputation) that no response handler reads.
    """
    row = (
        service.domain,
        service.category,
        service.https,
        tuple(service.host_prefixes),
        service.wildcard_subdomains,
        service.in_easylist,
        service.easylist_path_only,
        service.in_easyprivacy,
        service.sets_cookies,
        service.cookie_rate,
        tuple(service.cookie_names),
        service.cookie_id_length,
        service.session_cookie_fraction,
        service.huge_cookie_fraction,
        service.embeds_client_ip_fraction,
        service.embeds_geo,
        service.geo_includes_isp,
        tuple(service.sync_partners),
        service.sync_probability,
        service.accepts_first_party_sync,
        repr(service.canvas_fp),
        repr(service.font_probe),
        service.fp_probability,
        service.fp_script_variants,
        service.webrtc,
        service.webrtc_probability,
        service.webrtc_script_variants,
        service.miner,
        service.miner_pool,
        None if service.countries is None else tuple(sorted(service.countries)),
        tuple(sorted(service.excluded_countries)),
    )
    return repr(row).encode()


class ContentHashIndex:
    """Per-site content hashes for one universe, computed on demand.

    ``hash_of(domain)`` is vantage-independent by design: it covers the
    full service closure for every country, so a match guarantees
    identical visits from *any* vantage point (conservative — a
    geo-fenced change hashes differently even for countries that never
    see it).
    """

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        self._hashes: Dict[str, Optional[str]] = {}
        self._fingerprints: Dict[str, bytes] = {}

    def hash_of(self, domain: str) -> Optional[str]:
        """The site's content hash, or ``None`` for unknown domains."""
        try:
            return self._hashes[domain]
        except KeyError:
            value = self._compute(domain)
            self._hashes[domain] = value
            return value

    def _service_bytes(self, domain: str) -> bytes:
        blob = self._fingerprints.get(domain)
        if blob is None:
            service = self.universe.services.get(domain)
            if service is None:
                # Delisted or never existed: pages that still reference it
                # get failed embeds, which is observable — hash the absence.
                blob = b"dead\x1f" + domain.encode()
            else:
                blob = _service_fingerprint(service)
            self._fingerprints[domain] = blob
        return blob

    def _compute(self, domain: str) -> Optional[str]:
        universe = self.universe
        spec = universe.porn_sites.get(domain)
        if spec is not None:
            kind = b"porn"
            # repr of the canonical row, not marshal: marshal encodes the
            # *interning state* of strings, which varies with decode path.
            packed = repr(porn_spec_to_row(spec)).encode()
        else:
            spec = universe.regular_sites.get(domain)
            if spec is None:
                return None
            kind = b"regular"
            packed = repr(regular_spec_to_row(spec)).encode()
        digest = hashlib.sha256()
        digest.update(kind)
        digest.update(b"\x1f")
        digest.update(packed)
        digest.update(
            repr(
                (
                    universe._cdn_of_site.get(domain),
                    domain in universe.dynamic_cdn_sites,
                    domain == universe.full_list_site,
                )
            ).encode()
        )

        # Transitive service closure in deterministic BFS order.
        queue: List[str] = list(spec.embedded_services)
        if isinstance(spec, PornSiteSpec):
            queue.extend(partner for _, partner in spec.regional_services)
            if spec.passes_id_to:
                queue.append(spec.passes_id_to)
        seen = set()
        reaches_ads = False
        cursor = 0
        while cursor < len(queue):
            name = queue[cursor]
            cursor += 1
            if name in seen:
                continue
            seen.add(name)
            digest.update(name.encode())
            digest.update(b"\x1f")
            digest.update(self._service_bytes(name))
            service = self.universe.services.get(name)
            if service is None:
                continue
            queue.extend(service.sync_partners)
            if service.category == CATEGORY_ADS:
                reaches_ads = True
        if reaches_ads:
            # Any ad embed may open an RTB frame; fold in the bidder set.
            digest.update(b"\x1fbidders\x1f")
            bidders: List[str] = list(universe.rtb_bidders)
            cursor = 0
            while cursor < len(bidders):
                name = bidders[cursor]
                cursor += 1
                if name in seen:
                    continue
                seen.add(name)
                digest.update(name.encode())
                digest.update(b"\x1f")
                digest.update(self._service_bytes(name))
                service = universe.services.get(name)
                if service is not None:
                    bidders.extend(service.sync_partners)
        return digest.hexdigest()


def site_content_hash(universe: Universe, domain: str) -> Optional[str]:
    """One-off content hash (prefer :class:`ContentHashIndex` for many)."""
    return ContentHashIndex(universe).hash_of(domain)


class AnalysisHashIndex(ContentHashIndex):
    """Per-site hashes that also cover attribution-only service fields.

    :class:`ContentHashIndex` deliberately excludes
    ``ATTRIBUTION_ONLY_FIELDS`` — consolidation rewrites an absorbed
    organization's ``cert_org`` without changing a single served byte,
    so delta *crawls* may still splice those sites.  Analyses are a
    different contract: party labeling reads certificate organizations
    (``share_organization`` inside ``_is_first_party``), so a cached
    per-site analysis partial keyed on the plain content hash could
    survive a consolidation epoch and serve stale labels.  This index
    folds the attribution fields of every service in the site's closure
    back into the fingerprint, making the hash cover everything the
    map/merge analyses can read for that site.

    It also restructures the hash: an incremental study hashes *every*
    site of the corpus on every pass (the lookup key), so the base
    index's per-site BFS — which re-walks and re-hashes the same shared
    service subgraphs for every site — is the dominant cost of a fully
    warm pass.  Here each service's transitive sync-partner closure and
    its 32-byte fingerprint digest are memoized once, and a site's hash
    folds the *sorted union* of its root services' closures.  Order
    insensitivity is sound: the site's own packed row already pins the
    embed order, and the closure contributes only which services are
    reachable and what each serves.  The hash values differ from
    :class:`ContentHashIndex` by construction; the two indexes feed
    disjoint key spaces (splice decisions vs. aggregate-cache keys).
    """

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe)
        self._service_digests: Dict[str, bytes] = {}
        # name -> (closure member frozenset, closure reaches ads)
        self._closures: Dict[str, Tuple[frozenset, bool]] = {}
        self._bidders_digest: Optional[bytes] = None

    def _service_bytes(self, domain: str) -> bytes:
        blob = self._fingerprints.get(domain)
        if blob is None:
            service = self.universe.services.get(domain)
            if service is None:
                blob = b"dead\x1f" + domain.encode()
            else:
                blob = _service_fingerprint(service) + b"\x1fattr\x1f" + repr(
                    (service.organization, service.cert_org,
                     service.in_disconnect)
                ).encode()
            self._fingerprints[domain] = blob
        return blob

    def _service_digest(self, name: str) -> bytes:
        digest = self._service_digests.get(name)
        if digest is None:
            digest = hashlib.sha256(
                name.encode() + b"\x1f" + self._service_bytes(name)
            ).digest()
            self._service_digests[name] = digest
        return digest

    def _closure(self, name: str) -> Tuple[frozenset, bool]:
        """One service's transitive sync-partner closure (memoized)."""
        cached = self._closures.get(name)
        if cached is not None:
            return cached
        seen: set = set()
        queue: List[str] = [name]
        reaches_ads = False
        cursor = 0
        while cursor < len(queue):
            current = queue[cursor]
            cursor += 1
            if current in seen:
                continue
            sub = self._closures.get(current)
            if sub is not None:
                # A fully-computed closure subsumes its whole subgraph.
                seen.update(sub[0])
                reaches_ads = reaches_ads or sub[1]
                continue
            seen.add(current)
            service = self.universe.services.get(current)
            if service is None:
                continue
            queue.extend(service.sync_partners)
            if service.category == CATEGORY_ADS:
                reaches_ads = True
        result = (frozenset(seen), reaches_ads)
        self._closures[name] = result
        return result

    def _bidders(self) -> bytes:
        """One digest over the RTB bidder closure, computed once."""
        if self._bidders_digest is None:
            members: set = set()
            for bidder in self.universe.rtb_bidders:
                members.update(self._closure(bidder)[0])
            digest = hashlib.sha256(b"bidders")
            for name in sorted(members):
                digest.update(self._service_digest(name))
            self._bidders_digest = digest.digest()
        return self._bidders_digest

    def _compute(self, domain: str) -> Optional[str]:
        universe = self.universe
        spec = universe.porn_sites.get(domain)
        roots: List[str]
        if spec is not None:
            kind = b"porn"
            packed = repr(porn_spec_to_row(spec)).encode()
            roots = list(spec.embedded_services)
            roots.extend(partner for _, partner in spec.regional_services)
            if spec.passes_id_to:
                roots.append(spec.passes_id_to)
        else:
            spec = universe.regular_sites.get(domain)
            if spec is None:
                return None
            kind = b"regular"
            packed = repr(regular_spec_to_row(spec)).encode()
            roots = list(spec.embedded_services)
        digest = hashlib.sha256()
        digest.update(kind)
        digest.update(b"\x1f")
        digest.update(packed)
        digest.update(
            repr(
                (
                    universe._cdn_of_site.get(domain),
                    domain in universe.dynamic_cdn_sites,
                    domain == universe.full_list_site,
                )
            ).encode()
        )
        members: set = set()
        reaches_ads = False
        for root in roots:
            closure, ads = self._closure(root)
            members.update(closure)
            reaches_ads = reaches_ads or ads
        for name in sorted(members):
            digest.update(self._service_digest(name))
        if reaches_ads:
            digest.update(b"\x1fbidders\x1f")
            digest.update(self._bidders())
        return digest.hexdigest()


def analysis_hash_index(universe: Universe) -> AnalysisHashIndex:
    """The universe's :class:`AnalysisHashIndex`, built once per universe.

    Cached on the universe object (mirroring the delta layer's
    ``_content_hash_index``) so every run a study analyzes incrementally
    shares one fingerprint/hash memo.
    """
    index = getattr(universe, "_analysis_hash_index", None)
    if index is None:
        index = AnalysisHashIndex(universe)
        universe._analysis_hash_index = index
    return index


def _consolidate(
    rng: random.Random, services: Dict[str, ThirdPartyService]
) -> Dict[str, ThirdPartyService]:
    """One organization absorbs another; page bytes are untouched."""
    organizations = sorted(
        {svc.organization for svc in services.values() if svc.organization}
    )
    if len(organizations) < 2 or rng.random() >= CONSOLIDATION_RATE:
        return services
    absorbed, absorber = rng.sample(organizations, 2)
    absorber_cert = next(
        (
            svc.cert_org
            for svc in services.values()
            if svc.organization == absorber and svc.cert_org
        ),
        absorber,
    )
    merged = {}
    for domain, svc in services.items():
        if svc.organization == absorbed:
            svc = dataclasses.replace(
                svc,
                organization=absorber,
                # DV certificates stay DV; OV subjects move to the absorber.
                cert_org=absorber_cert if svc.cert_org else None,
            )
        merged[domain] = svc
    return merged


def _born_services(rng: random.Random, epoch: int) -> List[ThirdPartyService]:
    """One or two new unlisted tail trackers per epoch."""
    count = 1 if rng.random() < 0.5 else 2
    born = []
    for index in range(count):
        born.append(
            ThirdPartyService(
                domain=f"adnet-e{epoch}{'abcdef'[index]}.com",
                organization=None,
                category=CATEGORY_ADS,
                is_ats=True,
                tier_weights=(0.2, 0.5, 1.0, 1.5),
                https=rng.random() < 0.5,
                cert_org=None,
                in_easylist=False,
                in_easyprivacy=False,
                in_disconnect=False,
                sets_cookies=True,
                cookie_names=("uid",),
                cookie_id_length=24,
            )
        )
    return born


def _filter_lists(services: Dict[str, ThirdPartyService]) -> Tuple[str, str]:
    """Mirror of ``_Builder._build_filter_lists`` over an evolved catalog."""
    easylist = ["[Adblock Plus 2.0]", "! Title: Synthetic EasyList",
                "! Adult advertising section"]
    easyprivacy = ["[Adblock Plus 2.0]", "! Title: Synthetic EasyPrivacy"]
    for domain, service in sorted(services.items()):
        if service.in_easylist:
            if service.easylist_path_only:
                easylist.append(f"||{domain}/ad/")
                easylist.append(f"||{domain}/px")
            else:
                easylist.append(f"||{domain}^$third-party")
        if service.in_easyprivacy:
            easyprivacy.append(f"||{domain}^$third-party")
    return "\n".join(easylist), "\n".join(easyprivacy)


def _disconnect_list(services: Dict[str, ThirdPartyService]):
    """Mirror of ``_Builder._build_disconnect`` over an evolved catalog."""
    from ..blocklists.disconnect import DisconnectEntry, DisconnectList

    by_org: Dict[str, List[str]] = {}
    categories: Dict[str, str] = {}
    for domain, service in services.items():
        if not service.in_disconnect or not service.organization:
            continue
        by_org.setdefault(service.organization, []).append(domain)
        categories[service.organization] = (
            "analytics" if service.category == CATEGORY_ANALYTICS
            else "advertising"
        )
    entries = [
        DisconnectEntry(org, categories[org], tuple(sorted(domains)))
        for org, domains in sorted(by_org.items())
    ]
    return DisconnectList(entries)


def _service_certificates(
    services: Dict[str, ThirdPartyService]
) -> Dict[str, Certificate]:
    """Mirror of ``_Builder._build_service_certificates``."""
    certificates: Dict[str, Certificate] = {}
    for domain, service in services.items():
        if not service.https:
            continue
        certificates[domain] = Certificate(
            subject_cn=domain,
            subject_o=service.cert_org,
            san=frozenset({domain, f"*.{domain}"}),
        )
    return certificates


def _evolved_whois(
    base: WhoisRegistry, services: Dict[str, ThirdPartyService]
) -> WhoisRegistry:
    """Copy site records verbatim; re-register the service catalog.

    ``_Builder._build_whois`` draws an RNG per owned porn site, so it must
    never re-run — porn-site attribution is carried over record-by-record.
    Service records are pure functions of ``cert_org`` and are refreshed
    so consolidation and births show up in WHOIS.
    """
    registry = base.clone()
    for domain, service in services.items():
        registry.register(domain, organization=service.cert_org)
    return registry


def evolve_universe(
    universe: Universe,
    *,
    epoch: Optional[int] = None,
    fetch_cache_size: Optional[int] = None,
) -> Universe:
    """Derive the next epoch's universe deterministically.

    ``epoch`` optionally asserts which epoch ``universe`` is (it must
    equal ``universe.config.epoch``); the result is always epoch
    ``universe.config.epoch + 1``.  The returned universe shares the
    site-spec storage of its parent through copy-on-write overlays and
    gets a **fresh fetch cache** — the memo key does not include the
    universe epoch, so sharing one would serve stale bytes.
    """
    config = universe.config
    if epoch is not None and epoch != config.epoch:
        raise ValueError(
            f"universe is at epoch {config.epoch}, not {epoch}"
        )
    new_epoch = config.epoch + 1
    rng = random.Random(stable_hash(config.seed, "evolve", new_epoch))

    services = _consolidate(rng, dict(universe.services))

    # Tracker death: delist tail services from every embedding page.  The
    # service object *stays* in the catalog (and DNS) so RTB bidders and
    # sync chains of unchanged pages keep resolving identically.
    bidder_set = set(universe.rtb_bidders)
    tail = sorted(
        domain
        for domain, svc in services.items()
        if domain not in bidder_set
        and svc.category != CATEGORY_CDN
        and svc.prevalence_porn < 0.005
        and svc.prevalence_regular < 0.005
    )
    death_count = min(len(tail), max(1, round(len(services) * TRACKER_DEATH_FRACTION)), 2)
    dead = frozenset(rng.sample(tail, death_count)) if death_count else frozenset()

    born = _born_services(rng, new_epoch)
    for svc in born:
        if svc.domain in services or svc.domain in universe.porn_sites \
                or svc.domain in universe.regular_sites:
            raise RuntimeError(f"evolved service domain collides: {svc.domain}")
        services[svc.domain] = svc
    born_domains = tuple(svc.domain for svc in born)
    porn_domains = list(universe.porn_sites)
    spread = max(2, round(len(porn_domains) * BIRTH_SPREAD_FRACTION))
    birth_targets = set(rng.sample(porn_domains, min(spread, len(porn_domains))))

    # Per-site pass, porn then regular, in base map order.  Three RNG
    # draws per porn site and one per regular site are made
    # unconditionally so the stream never depends on prior epochs' state.
    changed_porn: Dict[str, PornSiteSpec] = {}
    for domain, spec in universe.porn_sites.items():
        r_churn, r_https, r_banner = rng.random(), rng.random(), rng.random()
        updates: Dict[str, object] = {}
        embeds = spec.embedded_services
        new_embeds = tuple(d for d in embeds if d not in dead)
        if domain in birth_targets and spec.responsive:
            new_embeds = new_embeds + born_domains
        if r_churn < config.churn:
            if len(new_embeds) >= 2:
                new_embeds = new_embeds[1:] + new_embeds[:1]
            else:
                updates["rta_label"] = not spec.rta_label
        if new_embeds != embeds:
            updates["embedded_services"] = new_embeds
        if not spec.https and r_https < HTTPS_MIGRATION_RATE:
            updates["https"] = True
        if spec.banner is None and spec.responsive \
                and r_banner < BANNER_SPREAD_RATE:
            updates["banner"] = BannerSpec(
                BANNER_TYPES[
                    stable_hash(config.seed, "evolve-banner", new_epoch, domain) % 3
                ],
                eu_only=stable_hash(
                    config.seed, "evolve-banner-geo", new_epoch, domain
                ) % 2 == 0,
            )
        if updates:
            changed_porn[domain] = dataclasses.replace(spec, **updates)

    changed_regular: Dict[str, object] = {}
    for domain, spec in universe.regular_sites.items():
        r_churn = rng.random()
        updates = {}
        embeds = spec.embedded_services
        new_embeds = tuple(d for d in embeds if d not in dead)
        if r_churn < config.churn and len(new_embeds) >= 2:
            new_embeds = new_embeds[1:] + new_embeds[:1]
        if new_embeds != embeds:
            updates["embedded_services"] = new_embeds
        if updates:
            changed_regular[domain] = dataclasses.replace(spec, **updates)

    porn_sites = _OverlayMap(universe.porn_sites, changed_porn)
    regular_sites = _OverlayMap(universe.regular_sites, changed_regular)
    easylist_text, easyprivacy_text = _filter_lists(services)
    certificates = LazyCertificates(
        _service_certificates(services),
        porn_sites,
        regular_sites,
        universe.site_cdns,
    )
    evolved = Universe(
        dataclasses.replace(config, epoch=new_epoch),
        porn_sites=porn_sites,
        regular_sites=regular_sites,
        services=services,
        site_cdns=universe.site_cdns,
        dynamic_cdn_sites=universe.dynamic_cdn_sites,
        rtb_bidders=universe.rtb_bidders,
        certificates=certificates,
        easylist_text=easylist_text,
        easyprivacy_text=easyprivacy_text,
        disconnect=_disconnect_list(services),
        aggregator_listings=universe.aggregator_listings,
        alexa_category_sites=universe.alexa_category_sites,
        # Policies are rarely updated in the wild; texts are carried over.
        # Only Selenium inspections read them, and those re-run per epoch
        # identically in full and delta studies alike.
        policy_texts=universe._policy_texts,
        full_list_site=universe.full_list_site,
        whois=_evolved_whois(universe.whois, services),
        fetch_cache_size=fetch_cache_size or universe.fetch_cache.maxsize,
    )
    # Lineage for the delta-crawl fast path: the overlay keys are exactly
    # the sites whose served content can differ from the base epoch —
    # every other evolution op either edits attribution-only fields
    # (consolidation) or reaches pages only *through* an overlay entry
    # (births/deaths edit embed lists, which live in the overlays).
    changed = frozenset(changed_porn) | frozenset(changed_regular)
    evolved.content_changed_since = {
        base: prior | changed
        for base, prior in universe.content_changed_since.items()
    }
    evolved.content_changed_since[config.epoch] = changed
    return evolved
