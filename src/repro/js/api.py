"""Instrumented JavaScript API surface.

OpenWPM instruments the JavaScript APIs trackers abuse (HTML Canvas,
``CanvasRenderingContext2D``, WebRTC, ...) and logs every call with its
arguments.  :class:`JSCall` is our equivalent of one such log row; the
fingerprinting heuristics in :mod:`repro.core.fingerprinting` consume only
these rows, exactly as the paper's pipeline consumes OpenWPM's logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

__all__ = ["API", "JSCall", "calls_by_script"]


class API:
    """Symbolic names for the instrumented JavaScript APIs."""

    CANVAS_CREATE = "HTMLCanvasElement.create"
    CANVAS_TO_DATA_URL = "HTMLCanvasElement.toDataURL"
    CONTEXT_FILL_TEXT = "CanvasRenderingContext2D.fillText"
    CONTEXT_FILL_STYLE = "CanvasRenderingContext2D.fillStyle"
    CONTEXT_SET_FONT = "CanvasRenderingContext2D.font"
    CONTEXT_MEASURE_TEXT = "CanvasRenderingContext2D.measureText"
    CONTEXT_GET_IMAGE_DATA = "CanvasRenderingContext2D.getImageData"
    CONTEXT_SAVE = "CanvasRenderingContext2D.save"
    CONTEXT_RESTORE = "CanvasRenderingContext2D.restore"
    ADD_EVENT_LISTENER = "HTMLCanvasElement.addEventListener"
    RTC_PEER_CONNECTION = "RTCPeerConnection.createDataChannel"
    RTC_ICE_CANDIDATE = "RTCPeerConnection.onicecandidate"
    DOCUMENT_COOKIE_SET = "Document.cookie.set"
    DOCUMENT_COOKIE_GET = "Document.cookie.get"
    NAVIGATOR_USER_AGENT = "Navigator.userAgent"
    SCREEN_RESOLUTION = "Screen.resolution"
    WORKER_CREATE = "Worker.create"


@dataclass(frozen=True)
class JSCall:
    """One instrumented API invocation observed during a page load."""

    script_url: str      # URL the executing script was fetched from
    document_host: str   # FQDN of the page in which the call happened
    api: str             # one of the :class:`API` names
    args: Dict[str, Any] = field(default_factory=dict)

    def arg(self, name: str, default: Any = None) -> Any:
        return self.args.get(name, default)


def calls_by_script(calls: Iterable[JSCall]) -> Dict[str, List[JSCall]]:
    """Group call rows by the script URL that issued them."""
    grouped: Dict[str, List[JSCall]] = {}
    for call in calls:
        grouped.setdefault(call.script_url, []).append(call)
    return grouped
