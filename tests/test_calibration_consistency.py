"""Internal consistency of the calibration table and repo documentation."""

import pathlib

import pytest

from repro.webgen.config import CalibrationTargets, TIER_NAMES, UniverseConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def targets():
    return CalibrationTargets()


class TestTargetArithmetic:
    def test_candidate_sources_sum(self, targets):
        assert (targets.from_aggregators + targets.from_alexa_category
                + targets.from_keyword_search) == targets.candidates_total

    def test_sanitization_accounting(self, targets):
        assert targets.candidates_total - targets.false_positives == \
            targets.sanitized_corpus
        assert (targets.unresponsive_candidates
                + targets.non_porn_keyword_matches) == targets.false_positives

    def test_tier_sites_sum_to_crawlable(self, targets):
        assert sum(targets.tier_site_counts) == targets.crawlable_corpus

    def test_owner_clusters(self, targets):
        assert len(targets.owner_clusters) == 24
        assert sum(count for _, count, _, _ in targets.owner_clusters) == 286
        # The paper's fifteen published rows head the list.
        assert targets.owner_clusters[0][0] == "Gamma Entertainment"
        assert targets.owner_clusters[1][:2] == ("MindGeek", 54)

    def test_banner_fractions_sum_to_totals(self, targets):
        assert sum(targets.banner_fractions_eu.values()) == \
            pytest.approx(0.0441, abs=1e-4)
        assert sum(targets.banner_fractions_us.values()) == \
            pytest.approx(0.0376, abs=1e-4)

    def test_per_country_rows_cover_study_countries(self, targets):
        assert [row[0] for row in targets.per_country_fqdns] == \
            ["US", "UK", "ES", "RU", "IN", "SG"]
        assert sum(row[4] for row in targets.per_country_fqdns) == 168

    def test_tier_fraction_tuples_length(self, targets):
        assert len(targets.tier_https_site_fraction) == len(TIER_NAMES) == 4
        assert len(targets.tier_third_party_totals) == 4
        assert len(targets.tier_third_party_unique) == 4

    def test_unique_below_totals_per_tier(self, targets):
        for unique, total in zip(targets.tier_third_party_unique,
                                 targets.tier_third_party_totals):
            assert unique < total

    def test_cookie_hierarchy(self, targets):
        assert targets.third_party_id_cookies < targets.id_cookies
        assert targets.id_cookies < targets.total_cookies
        assert targets.ats_intersection < min(targets.porn_ats_fqdns,
                                              targets.regular_ats_fqdns)


class TestScaling:
    def test_scaled_minimum(self):
        config = UniverseConfig(scale=0.001)
        assert config.scaled(10) == 1
        assert config.scaled(10, minimum=0) == 0
        assert config.scaled(10_000) == 10

    def test_full_scale_identity(self):
        config = UniverseConfig(scale=1.0)
        assert config.scaled(6_843) == 6_843


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / name).is_file(), name

    def test_design_confirms_paper_identity(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "Tales from the Porn" in text
        assert "IMC 2019" in text
        # The per-experiment index maps every table and figure.
        for marker in ("Table 1", "Table 8", "Fig. 1", "Fig. 4"):
            assert marker in text or marker.replace(". ", ".") in text

    def test_experiments_covers_every_artifact(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for section in ("Table 2", "Table 3", "Table 4", "Table 5",
                        "Table 6", "Table 7", "Table 8", "Figure 1",
                        "Figure 3", "Figure 4"):
            assert section in text, section

    def test_examples_present(self):
        examples = REPO_ROOT / "examples"
        names = {path.name for path in examples.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 3

    def test_every_public_module_has_docstring(self):
        import importlib

        modules = [
            "repro", "repro.net", "repro.html", "repro.js", "repro.text",
            "repro.blocklists", "repro.webgen", "repro.browser",
            "repro.crawler", "repro.core", "repro.core.compliance",
            "repro.core.extensions", "repro.reporting", "repro.study",
            "repro.util",
        ]
        for name in modules:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a docstring"
