"""Ablation — the 0.7 Levenshtein threshold in first/third-party labeling.

Sweeps the threshold and scores labeling against generator ground truth:
a site-owned CDN counted as third party is a miss; a genuine third party
absorbed into the first party is a false merge.
"""

from conftest import Reporter

from repro.core.partylabel import label_parties
from repro.net.url import registrable_domain

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def _score(universe, labels):
    """(cdn recall, third-party precision) against ground truth."""
    cdn_of_site = {site: cdn for cdn, site in universe.site_cdns.items()}
    cdn_hits = cdn_total = 0
    for page, fqdns in labels.first_party.items():
        cdn = cdn_of_site.get(page)
        if cdn is None:
            continue
        cdn_total += 1
        if any(registrable_domain(f) == cdn for f in fqdns):
            cdn_hits += 1
    # Pages whose own CDN leaked into the third-party set = labeling misses.
    misses = 0
    for page, fqdns in labels.third_party_direct.items():
        cdn = cdn_of_site.get(page)
        if cdn and any(registrable_domain(f) == cdn for f in fqdns):
            misses += 1
    # Genuine services wrongly made first party.
    false_merges = 0
    for page, fqdns in labels.first_party.items():
        for fqdn in fqdns:
            if registrable_domain(fqdn) in universe.services:
                false_merges += 1
    return cdn_hits, misses, false_merges


def test_ablation_levenshtein(benchmark, study, reporter):
    log = study.porn_log()
    universe = study.universe

    def sweep():
        rows = []
        for threshold in THRESHOLDS:
            labels = label_parties(log, cert_lookup=universe.certificate_for,
                                   levenshtein_threshold=threshold)
            rows.append((threshold, *_score(universe, labels)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.text("threshold  cdn-found  cdn-missed  false-merges")
    for threshold, hits, misses, merges in rows:
        reporter.text(f"{threshold:>9}  {hits:>9}  {misses:>10}  {merges:>12}")

    by_threshold = {row[0]: row for row in rows}
    # The paper's 0.7 finds the site CDNs without merging real services.
    _, hits_07, misses_07, merges_07 = by_threshold[0.7]
    assert hits_07 > 0
    assert merges_07 == 0
    # Over-strict thresholds start missing CDNs; over-loose ones merge
    # genuinely unrelated services.
    _, hits_09, misses_09, _ = by_threshold[0.9]
    assert misses_09 >= misses_07
    _, _, _, merges_05 = by_threshold[0.5]
    assert merges_05 >= merges_07
