"""Table 2 — first/third-party and ATS domain counts per ecosystem."""

from conftest import scaled

from repro.core.ecosystem import build_table2
from repro.reporting.tables import render_table2


def test_table2_third_parties(benchmark, study, paper, reporter):
    porn_labels = study.porn_labels()
    regular_labels = study.regular_labels()
    porn_ats = study.porn_ats()
    regular_ats = study.regular_ats()
    table = benchmark(
        lambda: build_table2(
            porn_labels=porn_labels,
            regular_labels=regular_labels,
            porn_ats=porn_ats,
            regular_ats=regular_ats,
            porn_visited=len(study.porn_log().successful_visits()),
            regular_visited=len(study.regular_log().successful_visits()),
        )
    )

    reporter.row("porn corpus crawled", scaled(paper.crawlable_corpus),
                 table.porn_corpus)
    reporter.row("porn third-party FQDNs", scaled(paper.porn_third_party_fqdns),
                 table.porn_third_party)
    reporter.row("regular third-party FQDNs",
                 scaled(paper.regular_third_party_fqdns),
                 table.regular_third_party)
    reporter.row("porn first-party FQDNs", scaled(paper.porn_first_party_fqdns),
                 table.porn_first_party)
    reporter.row("FQDN intersection |P ∩ R|", scaled(paper.fqdn_intersection),
                 table.fqdn_intersection)
    reporter.row("porn ATS", scaled(paper.porn_ats_fqdns), table.porn_ats)
    reporter.row("regular ATS", scaled(paper.regular_ats_fqdns),
                 table.regular_ats)
    reporter.row("ATS intersection", scaled(paper.ats_intersection),
                 table.ats_intersection)
    reporter.row("porn ATS absent from regular web", "84%",
                 f"{table.porn_only_ats_fraction:.0%}")
    reporter.text(render_table2(table))

    # Shape assertions: who wins and by roughly what factor.
    assert table.regular_third_party > 2.5 * table.porn_third_party
    assert table.porn_ats > 2 * table.regular_ats
    assert table.porn_ats_fraction > 4 * table.regular_ats_fraction
    assert table.porn_only_ats_fraction > 0.6
