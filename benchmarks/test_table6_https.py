"""Table 6 / §5.2 — HTTPS adoption by popularity tier."""

from repro.core.https_analysis import analyze_https
from repro.reporting.tables import render_table6


def test_table6_https(benchmark, study, paper, reporter):
    log = study.porn_log()
    labels = study.porn_labels()
    popularity = study.crawled_popularity()
    report = benchmark(lambda: analyze_https(log, labels, popularity))

    for index, row in enumerate(report.rows):
        reporter.row(
            f"tier {row.interval}: site HTTPS",
            f"{paper.tier_https_site_fraction[index]:.0%}",
            f"{row.site_https_fraction:.0%}",
        )
        reporter.row(
            f"tier {row.interval}: third-party HTTPS",
            f"{paper.tier_https_service_fraction[index]:.0%}",
            f"{row.service_https_fraction:.0%}",
        )
    reporter.row("sites not fully HTTPS", "68%",
                 f"{report.not_fully_https_fraction:.0%}")
    reporter.row("of those, leaking sensitive cookies in clear", "8%",
                 f"{report.cleartext_cookie_fraction:.0%}")
    reporter.text(render_table6(report))

    # Monotone decay with popularity, for sites and services alike.
    site_fracs = [r.site_https_fraction for r in report.rows
                  if r.site_count >= 10]
    assert site_fracs == sorted(site_fracs, reverse=True)
    assert report.rows[0].site_https_fraction > 0.8
    assert report.rows[3].site_https_fraction < 0.3
    assert 0.55 <= report.not_fully_https_fraction <= 0.85
    assert report.cleartext_cookie_fraction < 0.3
