"""Unit tests for Set-Cookie parsing and the cookie jar."""

import pytest

from repro.net.cookies import Cookie, CookieJar, parse_set_cookie
from repro.net.url import parse_url


class TestParseSetCookie:
    def test_simple_cookie(self):
        cookie = parse_set_cookie("uid=abc123", request_host="a.com")
        assert cookie.name == "uid"
        assert cookie.value == "abc123"
        assert cookie.domain == "a.com"
        assert cookie.session  # no Max-Age/Expires

    def test_max_age_makes_persistent(self):
        cookie = parse_set_cookie("uid=x; Max-Age=3600", request_host="a.com")
        assert not cookie.session
        assert cookie.max_age == 3600

    def test_domain_attribute_allows_parent(self):
        cookie = parse_set_cookie(
            "uid=x; Domain=exoclick.com", request_host="ads.exoclick.com"
        )
        assert cookie.domain == "exoclick.com"
        assert cookie.domain_attribute

    def test_domain_attribute_rejects_foreign_domain(self):
        cookie = parse_set_cookie(
            "uid=x; Domain=other.com", request_host="ads.exoclick.com"
        )
        assert cookie is None

    def test_leading_dot_domain_stripped(self):
        cookie = parse_set_cookie("a=b; Domain=.x.com", request_host="www.x.com")
        assert cookie.domain == "x.com"

    def test_secure_and_httponly_flags(self):
        cookie = parse_set_cookie("a=b; Secure; HttpOnly", request_host="x.com")
        assert cookie.secure
        assert cookie.http_only

    def test_malformed_header_returns_none(self):
        assert parse_set_cookie("no-equals-sign", request_host="x.com") is None
        assert parse_set_cookie("=value-only", request_host="x.com") is None

    def test_bad_max_age_ignored(self):
        cookie = parse_set_cookie("a=b; Max-Age=zzz", request_host="x.com")
        assert cookie is not None
        assert cookie.max_age is None

    def test_path_attribute(self):
        cookie = parse_set_cookie("a=b; Path=/sub", request_host="x.com")
        assert cookie.path == "/sub"


class TestCookieJar:
    def test_store_and_send_back(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("uid=v1; Max-Age=60", request_host="t.com"))
        assert jar.cookie_header_for(parse_url("https://t.com/")) == "uid=v1"

    def test_host_only_cookie_not_sent_to_subdomain(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("uid=v1", request_host="t.com"))
        assert jar.cookie_header_for(parse_url("https://sub.t.com/")) is None

    def test_domain_cookie_shared_across_subdomains(self):
        jar = CookieJar()
        jar.store(
            parse_set_cookie("uid=v1; Domain=t.com", request_host="ads.t.com")
        )
        assert jar.cookie_header_for(parse_url("https://sync.t.com/")) == "uid=v1"

    def test_secure_cookie_not_sent_over_http(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("uid=v1; Secure", request_host="t.com"))
        assert jar.cookie_header_for(parse_url("http://t.com/")) is None
        assert jar.cookie_header_for(parse_url("https://t.com/")) == "uid=v1"

    def test_same_slot_overwritten(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("uid=v1", request_host="t.com"))
        jar.store(parse_set_cookie("uid=v2", request_host="t.com"))
        assert len(jar) == 1
        assert jar.cookie_header_for(parse_url("https://t.com/")) == "uid=v2"

    def test_zero_max_age_deletes(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("uid=v1", request_host="t.com"))
        jar.store(parse_set_cookie("uid=gone; Max-Age=0", request_host="t.com"))
        assert len(jar) == 0

    def test_path_scoping(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=b; Path=/admin", request_host="t.com"))
        assert jar.cookie_header_for(parse_url("https://t.com/")) is None
        assert jar.cookie_header_for(parse_url("https://t.com/admin/x")) == "a=b"

    def test_store_from_response_returns_stored(self):
        jar = CookieJar()
        stored = jar.store_from_response(
            ["a=1; Max-Age=5", "broken", "b=2"], request_host="t.com"
        )
        assert [cookie.name for cookie in stored] == ["a", "b"]
        assert len(jar) == 2

    def test_cookie_header_sorted_longest_path_first(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("short=1; Path=/", request_host="t.com"))
        jar.store(parse_set_cookie("deep=2; Path=/a/b", request_host="t.com"))
        header = jar.cookie_header_for(parse_url("https://t.com/a/b/c"))
        assert header == "deep=2; short=1"

    def test_domains_listing(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1", request_host="b.com"))
        jar.store(parse_set_cookie("a=1", request_host="a.com"))
        assert jar.domains() == ["a.com", "b.com"]
