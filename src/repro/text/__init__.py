"""Text analytics substrate: tokenization, TF-IDF, edit distance, languages."""

from .langs import (
    ACCOUNT_KEYWORDS,
    AGE_GATE_BUTTON_KEYWORDS,
    AGE_WARNING_PHRASES,
    COOKIE_BANNER_KEYWORDS,
    LANGUAGES,
    PREMIUM_KEYWORDS,
    PRIVACY_LINK_KEYWORDS,
    all_keywords,
    contains_keyword,
    matching_keywords,
)
from .levenshtein import domains_similar, levenshtein_distance, similarity
from .sparse import CsrMatrix, SimilarityEngine, engine_stats
from .tfidf import (
    TfIdfVectorizer,
    cosine_similarity,
    pairwise_similarities,
    pairwise_similarities_linear,
)
from .tokenize import term_counts, tokenize

__all__ = [
    "ACCOUNT_KEYWORDS",
    "AGE_GATE_BUTTON_KEYWORDS",
    "AGE_WARNING_PHRASES",
    "COOKIE_BANNER_KEYWORDS",
    "LANGUAGES",
    "PREMIUM_KEYWORDS",
    "PRIVACY_LINK_KEYWORDS",
    "all_keywords",
    "contains_keyword",
    "matching_keywords",
    "domains_similar",
    "levenshtein_distance",
    "similarity",
    "CsrMatrix",
    "SimilarityEngine",
    "engine_stats",
    "TfIdfVectorizer",
    "cosine_similarity",
    "pairwise_similarities",
    "pairwise_similarities_linear",
    "term_counts",
    "tokenize",
]
