"""Tokenization for the TF-IDF analyses (Sections 4.1 and 7.3)."""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List

__all__ = ["tokenize", "term_counts"]

_WORD_RE = re.compile(r"[a-z0-9][a-z0-9'-]*", re.IGNORECASE)


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lower-case word tokens.

    Hyphenated and apostrophized words stay intact (``opt-out``,
    ``user's``) since privacy policies rely on them heavily.
    """
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def term_counts(text: str) -> Dict[str, int]:
    """Term-frequency map for ``text``."""
    return dict(Counter(tokenize(text)))
