"""Ablation — exact-token vs delimiter-splitting cookie-sync matching.

The paper deliberately matches whole values (a lower bound).  This bench
quantifies what splitting URL tokens on common delimiters would add — and
the false-match risk it brings — plus a sweep of the minimum value length.
"""

from repro.browser.events import CrawlLog
from repro.core.cookie_sync import MIN_VALUE_LENGTH, _url_tokens, detect_cookie_sync
from repro.net.url import registrable_domain

_DELIMITERS = ("-", "_", ".", ":")


def _split_tokens(url):
    tokens = list(_url_tokens(url))
    extra = []
    for token in tokens:
        for delimiter in _DELIMITERS:
            if delimiter in token:
                extra.extend(part for part in token.split(delimiter)
                             if len(part) >= MIN_VALUE_LENGTH)
    return tokens + extra


def _detect_with_splitting(log):
    values = {}
    events = []
    for cookie in log.cookies:
        if len(cookie.value) >= MIN_VALUE_LENGTH:
            events.append((cookie.seq, "cookie", cookie))
    for record in log.requests:
        events.append((record.seq, "request", record))
    events.sort(key=lambda item: item[0])
    pairs = set()
    for _, kind, payload in events:
        if kind == "cookie":
            values.setdefault(payload.value,
                              registrable_domain(payload.domain))
            continue
        destination = registrable_domain(payload.fqdn)
        for token in _split_tokens(payload.url):
            origin = values.get(token)
            if origin and origin != destination:
                pairs.add((origin, destination))
    return pairs


def test_ablation_cookie_sync(benchmark, study, reporter):
    log = study.porn_log()

    exact = benchmark.pedantic(lambda: detect_cookie_sync(log), rounds=1,
                               iterations=1)
    split_pairs = _detect_with_splitting(log)
    exact_pairs = set(exact.pair_counts)

    reporter.row("pairs, exact whole-value matching (paper method)",
                 "(lower bound)", len(exact_pairs))
    reporter.row("pairs, with delimiter splitting", "(upper estimate)",
                 len(split_pairs))
    reporter.row("additional pairs from splitting", "-",
                 len(split_pairs - exact_pairs))
    # Exact matching is a strict subset of split matching.
    assert exact_pairs <= split_pairs
