"""Smoke tests: every example script runs end to end at tiny scale."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "third-party domains contacted" in result.stdout

    def test_tracking_audit(self):
        result = run_example("tracking_audit.py", "0.02")
        assert result.returncode == 0, result.stderr
        assert "cookie syncing" in result.stdout
        assert "Englehardt" in result.stdout

    def test_compliance_check(self):
        result = run_example("compliance_check.py", "0.02")
        assert result.returncode == 0, result.stderr
        assert "Privacy policies" in result.stdout
        assert "GDPR red flags" in result.stdout

    def test_geo_comparison(self):
        result = run_example("geo_comparison.py", "0.02", "ES", "RU")
        assert result.returncode == 0, result.stderr
        assert "Russia sees" in result.stdout

    def test_anti_tracking(self):
        result = run_example("anti_tracking.py", "0.02")
        assert result.returncode == 0, result.stderr
        assert "content blocker" in result.stdout

    def test_full_reproduction(self):
        result = run_example("full_reproduction.py", "0.02", timeout=300)
        assert result.returncode == 0, result.stderr
        for marker in ("Table 2", "Figure 4", "Table 8", "completed in"):
            assert marker in result.stdout, marker
