"""Simulated JavaScript surface: instrumented APIs and script behaviors."""

from .api import API, JSCall, calls_by_script
from .runtime import (
    CanvasBehavior,
    FontProbeBehavior,
    ScriptBehavior,
    execute_script,
)

__all__ = [
    "API",
    "JSCall",
    "calls_by_script",
    "CanvasBehavior",
    "FontProbeBehavior",
    "ScriptBehavior",
    "execute_script",
]
