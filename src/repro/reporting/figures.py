"""Figure data export: CSV series and terminal-friendly charts.

The paper's figures are reproduced as data series (CSV) plus compact
ASCII renderings so benchmark output is self-contained without plotting
dependencies.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.cookie_sync import SyncReport
from ..core.ecosystem import OrganizationPrevalence
from ..core.popularity import PopularityReport

__all__ = [
    "figure1_csv",
    "figure1_ascii",
    "figure3_csv",
    "figure3_ascii",
    "figure4_edges_csv",
    "figure4_ascii",
    "bar",
]


def bar(fraction: float, *, width: int = 40, fill: str = "#") -> str:
    """A [0,1] fraction as a fixed-width ASCII bar."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return fill * filled + "." * (width - filled)


# ----------------------------------------------------------------------
# Figure 1 — best/median rank and presence per site
# ----------------------------------------------------------------------

def figure1_csv(report: PopularityReport) -> str:
    buffer = io.StringIO()
    buffer.write("site,best_rank,median_rank,days_present_fraction\n")
    for site in report.sorted_by_best():
        buffer.write(
            f"{site.domain},{site.best_rank},{site.median_rank},"
            f"{site.presence_fraction:.4f}\n"
        )
    return buffer.getvalue()


def figure1_ascii(report: PopularityReport, *, buckets: int = 20) -> str:
    """Presence fraction distribution across the best-rank ordering."""
    ordered = report.sorted_by_best()
    if not ordered:
        return "(no sites)"
    lines = ["Fig.1 — presence in the top-1M across the corpus "
             "(sites ordered by best rank):"]
    step = max(1, len(ordered) // buckets)
    for start in range(0, len(ordered), step):
        chunk = ordered[start:start + step]
        mean_presence = sum(s.presence_fraction for s in chunk) / len(chunk)
        best = chunk[0].best_rank
        lines.append(f"  rank>={best:>9,}  {bar(mean_presence)}  "
                     f"{mean_presence:.0%}")
    lines.append(
        f"  always in top-1M: {report.always_top_1m_count:,} "
        f"({report.always_top_1m_fraction:.0%}); "
        f"always in top-1K: {report.always_top_1k_count}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 3 — top organizations, porn vs regular prevalence
# ----------------------------------------------------------------------

def figure3_csv(bars: Sequence[OrganizationPrevalence]) -> str:
    buffer = io.StringIO()
    buffer.write("organization,porn_fraction,regular_fraction\n")
    for entry in bars:
        buffer.write(
            f"{entry.organization},{entry.porn_fraction:.4f},"
            f"{entry.regular_fraction:.4f}\n"
        )
    return buffer.getvalue()


def figure3_ascii(bars: Sequence[OrganizationPrevalence]) -> str:
    lines = ["Fig.3 — top third-party organizations (porn [P] vs regular [R]):"]
    for entry in bars:
        lines.append(f"  {entry.organization[:28]:<28} "
                     f"P {bar(entry.porn_fraction, width=30)} "
                     f"{entry.porn_fraction:.0%}")
        lines.append(f"  {'':<28} "
                     f"R {bar(entry.regular_fraction, width=30, fill='=')} "
                     f"{entry.regular_fraction:.0%}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 4 — cookie-sync graph
# ----------------------------------------------------------------------

def figure4_edges_csv(report: SyncReport, *, minimum: int = 75) -> str:
    buffer = io.StringIO()
    buffer.write("origin,destination,cookies_exchanged\n")
    for (origin, destination), count in sorted(
        report.heavy_pairs(minimum).items(), key=lambda item: -item[1]
    ):
        buffer.write(f"{origin},{destination},{count}\n")
    return buffer.getvalue()


def figure4_ascii(report: SyncReport, *, minimum: int = 75,
                  top_n: int = 25) -> str:
    heavy = sorted(report.heavy_pairs(minimum).items(), key=lambda i: -i[1])
    lines = [
        f"Fig.4 — cookie syncing (pairs exchanging >= {minimum} cookies; "
        f"{len(heavy)} edges, {len(report.origins)} origins, "
        f"{len(report.destinations)} destinations):"
    ]
    for (origin, destination), count in heavy[:top_n]:
        lines.append(f"  {origin:>28} -> {destination:<28} {count:>6,}")
    if len(heavy) > top_n:
        lines.append(f"  ... and {len(heavy) - top_n} more edges")
    return "\n".join(lines)
