"""Integration tests for the instrumented browser."""

import pytest

from repro.browser.browser import Browser
from repro.net.url import parse_url, registrable_domain
from repro.webgen.universe import ClientContext

ES = ClientContext("ES", "31.0.0.1")


@pytest.fixture()
def browser(universe):
    return Browser(universe, ES)


def cookie_site(universe):
    return next(
        d for d, s in sorted(universe.porn_sites.items())
        if s.responsive and not s.crawl_flaky and s.first_party_cookies > 0
        and s.embedded_services
    )


class TestVisit:
    def test_successful_visit_records_document(self, universe, browser):
        domain = cookie_site(universe)
        visit = browser.visit(domain)
        assert visit.success
        assert visit.html
        documents = [r for r in browser.log.requests
                     if r.resource_type == "document"]
        assert any(r.fqdn == domain for r in documents)

    def test_https_first_then_downgrade(self, universe):
        domain = next(
            d for d, s in sorted(universe.porn_sites.items())
            if s.responsive and not s.crawl_flaky and not s.https
        )
        browser = Browser(universe, ES)
        visit = browser.visit(domain)
        assert visit.success
        assert not visit.https
        schemes = [r.scheme for r in browser.log.requests
                   if r.resource_type == "document" and r.fqdn == domain]
        assert schemes[0] == "https"   # attempted first
        assert schemes[-1] == "http"   # succeeded after downgrade

    def test_unreachable_site(self, universe, browser):
        dead = next(d for d, s in universe.porn_sites.items()
                    if not s.responsive)
        visit = browser.visit(dead)
        assert not visit.success
        assert visit.failure_reason

    def test_subresources_fetched(self, universe, browser):
        domain = cookie_site(universe)
        browser.visit(domain)
        third_party = [
            r for r in browser.log.requests
            if registrable_domain(r.fqdn) != registrable_domain(domain)
        ]
        assert third_party

    def test_referrer_set_on_subresources(self, universe, browser):
        domain = cookie_site(universe)
        visit = browser.visit(domain)
        for record in browser.log.requests:
            if record.resource_type in ("script", "image") and \
                    record.page_domain == domain and record.initiator is None:
                assert record.referrer == visit.url

    def test_cookies_recorded_and_jar_populated(self, universe, browser):
        domain = cookie_site(universe)
        browser.visit(domain)
        assert browser.log.cookies
        assert len(browser.jar) > 0
        first_party = [c for c in browser.log.cookies if c.domain == domain]
        assert first_party

    def test_sequence_numbers_strictly_increasing(self, universe, browser):
        browser.visit(cookie_site(universe))
        sequences = [r.seq for r in browser.log.requests] + \
            [c.seq for c in browser.log.cookies]
        assert len(sequences) == len(set(sequences))

    def test_session_persists_across_visits(self, universe):
        browser = Browser(universe, ES)
        sites = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky
        )[:5]
        for site in sites:
            browser.visit(site)
        # Cookies from earlier sites are still present later (single session).
        assert len(browser.jar) > 0
        assert len({c.page_domain for c in browser.log.cookies}) >= 1

    def test_js_calls_recorded(self, universe):
        browser = Browser(universe, ES)
        sites = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky
        )[:20]
        for site in sites:
            browser.visit(site)
        assert browser.log.js_calls

    def test_keep_html_false_drops_body(self, universe):
        browser = Browser(universe, ES, keep_html=False)
        visit = browser.visit(cookie_site(universe))
        assert visit.success
        assert visit.html == ""


class TestRedirects:
    def test_sync_redirect_followed_and_relabeled(self, universe):
        """Redirect hops carry the redirector as referrer (inclusion chain)."""
        browser = Browser(universe, ES)
        response = browser.fetch(
            parse_url("https://exosrv.com/px?cb=1"),
            page_domain="syntheticpage.com",
            resource_type="image",
            referrer="https://syntheticpage.com/",
        )
        assert response is not None
        hops = [r for r in browser.log.requests if "/sync" in r.url]
        for hop in hops:
            assert hop.referrer != "https://syntheticpage.com/"

    def test_redirect_chain_bounded(self, universe):
        browser = Browser(universe, ES)
        browser.fetch(
            parse_url("https://exosrv.com/px?cb=1"),
            page_domain="deepchain.com",
            resource_type="image",
            referrer="https://deepchain.com/",
        )
        assert len(browser.log.requests) <= 6
