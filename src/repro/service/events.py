"""Per-job event logs with multi-subscriber fan-out.

An :class:`EventLog` is an append-only sequence of :class:`JobEvent`
records guarded by a condition variable.  Publishing assigns the next
sequence number and wakes every subscriber; subscribing replays the
whole history from any sequence number and then tails live events until
a terminal event (``job_done`` / ``job_failed`` / ``job_cancelled``)
arrives.  Because every subscriber reads the same list, two clients
streaming the same job necessarily observe *identical* event sequences
— the property ``tests/test_service.py`` and ``make serve-check``
assert — regardless of when each connected.

The event vocabulary is the union of what the crawl progress hooks emit
(``run_started``, ``site_started``, ``site_finished``, ``run_finished``
— see :meth:`repro.crawler.openwpm.OpenWPMCrawler.crawl`) and what the
job runner adds around them (``job_*``, ``analysis_started``,
``analysis_finished``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = ["EventLog", "JobEvent", "TERMINAL_KINDS"]

#: Event kinds that end a job's stream; exactly one ever appears per
#: job, always last.
TERMINAL_KINDS = frozenset({"job_done", "job_failed", "job_cancelled"})


@dataclass(frozen=True)
class JobEvent:
    """One event in a job's stream.

    ``seq`` is dense from 0 and doubles as the SSE ``id:`` field, so a
    reconnecting client can resume from ``?from=<seq>``.
    """

    seq: int
    kind: str
    payload: Dict

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_KINDS


class EventLog:
    """Append-only event history with blocking subscribers."""

    def __init__(self) -> None:
        self._events: List[JobEvent] = []
        self._cond = threading.Condition()

    def publish(self, kind: str, payload: Optional[Dict] = None) -> JobEvent:
        """Append one event and wake every waiting subscriber."""
        with self._cond:
            event = JobEvent(seq=len(self._events), kind=kind,
                             payload=dict(payload or {}))
            self._events.append(event)
            self._cond.notify_all()
        return event

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def snapshot(self) -> List[JobEvent]:
        """The history so far (a copy; safe to iterate without the lock)."""
        with self._cond:
            return list(self._events)

    @property
    def finished(self) -> bool:
        with self._cond:
            return bool(self._events) and self._events[-1].terminal

    def subscribe(self, from_seq: int = 0, *,
                  heartbeat: Optional[float] = None
                  ) -> Iterator[Optional[JobEvent]]:
        """Replay from ``from_seq`` then tail until the terminal event.

        Yields :class:`JobEvent` records; with ``heartbeat`` set, yields
        ``None`` whenever that many seconds pass without a new event, so
        an SSE writer can emit a keep-alive comment (and notice a dead
        socket).  The generator never holds the lock while suspended.
        """
        seq = max(0, from_seq)
        while True:
            with self._cond:
                if len(self._events) <= seq:
                    self._cond.wait(timeout=heartbeat)
                batch = self._events[seq:]
            if not batch:
                yield None  # heartbeat tick (or spurious wake-up)
                continue
            seq += len(batch)
            for event in batch:
                yield event
                if event.terminal:
                    return
