"""Tests for page rendering and the crawl-log event model."""

import pytest

from repro.browser.events import CookieRecord, CrawlLog, PageVisit, RequestRecord
from repro.html.parser import parse_html
from repro.html.query import find_all, find_first, links, meta_tags
from repro.net.whois import PRIVACY_REDACTED, WhoisRegistry
from repro.webgen.policytext import PolicySpec
from repro.webgen.rank import RankTrajectory
from repro.webgen.render import (
    head_boilerplate,
    render_error_page,
    render_policy_page,
    render_porn_landing,
    render_regular_landing,
)
from repro.webgen.sites import AgeGateSpec, BannerSpec, PornSiteSpec, RegularSiteSpec


def trajectory():
    return RankTrajectory(
        best_rank=100, sigma=0.5, observed_best=100, observed_median=200,
        observed_worst=400, days_present=365, days_total=365,
    )


def porn_site(**overrides):
    spec = dict(domain="testsite.com", trajectory=trajectory(), language="en")
    spec.update(overrides)
    return PornSiteSpec(**spec)


class TestPornLanding:
    def render(self, site, **kwargs):
        defaults = dict(embeds=[], show_age_gate=False, show_banner=False,
                        policy_available=False)
        defaults.update(kwargs)
        return render_porn_landing(site, **defaults)

    def test_minimal_page_parses(self):
        root = parse_html(self.render(porn_site()))
        assert find_first(root, "nav") is not None
        assert find_first(root, "footer") is not None

    def test_age_gate_rendered_when_shown(self):
        site = porn_site(age_gate=AgeGateSpec(mode="button"))
        html = self.render(site, show_age_gate=True)
        root = parse_html(html)
        gate = find_first(root, predicate=lambda e: e.id == "age-gate")
        assert gate is not None
        assert gate.is_floating

    def test_age_gate_absent_when_not_shown(self):
        site = porn_site(age_gate=AgeGateSpec(mode="button"))
        html = self.render(site, show_age_gate=False)
        assert 'id="age-gate"' not in html

    def test_banner_language(self):
        site = porn_site(language="de",
                         banner=BannerSpec("confirmation"))
        html = self.render(site, show_banner=True)
        assert "verwendet Cookies" in html
        assert "Akzeptieren" in html

    def test_banner_policy_link_requires_policy(self):
        spec = PolicySpec(template_id=0, target_length=1100,
                          mentions_gdpr=False, discloses_cookies=True,
                          discloses_data_types=True,
                          discloses_third_parties=True)
        with_policy = self.render(
            porn_site(banner=BannerSpec("no_option"), policy=spec),
            show_banner=True, policy_available=True)
        without = self.render(
            porn_site(banner=BannerSpec("no_option")), show_banner=True)
        assert '<a href="/privacy">' in with_policy
        assert '<a href="/privacy">' not in without

    def test_subscription_cues(self):
        html = self.render(porn_site(subscription="paid"))
        assert "Log In" in html
        assert "$29.95" in html
        free = self.render(porn_site(subscription="free"))
        assert "free registration" in free
        none = self.render(porn_site())
        assert "Log In" not in none

    def test_embeds_rendered_by_kind(self):
        html = self.render(porn_site(), embeds=[
            ("script", "https://t.com/a.js"),
            ("img", "https://t.com/px"),
            ("iframe", "https://t.com/frame"),
            ("link", "https://t.com/x.css"),
        ])
        root = parse_html(html)
        assert find_first(root, "iframe").get("src") == "https://t.com/frame"
        assert any(s.get("src") == "https://t.com/a.js"
                   for s in find_all(root, "script"))

    def test_unknown_embed_kind_rejected(self):
        with pytest.raises(ValueError):
            self.render(porn_site(), embeds=[("video", "https://t.com/v")])

    def test_rta_label(self):
        html = self.render(porn_site(rta_label=True))
        assert "RTA-5042" in html

    def test_owner_head_boilerplate(self):
        owned = porn_site(owner="MindGeek")
        html = head_boilerplate(owned)
        assert "MindGeek Network CMS" in html
        assert 'content="MindGeek"' in html
        independent = head_boilerplate(porn_site())
        assert "Network CMS" not in independent

    def test_social_login_gate_has_no_plain_button(self):
        site = porn_site(language="ru",
                         age_gate=AgeGateSpec(mode="social_login"))
        html = self.render(site, show_age_gate=True)
        assert 'data-gate="social"' in html
        assert 'id="age-enter"' not in html


class TestOtherPages:
    def test_regular_landing(self):
        site = RegularSiteSpec(domain="news-site.com", trajectory=trajectory(),
                               category="sports")
        html = render_regular_landing(site, embeds=[])
        assert "sports" in html
        assert "porn" not in html.lower()

    def test_policy_page(self):
        html = render_policy_page("x.com", "First paragraph.\n\nSecond one.")
        root = parse_html(html)
        assert len(find_all(root, "p")) == 2

    def test_error_page(self):
        html = render_error_page(451, "Unavailable For Legal Reasons")
        assert "451" in html


class TestCrawlLogModel:
    def make_log(self, country="ES"):
        log = CrawlLog(country_code=country, client_ip="31.0.0.1")
        log.visits.append(PageVisit("a.com", "https://a.com/", True, 200))
        log.visits.append(PageVisit("b.com", "https://b.com/", False,
                                    failure_reason="SiteTimeoutError"))
        log.requests.append(RequestRecord(
            url="https://t.com/x", fqdn="t.com", scheme="https",
            page_domain="a.com", resource_type="script", initiator=None,
            referrer="https://a.com/", seq=log.next_seq(), status=200,
        ))
        log.cookies.append(CookieRecord(
            page_domain="a.com", set_by_host="t.com", domain="t.com",
            name="uid", value="v" * 12, session=False, secure=True,
            over_https=True, seq=log.next_seq(),
        ))
        return log

    def test_successful_visits(self):
        log = self.make_log()
        assert [v.site_domain for v in log.successful_visits()] == ["a.com"]

    def test_visits_by_domain(self):
        log = self.make_log()
        assert log.visits_by_domain()["b.com"].failure_reason == \
            "SiteTimeoutError"

    def test_requests_for(self):
        log = self.make_log()
        assert len(log.requests_for("a.com")) == 1
        assert log.requests_for("b.com") == []

    def test_merge_offsets_sequences(self):
        first = self.make_log()
        second = self.make_log("US")
        merged = first.merge(second)
        assert len(merged.requests) == 2
        assert len(merged.cookies) == 2
        sequences = [r.seq for r in merged.requests] + \
            [c.seq for c in merged.cookies]
        assert len(sequences) == len(set(sequences))
        # Second log's events come strictly after the first's.
        assert merged.requests[1].seq > merged.cookies[0].seq

    def test_merge_does_not_mutate_inputs(self):
        first = self.make_log()
        second = self.make_log()
        original_seq = second.requests[0].seq
        first.merge(second)
        assert second.requests[0].seq == original_seq

    def test_request_ok_semantics(self):
        record = RequestRecord(url="https://x.com/", fqdn="x.com",
                               scheme="https", page_domain="x.com",
                               resource_type="document", initiator=None,
                               referrer=None, status=404)
        assert not record.ok
        record.status = 302
        record.redirect_location = "https://y.com/"
        assert record.ok and record.is_redirect


class TestWhoisRegistry:
    def test_register_and_lookup(self):
        registry = WhoisRegistry()
        registry.register("ads.example.com", organization="Example Media")
        assert registry.organization_of("sub.example.com") == "Example Media"

    def test_redacted_by_default(self):
        registry = WhoisRegistry()
        record = registry.register("hidden.com")
        assert record.is_redacted
        assert registry.organization_of("hidden.com") is None

    def test_unknown_domain(self):
        assert WhoisRegistry().lookup("ghost.net") is None

    def test_query_counter(self):
        registry = WhoisRegistry()
        registry.register("a.com", organization="A")
        registry.lookup("a.com")
        registry.lookup("b.com")
        assert registry.query_count == 2

    def test_redaction_constant(self):
        registry = WhoisRegistry()
        record = registry.register("x.com", organization=PRIVACY_REDACTED)
        assert record.is_redacted
