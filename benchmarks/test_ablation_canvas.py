"""Ablation — fingerprinting-detector strictness (§5.1.3).

The strict Englehardt-Narayanan criteria match nothing in this ecosystem
(the paper's finding); this bench sweeps the measureText threshold of the
paper's replacement rule and compares detections against the generator's
ground truth of fingerprinting services.
"""

from repro.core.fingerprinting import analyze_fingerprinting
from repro.js.api import API
from repro.net.url import URLError, parse_url, registrable_domain

THRESHOLDS = (10, 25, 50, 100, 200)


def _rule_with_threshold(calls, threshold):
    if not any(c.api == API.CONTEXT_SET_FONT for c in calls):
        return False
    per_text = {}
    for call in calls:
        if call.api == API.CONTEXT_MEASURE_TEXT:
            text = call.arg("text", "")
            per_text[text] = per_text.get(text, 0) + 1
    return max(per_text.values(), default=0) >= threshold


def test_ablation_canvas(benchmark, study, reporter):
    from repro.js.api import calls_by_script

    js_calls = study.porn_log().js_calls
    universe = study.universe
    truth = {d for d, s in universe.services.items() if s.fingerprints}

    def sweep():
        # Group per execution context: one script run per (URL, page).
        grouped = {}
        for call in js_calls:
            grouped.setdefault((call.script_url, call.document_host),
                               []).append(call)
        rows = []
        for threshold in THRESHOLDS:
            detected_services = set()
            scripts = set()
            for (url, _page), calls in grouped.items():
                if _rule_with_threshold(calls, threshold):
                    scripts.add(url)
                    try:
                        detected_services.add(
                            registrable_domain(parse_url(url).host)
                        )
                    except URLError:
                        pass
            tp_detected = detected_services & truth
            rows.append((threshold, len(scripts), len(tp_detected)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = analyze_fingerprinting(js_calls)
    reporter.row("strict Englehardt-Narayanan detections", 0,
                 len(report.englehardt_scripts))
    reporter.text("measureText-threshold  scripts  true-FP-services")
    for threshold, scripts, services in rows:
        reporter.text(f"{threshold:>21}  {scripts:>7}  {services:>16}")

    by_threshold = {row[0]: row for row in rows}
    # Detections shrink monotonically with strictness.
    counts = [by_threshold[t][1] for t in THRESHOLDS]
    assert counts == sorted(counts, reverse=True)
    # The paper's threshold (50) still catches the fingerprinting services;
    # 200 loses them all (the scripts measure 50-150 times).
    assert by_threshold[50][2] > 0
    assert by_threshold[200][1] == 0
