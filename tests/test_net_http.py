"""Unit tests for the HTTP message model."""

from repro.net.http import Headers, Request, Response
from repro.net.url import parse_url


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_get_all_preserves_duplicates(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("set-cookie") == ["a=1", "b=2"]

    def test_set_replaces_all(self):
        headers = Headers([("X", "1"), ("x", "2")])
        headers.set("X", "3")
        assert headers.get_all("x") == ["3"]

    def test_contains_and_remove(self):
        headers = Headers([("Referer", "https://a.com/")])
        assert "referer" in headers
        headers.remove("REFERER")
        assert "referer" not in headers

    def test_get_default(self):
        assert Headers().get("Missing", "fallback") == "fallback"

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        copy = original.copy()
        copy.add("B", "2")
        assert len(original) == 1
        assert len(copy) == 2

    def test_equality(self):
        assert Headers([("A", "1")]) == Headers([("A", "1")])
        assert Headers([("A", "1")]) != Headers([("A", "2")])


class TestRequestResponse:
    def test_request_referrer_property(self):
        request = Request(
            parse_url("https://t.com/px"),
            headers=Headers([("Referer", "https://site.com/")]),
        )
        assert request.referrer == "https://site.com/"

    def test_request_cookie_header(self):
        request = Request(
            parse_url("https://t.com/px"), headers=Headers([("Cookie", "a=1")])
        )
        assert request.cookie_header == "a=1"

    def test_response_ok_range(self):
        url = parse_url("https://t.com/")
        assert Response(url, 200).ok
        assert Response(url, 204).ok
        assert not Response(url, 404).ok
        assert not Response(url, 302).ok

    def test_redirect_detection(self):
        url = parse_url("https://t.com/")
        response = Response(url, 302, Headers([("Location", "https://b.com/s")]))
        assert response.is_redirect
        assert response.location == "https://b.com/s"

    def test_set_cookie_headers(self):
        url = parse_url("https://t.com/")
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        response = Response(url, 200, headers)
        assert response.set_cookie_headers == ["a=1", "b=2"]

    def test_reason_phrases(self):
        url = parse_url("https://t.com/")
        assert Response(url, 451).reason == "Unavailable For Legal Reasons"
        assert Response(url, 299).reason == "Unknown"

    def test_default_content_type(self):
        assert Response(parse_url("https://t.com/"), 200).content_type == "text/html"
