"""Tests for §4.2(3) attribution and §4.2.1-3 ecosystem comparisons."""

import pytest

from repro.blocklists.disconnect import DisconnectEntry, DisconnectList
from repro.core.attribution import attribute_organizations
from repro.net.tls import Certificate


class TestAttributionUnit:
    def setup_method(self):
        self.disconnect = DisconnectList([
            DisconnectEntry("Alphabet", "advertising", ("doubleclick.net",)),
        ])
        self.certs = {
            "exoclick.com": Certificate("exoclick.com",
                                        subject_o="ExoClick S.L."),
            "dvonly.com": Certificate("dvonly.com", subject_o="dvonly.com"),
        }
        self.whois = {"whoisonly.net": "Whois Media Ltd"}

    def attribute(self, fqdns):
        return attribute_organizations(
            fqdns,
            disconnect=self.disconnect,
            cert_lookup=self.certs.get,
            whois_lookup=self.whois.get,
        )

    def test_disconnect_preferred(self):
        result = self.attribute(["ads.doubleclick.net"])
        assert result.organization_of["ads.doubleclick.net"] == "Alphabet"
        assert "ads.doubleclick.net" in result.via_disconnect

    def test_certificate_fallback(self):
        result = self.attribute(["exoclick.com"])
        assert result.organization_of["exoclick.com"] == "ExoClick S.L."
        assert "exoclick.com" in result.via_certificate

    def test_dv_certificate_rejected(self):
        # Subject repeating the domain carries no organization info.
        result = self.attribute(["dvonly.com"])
        assert "dvonly.com" in result.unattributed

    def test_whois_fallback(self):
        result = self.attribute(["whoisonly.net"])
        assert result.organization_of["whoisonly.net"] == "Whois Media Ltd"
        assert "whoisonly.net" in result.via_whois

    def test_unknown_unattributed(self):
        result = self.attribute(["mystery.party"])
        assert "mystery.party" in result.unattributed
        assert result.attributed_fraction() == 0.0

    def test_domains_of_organization(self):
        result = self.attribute(["ads.doubleclick.net", "exoclick.com"])
        assert result.domains_of("Alphabet") == {"ads.doubleclick.net"}


class TestAttributionIntegration:
    def test_disconnect_alone_resolves_few_orgs(self, study):
        """§4.2(3): Disconnect alone is incomplete; certs/WHOIS complete it."""
        attribution = study.porn_attribution()
        disconnect_orgs = attribution.disconnect_only_organizations
        assert len(disconnect_orgs) < len(attribution.organizations)

    def test_ground_truth_organizations_recovered(self, universe, study):
        attribution = study.porn_attribution()
        for fqdn, organization in list(
                attribution.organization_of.items())[:50]:
            from repro.net.url import registrable_domain

            service = universe.services.get(registrable_domain(fqdn))
            if service is None:
                continue
            truth = {service.organization, service.cert_org}
            assert organization in truth


class TestEcosystemComparison:
    def test_regular_web_has_more_third_parties(self, study):
        table = study.table2()
        assert table.regular_third_party > table.porn_third_party

    def test_porn_ats_density_higher(self, study):
        """§4.2.1: ATSes are denser/more diverse in porn than regular web."""
        table = study.table2()
        assert table.porn_ats_fraction > 2 * table.regular_ats_fraction

    def test_intersection_small(self, study):
        table = study.table2()
        assert table.fqdn_intersection < 0.35 * table.porn_third_party

    def test_table3_unpopular_tiers_have_unique_tails(self, study):
        """§4.2.2: the long tail concentrates in unpopular tiers."""
        table = study.table3()
        tail = table.rows[2].third_party_unique + table.rows[3].third_party_unique
        head = table.rows[0].third_party_unique + table.rows[1].third_party_unique
        assert tail > head

    def test_all_tier_core_is_small(self, study):
        table = study.table3()
        assert 0.0 < table.all_tier_fraction < 0.15

    def test_exoclick_prevalent_in_porn_only(self, universe, study):
        fig3 = study.figure3(top_n=19)
        exo = next((entry for entry in fig3
                    if "ExoClick" in entry.organization), None)
        if exo is None:
            pytest.skip("ExoClick below top-19 at this scale")
        assert exo.porn_fraction > 0.1
        assert exo.regular_fraction < 0.01

    def test_alphabet_prevalent_in_both(self, study):
        fig3 = study.figure3(top_n=5)
        alphabet = next((entry for entry in fig3
                         if entry.organization == "Alphabet"), None)
        assert alphabet is not None
        assert alphabet.porn_fraction > 0.3
        assert alphabet.regular_fraction > 0.3
