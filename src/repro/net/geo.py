"""IP address allocation, geo-IP lookup, and vantage points.

Section 6 of the paper crawls from six countries (Spain, the USA, the UK,
Russia, India, and Singapore) through commercial VPNs.  Section 5.1.1 also
finds cookies that embed the client's IP address and approximate geo-IP
coordinates.  Both require a consistent model of client addresses and a
geo-IP database, provided here.

Addresses live in a per-country /8 so country attribution is a pure prefix
lookup, mimicking a MaxMind-style database with deliberately coarse
coordinates (geo-IP is city-level at best in reality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "COUNTRIES",
    "Country",
    "GeoIPDatabase",
    "IPAllocator",
    "VantagePoint",
    "DEFAULT_VANTAGE_POINTS",
]


@dataclass(frozen=True)
class Country:
    """A jurisdiction the study crawls from or reasons about."""

    code: str
    name: str
    prefix: int  # first octet of the country's /8
    latitude: float
    longitude: float
    in_eu: bool = False
    #: Digital Economy Act-style age-verification mandate in force.
    age_verification_law: bool = False
    #: Pornhub-style passport/social-login mandate (Russia, §2.1).
    social_login_mandate: bool = False


COUNTRIES: Dict[str, Country] = {
    "ES": Country("ES", "Spain", 31, 40.4, -3.7, in_eu=True),
    "US": Country("US", "United States", 23, 38.9, -77.0),
    "UK": Country("UK", "United Kingdom", 51, 51.5, -0.1, age_verification_law=True),
    "RU": Country("RU", "Russia", 77, 55.7, 37.6, social_login_mandate=True),
    "IN": Country("IN", "India", 59, 28.6, 77.2),
    "SG": Country("SG", "Singapore", 119, 1.35, 103.8),
    "DE": Country("DE", "Germany", 46, 52.5, 13.4, in_eu=True),
    "NL": Country("NL", "Netherlands", 62, 52.4, 4.9, in_eu=True),
}


class IPAllocator:
    """Deterministically allocates IPv4 addresses inside country prefixes."""

    def __init__(self) -> None:
        self._next_host: Dict[str, int] = {}

    def allocate(self, country_code: str = "US") -> str:
        """Allocate the next unused address in the country's /8."""
        country = COUNTRIES.get(country_code)
        if country is None:
            raise KeyError(f"unknown country code: {country_code!r}")
        index = self._next_host.get(country_code, 0)
        self._next_host[country_code] = index + 1
        # Skip .0 and .255 in the final octet for realism.
        third, fourth = divmod(index, 254)
        second, third = divmod(third, 256)
        if second > 255:
            raise RuntimeError(f"address space exhausted for {country_code}")
        return f"{country.prefix}.{second}.{third}.{fourth + 1}"


class GeoIPDatabase:
    """MaxMind-style lookup: address -> country and coarse coordinates."""

    def __init__(self, countries: Optional[Dict[str, Country]] = None) -> None:
        self._by_prefix: Dict[int, Country] = {}
        for country in (countries or COUNTRIES).values():
            self._by_prefix[country.prefix] = country

    def country_of(self, address: str) -> Optional[Country]:
        try:
            prefix = int(address.split(".", 1)[0])
        except (ValueError, IndexError):
            return None
        return self._by_prefix.get(prefix)

    def coordinates_of(self, address: str) -> Optional[Tuple[float, float]]:
        """Approximate (lat, lon) — country centroid, like a coarse geo-IP DB."""
        country = self.country_of(address)
        if country is None:
            return None
        return (country.latitude, country.longitude)


@dataclass(frozen=True)
class VantagePoint:
    """A crawl origin: a client IP in some jurisdiction.

    ``via_vpn`` is informational — the paper used NordVPN/PrivateVPN for all
    non-Spanish vantage points.
    """

    country_code: str
    client_ip: str
    via_vpn: bool = True
    label: str = ""

    @property
    def country(self) -> Country:
        return COUNTRIES[self.country_code]

    @property
    def in_eu(self) -> bool:
        return self.country.in_eu

    def __str__(self) -> str:
        return self.label or f"{self.country_code} ({self.client_ip})"


def default_vantage_points() -> List[VantagePoint]:
    """The six vantage points used throughout the paper's Section 6."""
    allocator = IPAllocator()
    points = []
    for code, via_vpn in [
        ("ES", False),  # the physical machine in Spain
        ("US", True),
        ("UK", True),
        ("RU", True),
        ("IN", True),
        ("SG", True),
    ]:
        points.append(
            VantagePoint(code, allocator.allocate(code), via_vpn=via_vpn, label=code)
        )
    return points


DEFAULT_VANTAGE_POINTS: List[VantagePoint] = default_vantage_points()
