"""The Selenium-style interaction crawler (§3.1, §7.2, §7.3).

Separate from the OpenWPM crawler to avoid instrumentation bias, this
crawler *interacts*: it detects age-verification interstitials with the
paper's keyword + parent/grandparent DOM verification, clicks through
them, and fetches privacy policies found by multilingual link matching.
It also records the account/premium cues used for §4.1's business-model
classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..browser.browser import Browser
from ..html.dom import Element
from ..html.parser import parse_html
from ..html.query import links
from ..net.geo import VantagePoint
from ..net.url import URL, parse_url
from ..text.langs import (
    ACCOUNT_KEYWORDS,
    AGE_GATE_BUTTON_KEYWORDS,
    AGE_WARNING_PHRASES,
    PREMIUM_KEYWORDS,
    PRIVACY_LINK_KEYWORDS,
    all_keywords,
)
from ..webgen.universe import Universe
from .vpn import client_for

__all__ = [
    "AgeGateObservation",
    "PolicyObservation",
    "SiteInspection",
    "SeleniumCrawler",
    "find_age_gate_button",
]

_CLICKABLE_TAGS = frozenset({"button", "a", "input"})

_AFFIRMATIVE = all_keywords(AGE_GATE_BUTTON_KEYWORDS)
_WARNINGS = all_keywords(AGE_WARNING_PHRASES)
_PRIVACY_WORDS = all_keywords(PRIVACY_LINK_KEYWORDS)
_ACCOUNT_WORDS = all_keywords(ACCOUNT_KEYWORDS)
_PREMIUM_WORDS = all_keywords(PREMIUM_KEYWORDS)


@dataclass(frozen=True)
class AgeGateObservation:
    """What the crawler saw (and managed) regarding age verification."""

    detected: bool
    button_text: str = ""
    clicked: bool = False
    bypassed: bool = False
    #: True when the gate demands an external (social) login — the only
    #: mechanism the paper would call *verifiable*.
    requires_login: bool = False


@dataclass(frozen=True)
class PolicyObservation:
    """Outcome of the privacy-policy fetch."""

    link_found: bool
    url: str = ""
    status: Optional[int] = None
    text: str = ""

    @property
    def fetched_ok(self) -> bool:
        return self.status is not None and 200 <= self.status < 300

    @property
    def letter_count(self) -> int:
        return len(self.text)


@dataclass(frozen=True)
class SiteInspection:
    """Everything the interaction crawler extracts from one site."""

    domain: str
    reachable: bool
    age_gate: AgeGateObservation = AgeGateObservation(detected=False)
    policy: PolicyObservation = PolicyObservation(link_found=False)
    has_account_option: bool = False
    has_premium_cue: bool = False
    has_payment_cue: bool = False
    rta_labeled: bool = False


def _ancestor_context(element: Element) -> str:
    """Text around the candidate button (the paper's verification step).

    The context is the parent and grandparent *within the overlay* plus the
    nearest floating ancestor's own text.  Stopping at the overlay keeps
    page-body vocabulary ("adults only" appears on every porn page) from
    validating arbitrary floating buttons — e.g. a cookie banner's Accept.
    """
    fragments: List[str] = []
    overlay = _nearest_floating_ancestor(element)
    for ancestor, _ in zip(element.ancestors(), range(2)):
        if ancestor.tag in ("body", "html"):
            break
        fragments.append(ancestor.text())
        if ancestor is overlay:
            break
    return " ".join(fragments).lower()


def _nearest_floating_ancestor(element: Element) -> Optional[Element]:
    if element.is_floating:
        return element
    for ancestor in element.ancestors():
        if ancestor.is_floating:
            return ancestor
    return None


def _has_floating_ancestor(element: Element) -> bool:
    return _nearest_floating_ancestor(element) is not None


def find_age_gate_button(document: Element) -> Optional[Element]:
    """Locate an age-gate affirmative control.

    A candidate must (1) be clickable, (2) carry an affirmative keyword in
    its own text, and (3) sit inside a floating overlay whose parent or
    grandparent text mentions an age warning.  Step (3) removes the false
    positives that plain keyword matching produces — e.g. body text that
    happens to contain the word "enter".
    """
    for element in document.iter():
        if element.tag not in _CLICKABLE_TAGS:
            continue
        text = element.own_text().lower()
        if element.tag == "input":
            text = (element.get("value") or "").lower()
        if not text or not any(keyword in text for keyword in _AFFIRMATIVE):
            continue
        if not _has_floating_ancestor(element):
            continue
        context = _ancestor_context(element)
        if any(phrase in context for phrase in _WARNINGS):
            return element
    return None


class SeleniumCrawler:
    """Interacts with each site from one vantage point (fresh session per site)."""

    def __init__(self, universe: Universe, vantage: VantagePoint,
                 *, epoch: str = "crawl") -> None:
        self.universe = universe
        self.vantage = vantage
        self.client = client_for(vantage, epoch=epoch)

    # ------------------------------------------------------------------

    def inspect(self, domain: str) -> SiteInspection:
        """Full interaction pass over one site's landing page."""
        browser = Browser(self.universe, self.client)
        visit = browser.visit(domain)
        if not visit.success:
            return SiteInspection(domain, reachable=False)
        document = parse_html(visit.html)

        age_gate = self._handle_age_gate(browser, domain, document)
        policy = self._fetch_policy(browser, domain, document, visit.https)
        page_text = document.text().lower()
        has_account = any(word in page_text for word in _ACCOUNT_WORDS)
        has_premium = any(word in page_text for word in _PREMIUM_WORDS)
        has_payment = any(
            marker in page_text for marker in ("$", "billing", "/month", "payment")
        )
        rta = 'content="rta-5042' in visit.html.lower()
        return SiteInspection(
            domain,
            reachable=True,
            age_gate=age_gate,
            policy=policy,
            has_account_option=has_account,
            has_premium_cue=has_premium,
            has_payment_cue=has_payment,
            rta_labeled=rta,
        )

    # ------------------------------------------------------------------

    def _handle_age_gate(
        self, browser: Browser, domain: str, document: Element
    ) -> AgeGateObservation:
        button = find_age_gate_button(document)
        if button is None:
            return AgeGateObservation(detected=False)
        requires_login = (button.get("data-gate") == "social") or (
            "социальн" in button.own_text().lower()
        )
        # "Click": reload the landing page with the consent token, the way
        # the gate's JavaScript would navigate.
        after = browser.visit(domain, path="/?verified=1")
        bypassed = False
        if after.success:
            after_doc = parse_html(after.html)
            bypassed = find_age_gate_button(after_doc) is None
        return AgeGateObservation(
            detected=True,
            button_text=button.own_text() or (button.get("value") or ""),
            clicked=True,
            bypassed=bypassed,
            requires_login=requires_login,
        )

    def _fetch_policy(
        self, browser: Browser, domain: str, document: Element, https: bool
    ) -> PolicyObservation:
        link = self._find_policy_link(document)
        if link is None:
            return PolicyObservation(link_found=False)
        href = link.get("href") or ""
        scheme = "https" if https else "http"
        if href.startswith("/"):
            url = URL(scheme, domain, None, href)
        else:
            try:
                url = parse_url(href)
            except Exception:
                return PolicyObservation(link_found=False)
        response = browser.fetch(url, page_domain=domain, resource_type="document",
                                 referrer=f"{scheme}://{domain}/")
        if response is None:
            return PolicyObservation(link_found=True, url=str(url), status=None)
        text = parse_html(response.body).text()
        return PolicyObservation(link_found=True, url=str(url),
                                 status=response.status, text=text)

    @staticmethod
    def _find_policy_link(document: Element) -> Optional[Element]:
        for anchor in links(document):
            text = anchor.text().lower()
            if any(word in text for word in _PRIVACY_WORDS):
                return anchor
        return None
