"""Networking substrate: URLs, HTTP, cookies, TLS, DNS, and geo-IP."""

from .cookies import Cookie, CookieJar, parse_set_cookie
from .dns import DNSError, DNSResolver, NXDomain
from .geo import (
    COUNTRIES,
    DEFAULT_VANTAGE_POINTS,
    Country,
    GeoIPDatabase,
    IPAllocator,
    VantagePoint,
)
from .http import Headers, Request, Response
from .whois import PRIVACY_REDACTED, WhoisRecord, WhoisRegistry
from .tls import Certificate, certificate_matches_host, share_organization
from .url import (
    PUBLIC_SUFFIXES,
    URL,
    URLError,
    fqdn_of,
    is_subdomain_of,
    parse_url,
    registrable_domain,
)

__all__ = [
    "Cookie",
    "CookieJar",
    "parse_set_cookie",
    "DNSError",
    "DNSResolver",
    "NXDomain",
    "COUNTRIES",
    "DEFAULT_VANTAGE_POINTS",
    "Country",
    "GeoIPDatabase",
    "IPAllocator",
    "VantagePoint",
    "Headers",
    "Request",
    "Response",
    "PRIVACY_REDACTED",
    "WhoisRecord",
    "WhoisRegistry",
    "Certificate",
    "certificate_matches_host",
    "share_organization",
    "PUBLIC_SUFFIXES",
    "URL",
    "URLError",
    "fqdn_of",
    "is_subdomain_of",
    "parse_url",
    "registrable_domain",
]
