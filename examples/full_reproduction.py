#!/usr/bin/env python3
"""The whole paper in one script: every table and figure, in order.

At scale 1.0 this reproduces the published study end to end (6,843-site
corpus, six vantage points); expect a few minutes of runtime.

Run:  python examples/full_reproduction.py [scale]
"""

import sys
import time

from repro import Study, UniverseConfig
from repro.reporting import (
    figure1_ascii,
    figure3_ascii,
    figure4_ascii,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
    render_table7,
    render_table8,
)


def heading(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    started = time.time()
    study = Study.build(UniverseConfig(scale=scale))

    heading("Section 3 — corpus compilation")
    candidates, sanitized = study.corpus()
    by_source = candidates.count_by_source()
    print(f"{len(candidates)} candidates "
          f"(aggregators {by_source.get('aggregator', 0)}, "
          f"Alexa category {by_source.get('alexa_category', 0)}, "
          f"keyword search {by_source.get('keyword', 0)})")
    print(f"{sanitized.false_positives} false positives removed "
          f"({len(sanitized.unresponsive)} unresponsive, "
          f"{len(sanitized.non_adult)} not pornographic)")
    print(f"sanitized corpus: {len(sanitized.corpus)} websites")

    heading("Figure 1 — popularity throughout 2018")
    print(figure1_ascii(study.popularity()))

    heading("Section 4.1 — Table 1: website owners")
    print(render_table1(study.owners(), study.best_rank, top_n=15))
    business = study.business_models()
    print(f"\nsubscriptions: {business.subscription_fraction:.0%} of sites; "
          f"{business.paid_fraction_of_subscriptions:.0%} of those paid")

    heading("Section 4.2 — Table 2: the third-party ecosystem")
    print(render_table2(study.table2()))
    print(f"\n{study.table2().porn_only_ats_fraction:.0%} of porn ATSes never "
          "appear in the regular web")

    heading("Section 4.2.2 — Table 3: the long tail")
    print(render_table3(study.table3()))

    heading("Section 4.2.3 — Figure 3: organizations")
    print(figure3_ascii(study.figure3()))

    heading("Section 5.1.1 — Table 4: HTTP cookies")
    stats = study.cookie_stats()
    print(f"{stats.sites_with_cookies_fraction:.0%} of sites install cookies; "
          f"{stats.id_cookies} identifier cookies "
          f"({stats.third_party_id_cookies} third-party); "
          f"{stats.ip_cookies} embed the client IP")
    print(render_table4(stats))

    heading("Section 5.1.2 — Figure 4: cookie syncing")
    print(figure4_ascii(study.cookie_sync(),
                        minimum=max(2, int(75 * scale))))

    heading("Section 5.1.3 — fingerprinting")
    fingerprinting = study.fingerprinting()
    print(f"strict canvas criteria: {len(fingerprinting.englehardt_scripts)} "
          f"scripts; measureText rule: {len(fingerprinting.canvas_scripts)} "
          f"scripts on {len(fingerprinting.canvas_sites)} sites "
          f"({fingerprinting.unlisted_canvas_fraction():.0%} unlisted)")

    heading("Section 5.2 — Table 6: HTTPS")
    print(render_table6(study.https_report()))

    heading("Section 5.3 — malware")
    malware = study.malware()
    print(f"{len(malware.malicious_sites)} malicious porn sites; "
          f"{len(malware.malicious_third_parties)} malicious third parties "
          f"on {malware.affected_site_count} sites; miners: "
          f"{', '.join(sorted(malware.miner_services))} "
          f"on {len(malware.miner_sites)} sites")

    heading("Section 6 — Table 7: geography")
    print(render_table7(study.geography()))

    heading("Section 7.1 — Table 8: cookie banners")
    print(render_table8(study.banners("ES"), study.banners("US")))

    heading("Section 7.2 — age verification (top-50, four countries)")
    age = study.age_verification()
    for country, summary in sorted(age.by_country.items()):
        print(f"  {country}: {len(summary.gated_sites)} gated / "
              f"{len(summary.bypassed_sites)} bypassed / "
              f"{len(summary.login_required_sites)} login-based")

    heading("Section 7.3 — privacy policies")
    policies = study.policies()
    print(f"{policies.presence_fraction:.0%} of sites have a policy; "
          f"{policies.gdpr_fraction:.0%} mention the GDPR; "
          f"{policies.similar_pair_fraction:.0%} of pairs similar (>0.5); "
          f"{len(policies.full_list_sites)} site(s) disclose the full "
          "third-party list")

    print(f"\ncompleted in {time.time() - started:.0f}s at scale {scale}")


if __name__ == "__main__":
    main()
