"""Epoch evolution and incremental delta crawls.

Pins the contracts the longitudinal pipeline rests on:

* :func:`evolve_universe` is a pure function of ``(seed, epoch)`` —
  evolving twice yields identical content hashes — and
  ``build_universe(epoch=N)`` reaches the same universe by chaining
  evolution steps, so the lineage fast path works cross-process;
* the recorded lineage is *conservative*: every site it omits provably
  hashes identically across the epochs (a splice is never wrong);
* a delta crawl against the previous epoch's store is byte-identical to
  a full crawl of the evolved universe — hydrated and streaming alike —
  and its manifest records the spliced/crawled/divergence stats;
* when preconditions fail (no baseline config, same epoch) the delta
  layer degrades to a normal crawl without writing anything first;
* ``jar_sensitive`` universes stop splicing at the first divergence but
  stay byte-identical;
* service-layer plumbing: ``JobSpec`` epoch/delta validation and the
  ``-eN`` sibling-store naming;
* ``repro trend`` renders the longitudinal sections from per-epoch
  stores.
"""

import pytest

from repro import Study
from repro.__main__ import main
from repro.crawler import OpenWPMCrawler
from repro.datastore import CrawlStore, stored_crawl
from repro.reporting import trend_report
from repro.service.jobs import JobSpec, epoch_store_path
from repro.webgen.builder import build_universe
from repro.webgen.evolve import ContentHashIndex, evolve_universe


@pytest.fixture(scope="module")
def evolved(universe):
    return evolve_universe(universe)


@pytest.fixture(scope="module")
def stores_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("epochs")


@pytest.fixture(scope="module")
def epoch0_store(stores_dir, universe):
    """Epoch 0 crawled through a Study, so store-only reopens line up."""
    path = str(stores_dir / "e0.db")
    study = Study(universe, store=path)
    study.porn_log()
    study.regular_log()
    return path


@pytest.fixture(scope="module")
def epoch1_store(stores_dir, evolved, epoch0_store):
    """Epoch 1 delta-crawled against epoch 0 via ``baseline_store``."""
    path = str(stores_dir / "e1.db")
    study = Study(evolved, store=path, baseline_store=epoch0_store)
    study.porn_log()
    study.regular_log()
    return path


def _all_domains(universe):
    return list(universe.porn_sites) + list(universe.regular_sites)


class TestEvolution:
    def test_evolve_is_deterministic(self, universe, evolved):
        again = evolve_universe(universe)
        assert again.content_changed_since == evolved.content_changed_since
        index_a = ContentHashIndex(evolved)
        index_b = ContentHashIndex(again)
        for domain in _all_domains(universe):
            assert index_a.hash_of(domain) == index_b.hash_of(domain)

    def test_corpus_is_invariant(self, universe, evolved):
        assert evolved.config.epoch == universe.config.epoch + 1
        assert set(evolved.porn_sites) == set(universe.porn_sites)
        assert set(evolved.regular_sites) == set(universe.regular_sites)

    def test_builder_epoch_chains_evolution(self, universe, evolved):
        import dataclasses

        built = build_universe(
            dataclasses.replace(universe.config, epoch=1), lazy=True)
        assert built.changed_domains_since(0) == \
            evolved.changed_domains_since(0)
        built_index = ContentHashIndex(built)
        evolved_index = ContentHashIndex(evolved)
        for domain in _all_domains(universe):
            assert built_index.hash_of(domain) == \
                evolved_index.hash_of(domain)

    def test_lineage_is_conservative(self, universe, evolved):
        """Every site the lineage omits must hash identically — the
        direction splice correctness depends on.  (The converse may not
        hold: a listed site whose rotation was a no-op is allowed.)"""
        changed = evolved.changed_domains_since(0)
        assert changed  # some churn happened
        domains = _all_domains(universe)
        assert len(changed) < len(domains)  # and most sites did not change
        base_index = ContentHashIndex(universe)
        next_index = ContentHashIndex(evolved)
        for domain in domains:
            if domain not in changed:
                assert base_index.hash_of(domain) == \
                    next_index.hash_of(domain), domain
        assert evolved.changed_domains_since(99) is None  # unknown base


class TestDeltaCrawl:
    def test_delta_matches_full_crawl(self, epoch1_store, evolved,
                                      vantage_points, universe):
        """The delta-crawled porn run is byte-identical to an in-memory
        full crawl of the evolved universe, and some sites spliced."""
        full = OpenWPMCrawler(
            evolved, vantage_points.point("ES"), keep_html=True,
        ).crawl(Study(evolved).corpus_domains())
        with CrawlStore(epoch1_store) as store:
            manifest = next(m for m in store.run_manifests()
                            if m.kind == "openwpm:porn")
            spliced_log = store.load_log(manifest.run_id)
            delta = manifest.stats["delta"]
        assert spliced_log == full
        assert spliced_log._seq == full._seq
        assert delta["spliced"] > 0 and delta["crawled"] > 0
        assert delta["spliced"] + delta["crawled"] == manifest.total_sites
        assert delta["divergence_index"] is not None

    def test_streaming_delta_matches_hydrated(self, tmp_path, evolved,
                                              epoch0_store, vantage_points,
                                              universe):
        """``hydrate=False`` splices through the trim writer; the rows
        read back through cursors equal the hydrated delta crawl."""
        domains = Study(evolved).corpus_domains()
        vantage = vantage_points.point("ES")
        with CrawlStore(epoch0_store) as baseline, \
                CrawlStore(str(tmp_path / "stream.db")) as store:
            result = stored_crawl(store, evolved, vantage, "openwpm:porn",
                                  domains, baseline=baseline,
                                  hydrate=False)
            assert result is None
            manifest = store.run_manifests()[0]
            assert manifest.stats["delta"]["spliced"] > 0
            streamed = store.load_log(manifest.run_id)
        hydrated = OpenWPMCrawler(evolved, vantage,
                                  keep_html=True).crawl(domains)
        assert streamed == hydrated
        assert streamed._seq == hydrated._seq

    def test_degrades_without_usable_baseline(self, tmp_path, universe,
                                              vantage_points,
                                              crawlable_porn):
        """An empty baseline, or one at the same epoch, means a normal
        crawl: same result, no ``delta`` stats block."""
        domains = crawlable_porn[:4]
        vantage = vantage_points.point("ES")
        reference = OpenWPMCrawler(universe, vantage).crawl(domains)
        with CrawlStore(str(tmp_path / "empty.db")) as empty, \
                CrawlStore(str(tmp_path / "a.db")) as store:
            log = stored_crawl(store, universe, vantage, "openwpm:porn",
                               domains, baseline=empty)
            assert log == reference
            assert "delta" not in store.run_manifests()[0].stats
        # Baseline at the *same* epoch: nothing to delta against.
        with CrawlStore(str(tmp_path / "a.db")) as same_epoch, \
                CrawlStore(str(tmp_path / "b.db")) as store:
            log = stored_crawl(store, universe, vantage, "openwpm:porn",
                               domains, baseline=same_epoch)
            assert log == reference
            assert "delta" not in store.run_manifests()[0].stats

    def test_jar_sensitive_stops_at_divergence(self, tmp_path, evolved,
                                               epoch0_store, vantage_points,
                                               monkeypatch, universe):
        """With ``jar_sensitive`` set, no site after the first real visit
        is spliced — and the result is still byte-identical."""
        monkeypatch.setattr(evolved, "jar_sensitive", True, raising=False)
        domains = Study(evolved).corpus_domains()
        vantage = vantage_points.point("ES")
        with CrawlStore(epoch0_store) as baseline, \
                CrawlStore(str(tmp_path / "jar.db")) as store:
            log = stored_crawl(store, evolved, vantage, "openwpm:porn",
                               domains, baseline=baseline)
            delta = store.run_manifests()[0].stats["delta"]
        assert delta["divergence_index"] is not None
        # Everything before the divergence spliced; nothing after did.
        assert delta["spliced"] == delta["divergence_index"]
        assert delta["spliced"] + delta["crawled"] == len(domains)
        full = OpenWPMCrawler(evolved, vantage,
                              keep_html=True).crawl(domains)
        assert log == full


class TestServicePlumbing:
    def test_epoch_store_path(self):
        assert epoch_store_path("/x/store.db", 0) == "/x/store.db"
        assert epoch_store_path("/x/store.db", 3) == "/x/store.db-e3"

    def test_epoch_job_routes_to_sibling_store(self, tmp_path):
        """An epoch job lands in the ``-eN`` sibling store; ``delta``
        splices from the previous epoch's sibling when it exists and
        publishes ``delta_baseline_missing`` (then runs a full crawl)
        when it does not."""
        import os

        from repro.service.jobs import JobManager, JobState

        def drain(job):
            kinds = []
            for event in job.events.subscribe(heartbeat=120):
                assert event is not None, "job stalled"
                kinds.append(event.kind)
            return kinds

        store = str(tmp_path / "svc.db")
        manager = JobManager(store, workers=1)
        manager.start()
        try:
            base = manager.submit(JobSpec(seed=3, scale=0.02,
                                          analyses=("https",)))
            drain(base)
            assert base.state == JobState.DONE

            delta = manager.submit(JobSpec(seed=3, scale=0.02, epoch=1,
                                           churn=0.05, delta=True,
                                           analyses=("https",)))
            kinds = drain(delta)
            assert delta.state == JobState.DONE
            assert "site_spliced" in kinds
            assert "delta_baseline_missing" not in kinds
            assert os.path.exists(store + "-e1")
            with CrawlStore(store + "-e1") as sibling:
                stats = [m.stats.get("delta") for m in
                         sibling.run_manifests()]
            assert any(s and s["spliced"] > 0 for s in stats)

            orphan = manager.submit(JobSpec(seed=3, scale=0.02, epoch=3,
                                            churn=0.05, delta=True,
                                            analyses=("https",)))
            kinds = drain(orphan)
            assert orphan.state == JobState.DONE  # degraded, not failed
            assert "delta_baseline_missing" in kinds
            assert "site_spliced" not in kinds
            assert os.path.exists(store + "-e3")
        finally:
            manager.stop()

    def test_jobspec_validation(self):
        spec = JobSpec(epoch=2, churn=0.2, delta=True)
        assert JobSpec.from_json(spec.to_json()) == spec
        # Old specs without the new fields still load.
        legacy = JobSpec.from_json(JobSpec().to_json())
        assert (legacy.epoch, legacy.churn, legacy.delta) == (0, 0.1, False)
        with pytest.raises(ValueError):
            JobSpec(epoch=-1)
        with pytest.raises(ValueError):
            JobSpec(delta=True)  # delta needs a prior epoch to splice from


class TestTrend:
    def test_trend_report_renders_sorted(self, universe, evolved, study):
        text = trend_report([(1, Study(evolved)), (0, study)])
        assert "== trend: tracker prevalence ==" in text
        assert "== trend: HTTPS adoption ==" in text
        assert "== trend: top 5 organizations ==" in text
        for line in text.splitlines():
            if line.startswith("epoch 0:"):
                break
        assert text.index("epoch 0:") < text.index("epoch 1:")

    def test_cli_trend(self, epoch0_store, epoch1_store, capsys):
        assert main(["trend", epoch1_store, epoch0_store]) == 0
        out = capsys.readouterr().out
        assert "== trend: tracker prevalence ==" in out
        assert "== trend: HTTPS adoption ==" in out
        # Rows come out epoch-sorted regardless of argument order.
        assert out.index("epoch 0:") < out.index("epoch 1:")

    def test_cli_trend_rejects_duplicate_epochs(self, epoch0_store, capsys):
        assert main(["trend", epoch0_store, epoch0_store]) != 0
