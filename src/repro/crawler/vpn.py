"""Vantage-point management (the paper's VPN setup, §3.1).

The study crawls from a physical machine in Spain plus NordVPN /
PrivateVPN exits in the US, UK, Russia, India, and Singapore.  Here a
vantage point is simply a client context whose IP falls in the right
country prefix; the synthetic servers geo-discriminate on it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..net.geo import DEFAULT_VANTAGE_POINTS, VantagePoint
from ..webgen.universe import ClientContext

__all__ = ["VantagePointManager", "client_for"]


def client_for(point: VantagePoint, *, epoch: str = "crawl") -> ClientContext:
    """Build the browser-facing client context for a vantage point."""
    return ClientContext(country_code=point.country_code,
                         client_ip=point.client_ip, epoch=epoch)


class VantagePointManager:
    """Iterates the study's vantage points.

    The Spanish vantage point is the physical machine (no VPN); the rest
    tunnel through commercial VPN exits.
    """

    def __init__(self, points: Optional[Sequence[VantagePoint]] = None) -> None:
        self.points: List[VantagePoint] = list(points or DEFAULT_VANTAGE_POINTS)
        by_country = {point.country_code: point for point in self.points}
        if len(by_country) != len(self.points):
            raise ValueError("duplicate vantage-point country codes")
        self._by_country: Dict[str, VantagePoint] = by_country

    def __iter__(self) -> Iterator[VantagePoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def country_codes(self) -> List[str]:
        return [point.country_code for point in self.points]

    def point(self, country_code: str) -> VantagePoint:
        try:
            return self._by_country[country_code]
        except KeyError:
            raise KeyError(f"no vantage point in {country_code!r}") from None

    def client(self, country_code: str, *, epoch: str = "crawl") -> ClientContext:
        return client_for(self.point(country_code), epoch=epoch)

    @property
    def home(self) -> VantagePoint:
        """The physical (non-VPN) vantage point, if any; else the first."""
        for point in self.points:
            if not point.via_vpn:
                return point
        return self.points[0]
