"""Rendering of the paper's tables and figures as text / CSV."""

from .figures import (
    bar,
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure4_ascii,
    figure4_edges_csv,
)
from .sections import (
    FIGURE_SECTIONS,
    full_report,
    render_figure,
    render_section,
    report_sections,
    section_names,
)
from .trends import trend_report, trend_sections
from .tables import (
    format_table,
    render_shard_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
)

__all__ = [
    "FIGURE_SECTIONS",
    "bar",
    "full_report",
    "render_figure",
    "render_section",
    "report_sections",
    "section_names",
    "figure1_ascii",
    "figure1_csv",
    "figure3_ascii",
    "figure3_csv",
    "figure4_ascii",
    "figure4_edges_csv",
    "format_table",
    "render_shard_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_table7",
    "render_table8",
    "trend_report",
    "trend_sections",
]
