"""Table 5 / §5.1.3 — canvas fingerprinting and WebRTC third parties."""

from conftest import scaled

from repro.core.fingerprinting import analyze_fingerprinting
from repro.reporting.tables import render_table5


def test_table5_fingerprinting(benchmark, study, paper, reporter):
    classifier = study.ats_classifier()
    js_calls = study.porn_log().js_calls
    report = benchmark.pedantic(
        lambda: analyze_fingerprinting(
            js_calls, url_blocklisted=lambda url: classifier.matches_url(url)
        ),
        rounds=1, iterations=1,
    )

    reporter.row("scripts passing strict Englehardt-Narayanan filters", 0,
                 len(report.englehardt_scripts))
    reporter.row("canvas-fingerprinting scripts (paper rule)",
                 scaled(paper.canvas_scripts), len(report.canvas_scripts))
    reporter.row("sites with canvas fingerprinting",
                 scaled(paper.canvas_sites), len(report.canvas_sites))
    reporter.row("third-party services delivering them",
                 scaled(paper.canvas_third_party_services),
                 len(report.canvas_services()))
    tp_fraction = (len(report.canvas_third_party_scripts())
                   / max(1, len(report.canvas_scripts)))
    reporter.row("fraction of scripts fetched from third parties", "74%",
                 f"{tp_fraction:.0%}")
    reporter.row("canvas scripts NOT in EasyList/EasyPrivacy", "91%",
                 f"{report.unlisted_canvas_fraction():.0%}")
    reporter.row("font-enumeration scripts (online-metrix.net)",
                 paper.font_fp_scripts, len(report.font_enumeration_scripts))
    reporter.row("WebRTC scripts", scaled(paper.webrtc_scripts),
                 len(report.webrtc_scripts))
    reporter.row("WebRTC sites", scaled(paper.webrtc_sites),
                 len(report.webrtc_sites))

    labels = study.porn_labels()
    rows = report.per_service_table(
        lambda domain: len(labels.sites_embedding(domain))
    )
    regular_bases = {
        fqdn.split(".", 1)[-1] if fqdn.count(".") > 1 else fqdn
        for fqdn in study.regular_labels().all_third_party_fqdns
    }
    reporter.text(render_table5(
        rows,
        is_ats=classifier.matches_domain,
        in_regular_web=lambda domain: domain in regular_bases,
    ))

    # The paper's headline negative + positive results.
    assert len(report.englehardt_scripts) == 0
    assert len(report.canvas_scripts) > 0
    assert report.unlisted_canvas_fraction() > 0.75
    assert 0.5 <= tp_fraction <= 0.95
