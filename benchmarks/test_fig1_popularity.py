"""Figure 1 — best/median Alexa rank and top-1M presence per site."""

from conftest import scaled

from repro.core.popularity import analyze_popularity
from repro.reporting.figures import figure1_ascii


def test_fig1_popularity(benchmark, study, paper, reporter):
    corpus = study.corpus_domains()
    report = benchmark(lambda: analyze_popularity(study.universe, corpus))

    reporter.row("sites always in top-1M", scaled(paper.always_top_1m),
                 report.always_top_1m_count)
    reporter.row("  as fraction of corpus", "16%",
                 f"{report.always_top_1m_fraction:.0%}")
    reporter.row("sites always in top-1K", paper.always_top_1k,
                 report.always_top_1k_count)
    reporter.text(figure1_ascii(report))

    assert 0.10 <= report.always_top_1m_fraction <= 0.25
    best, _, presence = report.figure1_series()
    listed = [rank for rank in best if rank]
    assert listed == sorted(listed)
    # Presence decays toward the tail of the rank ordering (Fig. 1's shape).
    n = len(presence)
    if n >= 100:
        head = sum(presence[: n // 5]) / (n // 5)
        tail = sum(presence[-n // 5:]) / (n // 5)
        assert head > tail
