"""Text rendering of the paper's tables.

Each function takes the corresponding analysis result and prints the same
rows the paper reports, for side-by-side comparison in EXPERIMENTS.md and
the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.compliance.banners import (
    BANNER_BINARY,
    BANNER_CONFIRMATION,
    BANNER_NO_OPTION,
    BANNER_OTHER,
    BannerReport,
)
from ..core.cookie_analysis import CookieStats
from ..core.ecosystem import Table2, Table3
from ..core.geodiff import GeoReport
from ..core.https_analysis import HTTPSReport
from ..core.owners import OwnerReport

__all__ = [
    "format_table",
    "render_shard_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_table7",
    "render_table8",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Monospace table with column auto-sizing."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_shard_table(infos) -> str:
    """``repro store info --shards``: one row per shard file.

    ``infos`` is any sequence of objects shaped like
    :class:`~repro.datastore.ShardInfo` (duck-typed to keep the
    reporting layer free of datastore imports).
    """
    rows = [
        (info.index, info.path, f"{info.size_bytes:,}",
         f"{info.runs:,}", f"{info.visits:,}")
        for info in infos
    ]
    total_bytes = sum(info.size_bytes for info in infos)
    total_visits = sum(info.visits for info in infos)
    rows.append(("total", f"{len(infos)} shard(s)", f"{total_bytes:,}",
                 "—", f"{total_visits:,}"))
    return format_table(("Shard", "File", "Bytes", "Runs", "Visits"), rows)


def render_table1(owners: OwnerReport, best_rank: Callable[[str], int],
                  *, top_n: int = 15) -> str:
    rows = [
        (company, size, f"{site} ({rank:,})")
        for company, size, site, rank in owners.table1(best_rank, top_n=top_n)
    ]
    return format_table(("Company", "# sites", "Most popular site (rank)"), rows)


def render_table2(table: Table2) -> str:
    rows = [
        ("Corpus size", f"{table.porn_corpus:,}", f"{table.regular_corpus:,}", "—"),
        ("First-party", f"{table.porn_first_party:,}",
         f"{table.regular_first_party:,}", "—"),
        ("Third-party", f"{table.porn_third_party:,}",
         f"{table.regular_third_party:,}", f"{table.fqdn_intersection:,}"),
        ("Third-party ATS", f"{table.porn_ats:,}", f"{table.regular_ats:,}",
         f"{table.ats_intersection:,}"),
    ]
    return format_table(
        ("Domain category", "Porn (P)", "Regular (R)", "|P ∩ R|"), rows
    )


def render_table3(table: Table3) -> str:
    rows = [
        (row.interval, f"{row.site_count:,}",
         f"{row.third_party_total:,} ({row.third_party_unique:,})")
        for row in table.rows
    ]
    return format_table(
        ("Popularity interval", "# porn websites", "Third-party domains (unique)"),
        rows,
    )


def render_table4(stats: CookieStats) -> str:
    rows = [
        (
            domain.domain,
            f"{domain.site_fraction:.0%}",
            f"{domain.cookie_count:,}",
            "yes" if domain.is_ats else "no",
            "yes" if domain.in_regular_web else "no",
            f"{domain.ip_cookie_fraction:.0%}",
        )
        for domain in stats.top_domains
    ]
    return format_table(
        ("Third-party domain", "% porn websites", "# cookies", "ATS",
         "In web ecosystem", "% cookies with user IP"),
        rows,
    )


def render_table5(
    rows: Sequence[Tuple[str, int, int, int]],
    *,
    is_ats: Callable[[str], bool],
    in_regular_web: Callable[[str], bool],
) -> str:
    formatted = [
        (
            domain,
            f"{presence:,}",
            "yes" if is_ats(domain) else "-",
            "yes" if in_regular_web(domain) else "-",
            canvas,
            webrtc,
        )
        for domain, presence, canvas, webrtc in rows
    ]
    return format_table(
        ("Domain", "Presence in porn sites", "ATS", "Regular web",
         "Canvas fingerprinting", "WebRTC"),
        formatted,
    )


def render_table6(report: HTTPSReport) -> str:
    rows = []
    for row in report.rows:
        rows.append((row.interval, f"Porn websites ({row.site_count:,})",
                     f"{row.site_https_fraction:.0%}"))
        rows.append(("", f"3rd-party services ({row.service_count:,})",
                     f"{row.service_https_fraction:.0%}"))
    return format_table(("Interval", "Feature", "HTTPS"), rows)


def render_table7(report: GeoReport) -> str:
    rows = [
        (
            row.country,
            f"{row.fqdn_count:,}",
            f"{row.web_ecosystem_fraction:.0%}",
            f"{row.unique_fqdns:,}",
            f"{row.ats_count:,}",
            f"{row.unique_ats:,}",
        )
        for row in report.rows
    ]
    rows.append(
        ("Total", f"{report.total_fqdns:,}", "—", f"{report.total_unique:,}",
         f"{report.total_ats:,}", f"{report.total_unique_ats:,}")
    )
    return format_table(
        ("Country", "FQDN", "Web ecosystem", "Unique country", "ATS",
         "Unique ATS"),
        rows,
    )


def render_table8(eu: BannerReport, us: BannerReport) -> str:
    def pct(report: BannerReport, banner_type: str) -> str:
        return f"{report.fraction(banner_type):.2%}"

    rows = [
        ("No Option", pct(eu, BANNER_NO_OPTION), pct(us, BANNER_NO_OPTION)),
        ("Confirmation", pct(eu, BANNER_CONFIRMATION), pct(us, BANNER_CONFIRMATION)),
        ("Binary", pct(eu, BANNER_BINARY), pct(us, BANNER_BINARY)),
        ("Others", pct(eu, BANNER_OTHER), pct(us, BANNER_OTHER)),
        ("Total", f"{eu.total_fraction:.2%}", f"{us.total_fraction:.2%}"),
    ]
    return format_table(("Type", "EU", "USA"), rows)
