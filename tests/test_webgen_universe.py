"""Integration tests of the generated universe and its server behavior."""

import pytest

from repro.net.http import Headers, Request
from repro.net.url import parse_url, registrable_domain
from repro.webgen import NAMED_SERVICES, UniverseConfig, build_universe
from repro.webgen.universe import (
    ClientContext,
    FetchError,
    SiteTimeoutError,
    SiteUnresponsiveError,
)

ES = ClientContext("ES", "31.0.0.1")
RU = ClientContext("RU", "77.0.0.1")


def fetch(universe, url, client=ES, referrer=None):
    headers = Headers()
    if referrer:
        headers.set("Referer", referrer)
    return universe.fetch(Request(parse_url(url), headers=headers), client)


class TestCorpusShape:
    def test_counts_scale(self, universe):
        sanitized = [s for s in universe.porn_sites.values() if s.responsive]
        config = universe.config
        assert len(sanitized) == config.scaled(config.targets.sanitized_corpus)

    def test_flagships_present(self, universe):
        assert "pornhub.com" in universe.porn_sites
        assert "xvideos.com" in universe.porn_sites
        assert universe.porn_sites["pornhub.com"].owner == "MindGeek"

    def test_flagship_rank_pinned(self, universe):
        assert universe.porn_sites["pornhub.com"].trajectory.best_rank == 22

    def test_every_operator_has_sites(self, universe):
        owners = {s.owner for s in universe.porn_sites.values() if s.owner}
        assert "MindGeek" in owners
        assert "Gamma Entertainment" in owners

    def test_reference_corpus_excludes_keyword_traps(self, universe):
        for domain in universe.reference_regular_corpus():
            assert universe.regular_sites[domain].in_reference_corpus

    def test_keyword_trap_sites_exist(self, universe):
        traps = [s for s in universe.regular_sites.values()
                 if s.has_adult_keyword]
        assert traps
        assert all(not s.in_reference_corpus for s in traps)

    def test_determinism(self):
        config = UniverseConfig(seed=99, scale=0.01)
        first = build_universe(config)
        second = build_universe(config)
        assert sorted(first.porn_sites) == sorted(second.porn_sites)
        assert sorted(first.services) == sorted(second.services)
        site = next(iter(sorted(first.porn_sites)))
        assert first.porn_sites[site].embedded_services == \
            second.porn_sites[site].embedded_services


class TestServing:
    def _crawlable(self, universe):
        return sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky
        )

    def test_landing_page_serves(self, universe):
        domain = self._crawlable(universe)[0]
        site = universe.porn_sites[domain]
        scheme = "https" if site.https else "http"
        response = fetch(universe, f"{scheme}://{domain}/")
        assert response.status == 200
        assert "<html>" in response.body

    def test_https_refused_when_unsupported(self, universe):
        domain = next(d for d in self._crawlable(universe)
                      if not universe.porn_sites[d].https)
        with pytest.raises(FetchError):
            fetch(universe, f"https://{domain}/")

    def test_unresponsive_site_raises(self, universe):
        domain = next(d for d, s in universe.porn_sites.items()
                      if not s.responsive)
        with pytest.raises(SiteUnresponsiveError):
            fetch(universe, f"http://{domain}/")

    def test_flaky_site_ok_at_sanitization_fails_at_crawl(self, universe):
        domain = next(d for d, s in universe.porn_sites.items()
                      if s.responsive and s.crawl_flaky)
        site = universe.porn_sites[domain]
        scheme = "https" if site.https else "http"
        sanitization = ClientContext("ES", "31.0.0.1", epoch="sanitization")
        assert fetch(universe, f"{scheme}://{domain}/", sanitization).status == 200
        with pytest.raises(SiteTimeoutError):
            fetch(universe, f"{scheme}://{domain}/")

    def test_blocked_country_gets_451(self, universe):
        domain = next((d for d, s in universe.porn_sites.items()
                       if "RU" in s.blocked_countries and s.responsive
                       and not s.crawl_flaky), None)
        if domain is None:
            pytest.skip("no RU-blocked site at this scale")
        site = universe.porn_sites[domain]
        scheme = "https" if site.https else "http"
        assert fetch(universe, f"{scheme}://{domain}/", RU).status == 451
        assert fetch(universe, f"{scheme}://{domain}/", ES).status == 200

    def test_first_party_cookies_set_deterministically(self, universe):
        domain = next(d for d in self._crawlable(universe)
                      if universe.porn_sites[d].first_party_cookies > 0)
        site = universe.porn_sites[domain]
        scheme = "https" if site.https else "http"
        first = fetch(universe, f"{scheme}://{domain}/").set_cookie_headers
        second = fetch(universe, f"{scheme}://{domain}/").set_cookie_headers
        assert first == second
        assert any(header.startswith("PHPSESSID=") for header in first)

    def test_policy_page(self, universe):
        domain = next(
            (d for d, s in universe.porn_sites.items()
             if s.policy and not s.policy.link_broken and s.responsive
             and not s.crawl_flaky),
            None,
        )
        assert domain is not None
        site = universe.porn_sites[domain]
        scheme = "https" if site.https else "http"
        response = fetch(universe, f"{scheme}://{domain}/privacy")
        assert response.status == 200
        assert "Privacy Policy" in response.body

    def test_broken_policy_link_404(self, universe):
        domain = next(
            (d for d, s in universe.porn_sites.items()
             if s.policy and s.policy.link_broken and s.responsive
             and not s.crawl_flaky),
            None,
        )
        if domain is None:
            pytest.skip("no broken-policy site at this scale")
        site = universe.porn_sites[domain]
        scheme = "https" if site.https else "http"
        assert fetch(universe, f"{scheme}://{domain}/privacy").status == 404


class TestServiceEndpoints:
    def test_beacon_sets_service_cookie(self, universe):
        response = fetch(universe, "https://exosrv.com/px?cb=1",
                         referrer="https://example-site.com/")
        cookies = response.set_cookie_headers
        assert cookies
        assert all("Domain=exosrv.com" in header for header in cookies)

    def test_sync_redirect_carries_cookie_value(self, universe):
        # exosrv syncs with probability 0.9; probe a few site contexts.
        for index in range(20):
            response = fetch(universe, "https://exosrv.com/px?cb=1",
                             referrer=f"https://site-{index}.com/")
            if response.is_redirect:
                assert "uid=" in response.location
                assert "src=exosrv.com" in response.location
                return
        pytest.fail("exosrv never issued a sync redirect in 20 contexts")

    def test_script_behavior_for_fp_script(self, universe):
        url = parse_url("https://xcvgdf.party/fp/fp-0.js")
        behavior = universe.script_behavior(url)
        assert behavior is not None
        assert behavior.is_fingerprinting

    def test_script_behavior_for_miner(self, universe):
        url = parse_url("https://coinhive.com/miner.js")
        behavior = universe.script_behavior(url)
        assert behavior.is_miner
        assert behavior.miner_pool

    def test_analytics_sets_first_party_cookie(self, universe):
        url = parse_url("https://google-analytics.com/analytics.js")
        behavior = universe.script_behavior(url)
        assert behavior.sets_document_cookie is not None
        assert behavior.sets_document_cookie[0] == "_go"

    def test_geo_blocked_service_unavailable(self, universe):
        domain = next(
            (d for d, s in universe.services.items()
             if "RU" in s.excluded_countries),
            None,
        )
        if domain is None:
            pytest.skip("no RU-excluded service at this scale")
        service = universe.services[domain]
        scheme = "https" if service.https else "http"
        with pytest.raises(FetchError):
            fetch(universe, f"{scheme}://{domain}/px", RU)

    def test_wildcard_subdomain_routing(self, universe):
        domain = next(d for d, s in universe.services.items()
                      if s.wildcard_subdomains)
        service = universe.services[domain]
        scheme = "https" if service.https else "http"
        response = fetch(universe, f"{scheme}://anything-at-all.{domain}/px")
        assert response.status in (200, 302)


class TestDataSources:
    def test_alexa_includes_porn_and_regular(self, universe):
        domains = set(universe.alexa_top1m_domains())
        assert any(d in domains for d in universe.porn_sites)
        assert any(d in domains for d in universe.regular_sites)

    def test_scanner_flags_miners_everywhere(self, universe):
        assert universe.scanner_hits("coinhive.com") >= 4
        assert universe.scanner_hits("coinhive.com", "RU") >= 4

    def test_geo_targeted_malware_scanner(self, universe):
        targeted = next(
            (d for d, s in universe.services.items()
             if s.scanner_hits >= 4 and s.malicious_countries is not None),
            None,
        )
        if targeted is None:
            pytest.skip("no geo-targeted malware at this scale")
        service = universe.services[targeted]
        inside = next(iter(service.malicious_countries))
        outside = next(c for c in ("US", "UK", "ES", "RU", "IN", "SG")
                       if c not in service.malicious_countries)
        assert universe.scanner_hits(targeted, inside) >= 4
        assert universe.scanner_hits(targeted, outside) == 0

    def test_whois_redacts_independent_porn_sites(self, universe):
        independent = next(d for d, s in universe.porn_sites.items()
                           if s.owner is None)
        assert universe.whois_organization(independent) is None

    def test_whois_exposes_adtech(self, universe):
        named = next(s for s in NAMED_SERVICES if s.cert_org)
        assert universe.whois_organization(named.domain) == named.cert_org

    def test_rank_history_data_source(self, universe):
        domain = next(iter(universe.porn_sites))
        assert universe.rank_history(domain) is not None
        assert universe.rank_history("not-a-site.example") is None
