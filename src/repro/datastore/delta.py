"""Incremental delta crawls: splice unchanged sites from a prior epoch.

When a universe evolves from epoch N to N+1 (:mod:`repro.webgen.evolve`)
most sites do not change — only a ``churn`` fraction rotates content,
plus the sites touched by tracker churn, HTTPS migration, and banner
spread.  Re-rendering the unchanged majority is pure waste: a site's
per-visit event slice is a pure function of (site content closure,
client context), because the synthetic servers never read request
cookies and every identifier derives from (seed, host, client) alone
(the same purity contract that makes resume bit-identical — see the
:mod:`repro.datastore.store` module docstring).

A delta crawl therefore keys each site by its **content hash**
(:class:`repro.webgen.evolve.ContentHashIndex` digests the canonical
site spec plus the fingerprints of every third-party service its visit
can transitively touch).  For each site of the new run:

* hash unchanged → **splice**: the previous epoch's stored rows are
  copied verbatim into the new run, with only the global ``seq`` values
  rebased to the new run's counter and row positions assigned from the
  shared :class:`~repro.datastore.store.RunWriter` counters;
* hash changed (or missing from the baseline) → **real visit** through
  the normal browser path.

Because serving is jar-oblivious, the cookie-relevant projection of the
jar state at every visit start is the empty digest, and the splice key
collapses to (content hash, vantage).  A universe subclass that *does*
serve from jar state can set ``jar_sensitive = True``: splicing then
stops at the first divergence point (the first really-visited site may
have mutated the jar, so later stored slices are no longer provably
equal) and the crawl degrades gracefully to real visits — correctness
never depends on the hash being right, only speed does.  The result is
byte-identical to a full crawl *by construction*, which
``make delta-check`` re-proves on every CI run by diffing every
rendered report table.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..browser.events import CrawlLog
from ..net.geo import VantagePoint
from ..webgen.config import UniverseConfig
from .serialize import (
    COOKIE_COLUMNS,
    REQUEST_COLUMNS,
    config_to_json,
    cookie_from_row,
    jscall_from_row,
    request_from_row,
    visit_from_row,
)
from .store import CrawlStore, RunId, RunState

__all__ = ["DeltaSource", "SiteSlice", "delta_crawl"]

_REQ_SEQ = REQUEST_COLUMNS.index("seq")
_COO_SEQ = COOKIE_COLUMNS.index("seq")


@dataclass(frozen=True)
class SiteSlice:
    """Where one completed site's rows live inside its baseline run.

    All starts are *global* row positions (the store's fan-in order),
    computed by prefix-summing the per-site counts of the run manifest;
    ``seq_start`` is the value of the log's sequence counter when the
    site's visit began (every request and cookie of a visit draws
    exactly one ``seq``, so the spans telescope).
    """

    domain: str
    position: int
    visits_start: int
    requests_start: int
    requests: int
    cookies_start: int
    cookies: int
    js_calls_start: int
    js_calls: int
    seq_start: int

    @property
    def seq_span(self) -> int:
        return self.requests + self.cookies


def _slice_index(store: CrawlStore, run: RunId) -> Dict[str, SiteSlice]:
    """Prefix-sum the baseline run's per-site counts into slices.

    Completion is always a position prefix (crawls visit in order and
    resume from where they stopped), so the walk stops at the first
    uncompleted site — a partial baseline simply offers fewer splice
    candidates.
    """
    slices: Dict[str, SiteSlice] = {}
    visits = requests = cookies = js_calls = seq = 0
    for (position, domain, completed, n_requests, n_cookies,
         n_js_calls) in store.run_site_counts(run):
        if not completed:
            break
        slices[domain] = SiteSlice(
            domain=domain, position=position,
            visits_start=visits,
            requests_start=requests, requests=n_requests,
            cookies_start=cookies, cookies=n_cookies,
            js_calls_start=js_calls, js_calls=n_js_calls,
            seq_start=seq,
        )
        visits += 1
        requests += n_requests
        cookies += n_cookies
        js_calls += n_js_calls
        seq += n_requests + n_cookies
    return slices


class DeltaSource:
    """The baseline side of a delta crawl, shared process-wide.

    Rebuilding the previous epoch's universe (needed to hash its sites)
    costs a lazy :func:`~repro.webgen.builder.build_universe`, so
    instances are memoized per (store path, stored config) — every
    vantage/kind pair of a study reuses the same baseline hashes.
    """

    _instances: Dict[Tuple[str, str], "DeltaSource"] = {}
    _guard = threading.Lock()

    def __init__(self, store_path: str, config: UniverseConfig) -> None:
        self.store_path = store_path
        self.config = config
        self._lock = threading.Lock()
        self._index = None

    @classmethod
    def for_store(cls, store: CrawlStore,
                  config: UniverseConfig) -> "DeltaSource":
        key = (os.path.abspath(store.path), config_to_json(config))
        with cls._guard:
            source = cls._instances.get(key)
            if source is None:
                source = cls(store.path, config)
                cls._instances[key] = source
            return source

    def content_hashes(self):
        """The baseline epoch's :class:`ContentHashIndex`, built lazily."""
        with self._lock:
            if self._index is None:
                from ..webgen.builder import build_universe
                from ..webgen.evolve import ContentHashIndex
                self._index = ContentHashIndex(
                    build_universe(self.config, lazy=True)
                )
            return self._index


def _target_hashes(universe):
    """The target universe's hash index, cached on the instance.

    The attribute write is benignly racy: two threads may each build an
    index, and either result is correct — both are pure functions of
    the universe.
    """
    index = getattr(universe, "_content_hash_index", None)
    if index is None:
        from ..webgen.evolve import ContentHashIndex
        index = ContentHashIndex(universe)
        universe._content_hash_index = index
    return index


def _slice_bounds(slice_: SiteSlice) -> Dict[str, Tuple[int, int, int]]:
    """Table -> (lo, hi, expected row count) for one site's slice."""
    return {
        "visits": (slice_.visits_start, slice_.visits_start + 1, 1),
        "requests": (slice_.requests_start,
                     slice_.requests_start + slice_.requests,
                     slice_.requests),
        "cookies": (slice_.cookies_start,
                    slice_.cookies_start + slice_.cookies,
                    slice_.cookies),
        "js_calls": (slice_.js_calls_start,
                     slice_.js_calls_start + slice_.js_calls,
                     slice_.js_calls),
    }


def _load_slice(baseline: CrawlStore, run: RunId, slice_: SiteSlice,
                ) -> Optional[Dict[str, List[tuple]]]:
    """One site's raw rows from the baseline, or ``None`` on mismatch.

    A count mismatch means the baseline store disagrees with its own
    manifest (torn file, concurrent writer); the caller falls back to a
    real visit rather than trusting the rows.
    """
    rows: Dict[str, List[tuple]] = {}
    for table, (lo, hi, expected) in _slice_bounds(slice_).items():
        got = baseline.site_event_rows(run, slice_.domain, table, lo, hi)
        if len(got) != expected:
            return None
        rows[table] = got
    return rows


def _load_group(baseline: CrawlStore, run: RunId, group: List[SiteSlice],
                ) -> Optional[List[Dict[str, List[tuple]]]]:
    """Raw rows for a *contiguous* group of slices, one scan per table.

    Consecutive corpus sites occupy consecutive position ranges in every
    event table (the prefix sums telescope), so the whole group is one
    ``[first.start, last.end)`` range read, partitioned back to sites by
    the per-site counts.  ``None`` on any count/position mismatch — the
    caller then degrades to the per-site path.
    """
    first_bounds = _slice_bounds(group[0])
    last_bounds = _slice_bounds(group[-1])
    per_site: List[Dict[str, List[tuple]]] = [{} for _ in group]
    for table in ("visits", "requests", "cookies", "js_calls"):
        lo = first_bounds[table][0]
        hi = last_bounds[table][1]
        rows = baseline.event_rows_in_range(run, table, lo, hi)
        if len(rows) != hi - lo or (
                rows and (rows[0][0] != lo or rows[-1][0] != hi - 1)):
            return None
        cursor = 0
        for index, slice_ in enumerate(group):
            _, _, expected = _slice_bounds(slice_)[table]
            per_site[index][table] = [
                row[1:] for row in rows[cursor:cursor + expected]
            ]
            cursor += expected
    return per_site


def _rebase_seq(rows: Dict[str, List[tuple]],
                seq_delta: int) -> Dict[str, List[tuple]]:
    """Rows with request/cookie ``seq`` columns shifted by ``seq_delta``."""
    if seq_delta == 0:
        return rows
    rows["requests"] = [
        row[:_REQ_SEQ] + (row[_REQ_SEQ] + seq_delta,) + row[_REQ_SEQ + 1:]
        for row in rows["requests"]
    ]
    rows["cookies"] = [
        row[:_COO_SEQ] + (row[_COO_SEQ] + seq_delta,) + row[_COO_SEQ + 1:]
        for row in rows["cookies"]
    ]
    return rows


def delta_crawl(
    store: CrawlStore,
    universe,
    vantage: VantagePoint,
    kind: str,
    domains: Sequence[str],
    state: RunState,
    baseline: CrawlStore,
    partial: CrawlLog,
    *,
    epoch: str = "crawl",
    keep_html: bool = True,
    hydrate: bool = True,
    progress=None,
) -> Optional[Tuple[Optional[CrawlLog], Dict]]:
    """Run the remaining sites of ``state`` as a delta against a baseline.

    Returns ``(log, stats)`` — ``log`` is ``None`` in streaming mode —
    or ``None`` when the delta preconditions fail (no stored baseline
    config, same universe as the target, no matching baseline run, or
    an empty completed prefix), in which case the caller runs a normal
    crawl.  The bail-out happens before anything is written, so falling
    back is always safe.

    ``stats`` reports ``spliced``/``crawled`` site counts and
    ``divergence_index`` — the remaining-list index of the first site
    that needed a real visit (``None`` when everything spliced), which
    is also where a ``jar_sensitive`` universe stops splicing.

    Unchanged-site detection prefers the evolution lineage
    (:meth:`Universe.changed_domains_since` — exact, free) and falls
    back to content-hash comparison when the target universe was not
    derived from the baseline's epoch in this process (which costs one
    lazy rebuild of the baseline universe, memoized per store+config).
    Contiguous spliceable sites are read with one ranged scan per event
    table and committed in one transaction per group, so splice cost is
    dominated by bulk row I/O rather than per-site round trips.
    """
    from ..crawler.openwpm import OpenWPMCrawler

    base_config = baseline.stored_config()
    if base_config is None:
        return None
    if config_to_json(base_config) == config_to_json(universe.config):
        return None
    base_state = baseline.find_run(base_config, vantage, kind, domains,
                                   epoch=epoch, keep_html=keep_html)
    if base_state is None:
        return None
    slices = _slice_index(baseline, base_state.run_id)
    if not slices:
        return None

    changed = universe.changed_domains_since(base_config.epoch)
    if changed is None:
        base_index = DeltaSource.for_store(
            baseline, base_config).content_hashes()
        target_index = _target_hashes(universe)

    def spliceable(domain: str) -> Optional[SiteSlice]:
        slice_ = slices.get(domain)
        if slice_ is None:
            return None
        if changed is not None:
            return None if domain in changed else slice_
        base_hash = base_index.hash_of(domain)
        if base_hash is not None \
                and base_hash == target_index.hash_of(domain):
            return slice_
        return None

    crawler = OpenWPMCrawler(universe, vantage, epoch=epoch,
                             keep_html=keep_html)
    browser = crawler.browser_for(partial)
    log = browser.log
    writer = store.run_writer(state.run_id, trim=not hydrate)
    remaining = state.remaining
    country = vantage.country_code
    total = len(remaining)
    spliced = crawled = 0
    divergence_index: Optional[int] = None

    def splice_one(slice_: SiteSlice, rows: Dict[str, List[tuple]],
                   ) -> Tuple[str, Dict[str, List[tuple]], int]:
        rows = _rebase_seq(rows, log._seq - slice_.seq_start)
        seq_end = log._seq + slice_.seq_span
        if hydrate:
            log.visits.extend(visit_from_row(r) for r in rows["visits"])
            log.requests.extend(
                request_from_row(r) for r in rows["requests"])
            log.cookies.extend(cookie_from_row(r) for r in rows["cookies"])
            log.js_calls.extend(
                jscall_from_row(r) for r in rows["js_calls"])
        log._seq = seq_end
        return (slice_.domain, rows, seq_end)

    index = 0
    while index < len(remaining):
        domain = remaining[index]
        slice_ = None
        if divergence_index is None or not universe.jar_sensitive:
            slice_ = spliceable(domain)
        if slice_ is None:
            if progress is not None:
                progress("site_started", country=country, domain=domain,
                         index=index, total=total)
            if divergence_index is None:
                divergence_index = index
            crawler.visit_site(browser, domain, writer.checkpoint)
            crawled += 1
            if progress is not None:
                progress("site_finished", country=country, domain=domain,
                         index=index, total=total)
            index += 1
            continue
        # Maximal run of consecutive spliceable sites -> one batch.
        group = [slice_]
        end = index + 1
        while end < len(remaining):
            next_slice = spliceable(remaining[end])
            if next_slice is None:
                break
            group.append(next_slice)
            end += 1
        if progress is not None:
            for offset, member in enumerate(group):
                progress("site_started", country=country,
                         domain=member.domain, index=index + offset,
                         total=total)
        loaded = _load_group(baseline, base_state.run_id, group)
        if loaded is None:
            # The baseline disagrees with its own manifest somewhere in
            # this range; retry site-by-site and really visit the ones
            # that stay unreadable.
            for offset, member in enumerate(group):
                rows = _load_slice(baseline, base_state.run_id, member)
                if rows is not None and universe.jar_sensitive \
                        and divergence_index is not None:
                    rows = None
                if rows is None:
                    if divergence_index is None:
                        divergence_index = index + offset
                    crawler.visit_site(browser, member.domain,
                                       writer.checkpoint)
                    crawled += 1
                else:
                    item_domain, item_rows, seq_end = splice_one(
                        member, rows)
                    writer.splice(item_domain, item_rows, seq_end=seq_end)
                    spliced += 1
                    if progress is not None:
                        progress("site_spliced", country=country,
                                 domain=member.domain,
                                 index=index + offset, total=total)
                if progress is not None:
                    progress("site_finished", country=country,
                             domain=member.domain, index=index + offset,
                             total=total)
        else:
            items = [splice_one(member, rows)
                     for member, rows in zip(group, loaded)]
            writer.splice_many(items)
            spliced += len(group)
            if progress is not None:
                for offset, member in enumerate(group):
                    progress("site_spliced", country=country,
                             domain=member.domain, index=index + offset,
                             total=total)
                    progress("site_finished", country=country,
                             domain=member.domain, index=index + offset,
                             total=total)
        index = end
    stats = {
        "spliced": spliced,
        "crawled": crawled,
        "divergence_index": divergence_index,
    }
    return (log if hydrate else None), stats
