"""``make incremental-check``: correctness + speedup gate for the
incremental map/merge analysis engine.

Runs the incremental probe (see
``test_perf_pipeline.run_incremental_probe``) in a fresh subprocess:
crawl the seed epoch, render every supported section through the
aggregate cache (the cold pass persists one partial per site per
analysis), delta-crawl one evolved epoch (default 5% content churn),
then render the epoch-1 sections twice — incremental **first**, so the
monolithic pass that follows inherits any warm OS caches and the
reported speedup is conservative.  FAILS if any of:

* any rendered section differs between the incremental and monolithic
  studies — the cache must be byte-invisible, in-probe *and* re-rendered
  here from the stores the probe left behind (an independent process,
  so a stale in-memory structure can't mask a divergence);
* the epoch-1 pass has **zero cache hits** (unchanged sites must merge
  from epoch-0 partials) or zero misses (churned sites must re-map);
* the incremental-vs-monolithic **speedup** is below the floor (default
  3.0x — at 5% churn, ~95% of per-site maps are skipped).

The section set covers everything a single-vantage porn + regular crawl
feeds (Tables 2-6, Figures 3-4, the malware rollup); Tables 1/7/8 need
the inspection pass or extra vantage points the probe doesn't run.

Configuration (environment):

* ``REPRO_INCREMENTAL_CHECK_SCALE`` — probe scale, default ``0.2``.
* ``REPRO_INCREMENTAL_CHECK_CHURN`` — per-epoch churn, default ``0.05``.
* ``REPRO_INCREMENTAL_CHECK_SPEEDUP`` — speedup floor, default ``3.0``.

Exit status 0 on pass, 1 on any violation.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PROBE_SCRIPT = pathlib.Path(__file__).resolve().parent / "test_perf_pipeline.py"

DEFAULT_SCALE = 0.2
DEFAULT_CHURN = 0.05
DEFAULT_SPEEDUP = 3.0

#: Sections renderable from the probe's porn(ES) + regular runs alone.
SECTIONS = ("corpus", "table2", "table3", "figure3", "table4", "figure4",
            "table5", "table6", "malware")


def _run_probe(scale: float, churn: float, store_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env["REPRO_PERF_DELTA_CHURN"] = str(churn)
    env["REPRO_PERF_DELTA_STORE_DIR"] = store_dir
    command = [sys.executable, str(PROBE_SCRIPT), "--scale", str(scale),
               "--incremental-probe", "--json"]
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"incremental-probe child at scale {scale} failed:\n"
            f"{result.stderr}"
        )
    return json.loads(result.stdout)


def _render_sections(store_path: str, *, incremental: bool) -> dict:
    """Every supported section from a store-only study, either path."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import Study
    from repro.datastore import CrawlStore
    from repro.reporting import render_section
    from repro.webgen.builder import build_universe

    store = CrawlStore(store_path)
    config = store.stored_config()
    study = Study(build_universe(config, lazy=True), store=store,
                  store_only=True, aggregate_cache=incremental or None)
    sections = {name: render_section(study, config.scale, name)
                for name in SECTIONS}
    stats = study.aggregate_cache.stats.as_dict() if incremental else None
    return sections, stats


def main() -> int:
    scale = float(os.environ.get("REPRO_INCREMENTAL_CHECK_SCALE",
                                 str(DEFAULT_SCALE)))
    churn = float(os.environ.get("REPRO_INCREMENTAL_CHECK_CHURN",
                                 str(DEFAULT_CHURN)))
    floor = float(os.environ.get("REPRO_INCREMENTAL_CHECK_SPEEDUP",
                                 str(DEFAULT_SPEEDUP)))

    store_dir = tempfile.mkdtemp(prefix="repro-incremental-check-")
    try:
        print(f"incremental-check: scale {scale}, churn {churn}, "
              f"speedup floor {floor}x")
        probe = _run_probe(scale, churn, store_dir)
        print(f"  cold pass: {probe['cold']['misses']} partials mapped, "
              f"{probe['cached_rows']} rows "
              f"({probe['cached_bytes'] / 1024:.0f} KiB) cached "
              f"in {probe['warm_seconds']:.2f}s")
        print(f"  epoch pass: {probe['hits']} hits / {probe['misses']} "
              f"misses; monolithic {probe['full_seconds']:.2f}s vs "
              f"incremental {probe['incremental_seconds']:.2f}s "
              f"-> {probe['speedup']}x")

        failed = False
        if not probe["tables_identical"]:
            print("FAIL: incremental sections diverge from the "
                  "monolithic reference in-probe", file=sys.stderr)
            failed = True
        if probe["hits"] == 0:
            print("FAIL: epoch pass hit nothing — unchanged sites must "
                  "merge from cached partials", file=sys.stderr)
            failed = True
        if probe["misses"] == 0:
            print("FAIL: epoch pass missed nothing — churned sites must "
                  "be re-mapped", file=sys.stderr)
            failed = True
        if probe["speedup"] is None or probe["speedup"] < floor:
            print(f"FAIL: incremental speedup {probe['speedup']}x is "
                  f"below the {floor}x floor", file=sys.stderr)
            failed = True

        # Independent re-render: a fresh process over the stores the
        # probe left behind, through the now-warm cache vs. monolithic.
        epoch_store = os.path.join(store_dir, "epoch0-e1")
        incremental_sections, stats = _render_sections(epoch_store,
                                                       incremental=True)
        monolithic_sections, _ = _render_sections(epoch_store,
                                                  incremental=False)
        if stats["misses"] != 0:
            print(f"FAIL: warm re-render missed {stats['misses']} "
                  "partials — every epoch-1 partial should be cached by "
                  "now", file=sys.stderr)
            failed = True
        for name in SECTIONS:
            if incremental_sections[name] == monolithic_sections[name]:
                print(f"  {name}: identical")
            else:
                print(f"FAIL: section {name} diverges between the "
                      "incremental and monolithic renders",
                      file=sys.stderr)
                failed = True

        if failed:
            return 1
        print("incremental-check: OK")
        return 0
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
