"""The persistent crawl datastore (our OpenWPM SQLite equivalent).

:class:`CrawlStore` owns one SQLite file in WAL mode and persists whole
:class:`~repro.browser.events.CrawlLog` sessions as they happen: the
crawler calls the store's *checkpointer* after every landing-page visit,
which appends that site's event rows and flips its completion flag in a
single transaction.  A killed crawl therefore loses at most the site it
was on, and :func:`stored_crawl` resumes it at per-site granularity.

Why resume is bit-identical
---------------------------

A resumed session rebuilds the browser with the stored partial log (so
global ``seq`` numbering continues where it stopped) but a *fresh*
cookie jar.  That is safe because nothing the log records depends on
jar state carried across sites: the synthetic servers never read request
cookies (``Universe.fetch`` is a pure function of URL, referrer and
client context), ``CookieJar.store_from_response`` reports every parsed
cookie regardless of what the jar already holds, and minted
``document.cookie`` identifiers derive from (script host, cookie name,
client IP) only.  The per-site event stream is thus a pure function of
(universe, client, site), which ``tests/test_datastore.py`` asserts by
diffing an aborted-and-resumed crawl against an uninterrupted one.

Concurrency: worker processes and threads each open their own
:class:`CrawlStore` on the same path; WAL plus a busy timeout serializes
writers, and every checkpoint is one short transaction.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..browser.events import CrawlLog
from ..net.geo import VantagePoint
from ..webgen.config import UniverseConfig
from .schema import SCHEMA_VERSION, ensure_schema
from .serialize import (
    config_from_json,
    config_to_json,
    cookie_from_row,
    cookie_to_row,
    domains_hash,
    jscall_from_row,
    jscall_to_row,
    request_from_row,
    request_to_row,
    run_key,
    vantage_to_json,
    visit_from_row,
    visit_to_row,
)

__all__ = [
    "CrawlStore",
    "MissingRunError",
    "RunManifest",
    "RunState",
    "stored_crawl",
]


class MissingRunError(RuntimeError):
    """A store-only consumer asked for a crawl the store does not hold."""


@dataclass(frozen=True)
class RunState:
    """Where one run stands: which sites are already on disk."""

    run_id: int
    domains: Tuple[str, ...]
    completed: Tuple[str, ...]
    seq: int
    finished: bool

    @property
    def complete(self) -> bool:
        return len(self.completed) == len(self.domains)

    @property
    def remaining(self) -> Tuple[str, ...]:
        done = set(self.completed)
        return tuple(d for d in self.domains if d not in done)


@dataclass(frozen=True)
class RunManifest:
    """One manifest row for ``repro store info``."""

    run_id: int
    run_key: str
    kind: str
    country_code: str
    client_ip: str
    total_sites: int
    completed_sites: int
    visits: int
    requests: int
    cookies: int
    js_calls: int
    elapsed: float
    started_at: float
    finished_at: Optional[float]
    stats: Optional[Dict]

    @property
    def complete(self) -> bool:
        return self.completed_sites == self.total_sites

    @property
    def sites_per_second(self) -> float:
        return self.completed_sites / self.elapsed if self.elapsed else 0.0


class CrawlStore:
    """One SQLite crawl datastore (WAL journal, batched inserts)."""

    def __init__(self, path: str, *, timeout: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False,
            isolation_level=None,  # autocommit; transactions are explicit
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        with self._lock:
            ensure_schema(self._connection)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def _txn(self):
        """One serialized write transaction (short by construction)."""
        with self._lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                yield self._connection
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")

    # -- store-level metadata -------------------------------------------

    def schema_version(self) -> int:
        return SCHEMA_VERSION

    def stored_config(self) -> Optional[UniverseConfig]:
        """The universe configuration every run in this store used."""
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key='config_json'"
            ).fetchone()
        return config_from_json(row[0]) if row else None

    def _check_config(self, config: UniverseConfig) -> str:
        """Pin the store to one universe; reject mixing configurations."""
        text = config_to_json(config)
        with self._txn() as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='config_json'"
            ).fetchone()
            if row is None:
                conn.execute("INSERT INTO meta (key, value) VALUES (?, ?)",
                             ("config_json", text))
            elif row[0] != text:
                raise ValueError(
                    "store was created for a different UniverseConfig; "
                    "use one store file per universe"
                )
        return text

    # -- run lifecycle --------------------------------------------------

    def open_run(
        self,
        config: UniverseConfig,
        vantage: VantagePoint,
        kind: str,
        domains: Sequence[str],
        *,
        epoch: str = "crawl",
        keep_html: bool = True,
    ) -> RunState:
        """Find or create the manifest row for one logical crawl."""
        config_json = self._check_config(config)
        key = run_key(config, vantage, kind, epoch=epoch, keep_html=keep_html)
        dh = domains_hash(domains)
        with self._txn() as conn:
            row = conn.execute(
                "SELECT id FROM runs WHERE run_key=? AND domains_hash=?",
                (key, dh),
            ).fetchone()
            if row is None:
                cursor = conn.execute(
                    "INSERT INTO runs (run_key, kind, country_code, client_ip,"
                    " config_json, vantage_json, domains_hash, total_sites,"
                    " started_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key, kind, vantage.country_code, vantage.client_ip,
                     config_json, vantage_to_json(vantage), dh, len(domains),
                     time.time()),
                )
                run_id = cursor.lastrowid
                conn.executemany(
                    "INSERT INTO run_sites (run_id, position, domain)"
                    " VALUES (?, ?, ?)",
                    [(run_id, i, d) for i, d in enumerate(domains)],
                )
        return self._run_state(key, dh, domains)

    def _run_state(self, key: str, dh: str,
                   domains: Sequence[str]) -> RunState:
        with self._lock:
            row = self._connection.execute(
                "SELECT id, seq, finished_at FROM runs"
                " WHERE run_key=? AND domains_hash=?", (key, dh),
            ).fetchone()
            run_id, seq, finished_at = row
            completed = tuple(
                r[0] for r in self._connection.execute(
                    "SELECT domain FROM run_sites"
                    " WHERE run_id=? AND completed=1 ORDER BY position",
                    (run_id,),
                )
            )
        return RunState(run_id=run_id, domains=tuple(domains),
                        completed=completed, seq=seq,
                        finished=finished_at is not None)

    def find_run(
        self,
        config: UniverseConfig,
        vantage: VantagePoint,
        kind: str,
        domains: Sequence[str],
        *,
        epoch: str = "crawl",
        keep_html: bool = True,
    ) -> Optional[RunState]:
        """The run's state if it exists, without creating anything."""
        key = run_key(config, vantage, kind, epoch=epoch, keep_html=keep_html)
        dh = domains_hash(domains)
        with self._lock:
            row = self._connection.execute(
                "SELECT id FROM runs WHERE run_key=? AND domains_hash=?",
                (key, dh),
            ).fetchone()
        if row is None:
            return None
        return self._run_state(key, dh, domains)

    def checkpointer(self, run_id: int) -> Callable:
        """A per-site checkpoint callback for ``OpenWPMCrawler.crawl``.

        Each invocation appends one visited site's event rows and marks
        the site complete in a single transaction — the atomic unit a
        kill can never tear.
        """
        with self._lock:
            positions = dict(self._connection.execute(
                "SELECT domain, position FROM run_sites WHERE run_id=?",
                (run_id,),
            ))
        last = time.perf_counter()

        def checkpoint(domain: str, log: CrawlLog,
                       marks: Tuple[int, int, int, int]) -> None:
            nonlocal last
            now = time.perf_counter()
            site_elapsed, last = now - last, now
            v0, r0, c0, j0 = marks
            with self._txn() as conn:
                conn.executemany(
                    "INSERT INTO visits VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [(run_id, v0 + i) + visit_to_row(v)
                     for i, v in enumerate(log.visits[v0:])],
                )
                conn.executemany(
                    "INSERT INTO requests VALUES"
                    " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [(run_id, r0 + i) + request_to_row(r)
                     for i, r in enumerate(log.requests[r0:])],
                )
                conn.executemany(
                    "INSERT INTO cookies VALUES"
                    " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [(run_id, c0 + i) + cookie_to_row(c)
                     for i, c in enumerate(log.cookies[c0:])],
                )
                conn.executemany(
                    "INSERT INTO js_calls VALUES (?, ?, ?, ?, ?, ?)",
                    [(run_id, j0 + i) + jscall_to_row(c)
                     for i, c in enumerate(log.js_calls[j0:])],
                )
                conn.execute(
                    "UPDATE run_sites SET completed=1, elapsed=?, requests=?,"
                    " cookies=?, js_calls=? WHERE run_id=? AND position=?",
                    (site_elapsed, len(log.requests) - r0,
                     len(log.cookies) - c0, len(log.js_calls) - j0,
                     run_id, positions[domain]),
                )
                conn.execute(
                    "UPDATE runs SET seq=?, elapsed=elapsed+? WHERE id=?",
                    (log._seq, site_elapsed, run_id),
                )

        return checkpoint

    def finish_run(self, run_id: int,
                   stats: Optional[Dict] = None) -> None:
        """Stamp a run finished; refuses while sites are still pending."""
        with self._txn() as conn:
            pending = conn.execute(
                "SELECT COUNT(*) FROM run_sites"
                " WHERE run_id=? AND completed=0", (run_id,),
            ).fetchone()[0]
            if pending:
                raise RuntimeError(
                    f"run {run_id} still has {pending} pending sites"
                )
            conn.execute(
                "UPDATE runs SET finished_at=COALESCE(finished_at, ?),"
                " stats_json=COALESCE(?, stats_json) WHERE id=?",
                (time.time(),
                 json.dumps(stats, sort_keys=True) if stats else None,
                 run_id),
            )

    # -- reading --------------------------------------------------------

    def load_log(self, run_id: int) -> CrawlLog:
        """Reconstruct the (possibly partial) crawl log of a run."""
        with self._lock:
            run = self._connection.execute(
                "SELECT country_code, client_ip, seq FROM runs WHERE id=?",
                (run_id,),
            ).fetchone()
            if run is None:
                raise MissingRunError(f"no run {run_id} in {self.path}")
            log = CrawlLog(country_code=run[0], client_ip=run[1])
            log.visits = [
                visit_from_row(row) for row in self._connection.execute(
                    "SELECT site_domain, url, success, status, failure_reason,"
                    " html, https FROM visits WHERE run_id=? ORDER BY position",
                    (run_id,),
                )
            ]
            log.requests = [
                request_from_row(row) for row in self._connection.execute(
                    "SELECT url, fqdn, scheme, page_domain, resource_type,"
                    " initiator, referrer, seq, status, failed, error,"
                    " redirect_location FROM requests"
                    " WHERE run_id=? ORDER BY position", (run_id,),
                )
            ]
            log.cookies = [
                cookie_from_row(row) for row in self._connection.execute(
                    "SELECT page_domain, set_by_host, domain, name, value,"
                    " session, secure, over_https, seq FROM cookies"
                    " WHERE run_id=? ORDER BY position", (run_id,),
                )
            ]
            log.js_calls = [
                jscall_from_row(row) for row in self._connection.execute(
                    "SELECT script_url, document_host, api, args_json"
                    " FROM js_calls WHERE run_id=? ORDER BY position",
                    (run_id,),
                )
            ]
        log._seq = run[2]
        return log

    def run_manifests(self) -> List[RunManifest]:
        """Every run with completion, per-table counts, and timings."""
        query = """
            SELECT r.id, r.run_key, r.kind, r.country_code, r.client_ip,
                   r.total_sites,
                   (SELECT COUNT(*) FROM run_sites s
                     WHERE s.run_id = r.id AND s.completed = 1),
                   (SELECT COUNT(*) FROM visits v WHERE v.run_id = r.id),
                   (SELECT COUNT(*) FROM requests q WHERE q.run_id = r.id),
                   (SELECT COUNT(*) FROM cookies c WHERE c.run_id = r.id),
                   (SELECT COUNT(*) FROM js_calls j WHERE j.run_id = r.id),
                   r.elapsed, r.started_at, r.finished_at, r.stats_json
              FROM runs r ORDER BY r.id
        """
        with self._lock:
            rows = self._connection.execute(query).fetchall()
        return [
            RunManifest(
                run_id=row[0], run_key=row[1], kind=row[2],
                country_code=row[3], client_ip=row[4], total_sites=row[5],
                completed_sites=row[6], visits=row[7], requests=row[8],
                cookies=row[9], js_calls=row[10], elapsed=row[11],
                started_at=row[12], finished_at=row[13],
                stats=json.loads(row[14]) if row[14] else None,
            )
            for row in rows
        ]

    # -- artifacts ------------------------------------------------------

    def put_artifact(self, key: str, payload: bytes) -> None:
        """Store an opaque crawl product (e.g. the inspection pass)."""
        with self._txn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts VALUES (?, ?, ?)",
                (key, payload, time.time()),
            )

    def get_artifact(self, key: str) -> Optional[bytes]:
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM artifacts WHERE artifact_key=?", (key,),
            ).fetchone()
        return bytes(row[0]) if row else None


# ----------------------------------------------------------------------
# The crawl-through-the-store entry point
# ----------------------------------------------------------------------

def _cache_snapshot(stats) -> Tuple[int, int, int]:
    return (stats.hits, stats.misses, stats.evictions)


def _cache_delta(stats, before: Tuple[int, int, int]) -> Dict[str, int]:
    hits, misses, evictions = before
    return {
        "hits": stats.hits - hits,
        "misses": stats.misses - misses,
        "evictions": stats.evictions - evictions,
    }


def stored_crawl(
    store: CrawlStore,
    universe,
    vantage: VantagePoint,
    kind: str,
    domains: Sequence[str],
    *,
    epoch: str = "crawl",
    keep_html: bool = True,
    allow_crawl: bool = True,
) -> CrawlLog:
    """Load, resume, or run one crawl through the store.

    Fully stored runs are loaded without touching a browser; partially
    stored runs resume with the remaining sites appended to the stored
    partial log (bit-identical to an uninterrupted session — see the
    module docstring); fresh runs crawl from scratch, checkpointing after
    every site.  ``allow_crawl=False`` turns a miss into
    :class:`MissingRunError` (the ``repro report`` contract: render from
    the store, never crawl).
    """
    from ..crawler.openwpm import OpenWPMCrawler
    from ..html.parser import parse_cache_stats

    domains = list(domains)
    state = store.open_run(universe.config, vantage, kind, domains,
                           epoch=epoch, keep_html=keep_html)
    remaining = state.remaining
    if not remaining:
        if not state.finished:
            store.finish_run(state.run_id)
        return store.load_log(state.run_id)
    if not allow_crawl:
        raise MissingRunError(
            f"store {store.path} holds {len(state.completed)}/{len(domains)} "
            f"sites for {kind} from {vantage.country_code}; re-run with "
            "--store to complete it"
        )
    partial = store.load_log(state.run_id)
    fetch_before = _cache_snapshot(universe.fetch_cache.stats)
    parse_before = _cache_snapshot(parse_cache_stats())
    crawler = OpenWPMCrawler(universe, vantage, epoch=epoch,
                             keep_html=keep_html)
    log = crawler.crawl(remaining, log=partial,
                        checkpoint=store.checkpointer(state.run_id))
    store.finish_run(state.run_id, stats={
        "fetch_cache": _cache_delta(universe.fetch_cache.stats, fetch_before),
        "parse_cache": _cache_delta(parse_cache_stats(), parse_before),
        "resumed_from_site": len(state.completed),
    })
    return log
