"""Fine-grained tests of the synthetic server's endpoint behaviors."""

import base64

import pytest

from repro.net.http import Headers, Request
from repro.net.url import parse_url, registrable_domain
from repro.webgen.universe import ClientContext

ES = ClientContext("ES", "31.0.0.1")
RU = ClientContext("RU", "77.0.0.1")


def fetch(universe, url, client=ES, referrer=None, cookie=None):
    headers = Headers()
    if referrer:
        headers.set("Referer", referrer)
    if cookie:
        headers.set("Cookie", cookie)
    return universe.fetch(Request(parse_url(url), headers=headers), client)


class TestCookieEndpoints:
    def test_cookie_value_stable_per_client(self, universe):
        first = fetch(universe, "https://exosrv.com/px?cb=1",
                      referrer="https://samesite.com/")
        second = fetch(universe, "https://exosrv.com/px?cb=1",
                       referrer="https://samesite.com/")
        assert first.set_cookie_headers == second.set_cookie_headers

    def test_cookie_value_differs_per_client_ip(self, universe):
        other = ClientContext("ES", "31.0.0.99")
        for index in range(20):
            referrer = f"https://ipsite-{index}.com/"
            a = fetch(universe, "https://exosrv.com/px?cb=1",
                      referrer=referrer)
            if not a.set_cookie_headers:
                continue  # this context set no cookie; try another
            b = fetch(universe, "https://exosrv.com/px?cb=1", other,
                      referrer=referrer)
            assert a.set_cookie_headers != b.set_cookie_headers
            return
        pytest.fail("exosrv never set cookies in 20 contexts")

    def test_ip_embedding_decodable(self, universe):
        """ExoClick's IP-bearing cookies base64-decode to the client IP."""
        found = False
        for index in range(30):
            response = fetch(universe, "https://exosrv.com/px?cb=1",
                             referrer=f"https://probe-{index}.com/")
            for header in response.set_cookie_headers:
                value = header.split(";", 1)[0].split("=", 1)[1]
                padded = value + "=" * (-len(value) % 4)
                try:
                    decoded = base64.b64decode(padded).decode()
                except Exception:
                    continue
                if ES.client_ip in decoded:
                    found = True
        assert found

    def test_geo_cookie_coordinates_match_client_country(self, universe):
        response = fetch(universe, "https://fling.com/px?cb=1",
                         referrer="https://probe.com/")
        geo_headers = [h for h in response.set_cookie_headers
                       if h.startswith("geo=") or h.startswith("loc=")]
        if not geo_headers:
            pytest.skip("fling cookie not set for this context")
        assert "lat%3D40.4" in geo_headers[0]  # Spain's centroid

    def test_secure_attribute_follows_scheme_support(self, universe):
        response = fetch(universe, "https://exosrv.com/px?cb=1",
                         referrer="https://probe.com/")
        for header in response.set_cookie_headers:
            assert "Secure" in header


class TestSyncChain:
    def test_sync_receiver_sets_own_cookie(self, universe):
        # Find a firing sync first.
        location = None
        for index in range(30):
            response = fetch(universe, "https://exosrv.com/px?cb=1",
                             referrer=f"https://chain-{index}.com/")
            if response.is_redirect:
                location = response.location
                referrer = f"https://chain-{index}.com/"
                break
        if location is None:
            pytest.skip("no sync fired")
        follow = fetch(universe, location, referrer=referrer)
        assert follow.status in (200, 302)

    def test_sync_url_carries_source(self, universe):
        for index in range(30):
            response = fetch(universe, "https://exosrv.com/px?cb=1",
                             referrer=f"https://src-{index}.com/")
            if response.is_redirect:
                params = parse_url(response.location).query_params()
                assert params.get("src") == "exosrv.com"
                assert int(params.get("hop", "0")) >= 1
                return
        pytest.skip("no sync fired")


class TestAdFrames:
    def test_ad_frame_contains_bidders(self, universe):
        response = fetch(universe, "https://exoclick.com/ad/frame-x.html",
                         referrer="https://framesite.com/")
        assert response.status == 200
        assert "<script" in response.body or "sponsored" in response.body

    def test_bidder_scripts_resolve(self, universe):
        if not universe.rtb_bidders:
            pytest.skip("no bidders at this scale")
        bidder = universe.rtb_bidders[0]
        assert universe.dns.try_resolve(bidder) is not None


class TestScriptBodies:
    def test_script_content_type(self, universe):
        response = fetch(universe, "https://exoclick.com/ad/banner-abc.js",
                         referrer="https://x.com/")
        assert response.headers.get("Content-Type") == "application/javascript"

    def test_pub_param_passthrough(self, universe):
        response = fetch(
            universe, "https://exoclick.com/ad/banner-abc.js?pub=uid12345678",
            referrer="https://x.com/",
        )
        assert response.status == 200

    def test_miner_pool_handshake(self, universe):
        response = fetch(universe, "wss://pool.coinhive.com/ws")
        assert response.status == 200


class TestHostingGeo:
    def test_ru_domains_hosted_in_ru(self, universe):
        ru_service = next((d for d in universe.services if d.endswith(".ru")),
                          None)
        if ru_service is None:
            pytest.skip("no .ru services at this scale")
        address = universe.dns.resolve(ru_service)
        assert universe.geoip.country_of(address).code == "RU"

    def test_hosting_distribution_spread(self, universe):
        from collections import Counter

        counts = Counter()
        for domain in list(universe.services)[:300]:
            address = universe.dns.try_resolve(domain)
            country = universe.geoip.country_of(address)
            if country:
                counts[country.code] += 1
        assert counts["US"] > 0
        assert len(counts) >= 3
