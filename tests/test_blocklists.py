"""Unit tests for the EasyList engine and the Disconnect entity list."""

import pytest

from repro.blocklists.disconnect import DisconnectEntry, DisconnectList
from repro.blocklists.easylist import FilterList, MatchContext, parse_rule
from repro.net.url import parse_url


class TestRuleParsing:
    def test_comment_lines_ignored(self):
        assert parse_rule("! a comment") is None
        assert parse_rule("[Adblock Plus 2.0]") is None
        assert parse_rule("") is None

    def test_element_hiding_ignored(self):
        assert parse_rule("example.com##.ad-banner") is None
        assert parse_rule("example.com#@#.ok") is None

    def test_domain_anchor(self):
        rule = parse_rule("||ads.example.com^")
        assert rule.anchor_domain == "ads.example.com"
        assert not rule.is_exception

    def test_exception_rule(self):
        rule = parse_rule("@@||good.com^")
        assert rule.is_exception

    def test_options_parsed(self):
        rule = parse_rule("||t.com^$third-party,script")
        assert rule.third_party is True
        assert rule.resource_types == {"script"}

    def test_domain_option(self):
        rule = parse_rule("/banner/*$domain=a.com|~b.a.com")
        assert rule.include_domains == {"a.com"}
        assert rule.exclude_domains == {"b.a.com"}

    def test_unknown_options_tolerated(self):
        assert parse_rule("||t.com^$websocket,ping") is not None


class TestMatching:
    def test_domain_rule_matches_subdomains(self):
        rules = FilterList.from_text("||exoclick.com^")
        assert rules.matches("https://ads.exoclick.com/banner.js")
        assert rules.matches("https://exoclick.com/x")
        assert not rules.matches("https://notexoclick.com/x")

    def test_path_rule_is_url_specific(self):
        # The paper's example: bbc.co.uk is clean, bbc.co.uk/analytics is not.
        rules = FilterList.from_text("||bbc.co.uk/analytics")
        assert rules.matches("https://bbc.co.uk/analytics/beacon.gif")
        assert not rules.matches("https://bbc.co.uk/news")

    def test_third_party_option(self):
        rules = FilterList.from_text("||tracker.com^$third-party")
        third = MatchContext(first_party_host="site.com")
        first = MatchContext(first_party_host="www.tracker.com")
        assert rules.matches("https://tracker.com/t.js", third)
        assert not rules.matches("https://tracker.com/t.js", first)

    def test_exception_overrides_block(self):
        rules = FilterList.from_text(
            "||cdn.com^\n@@||cdn.com/jquery.js"
        )
        assert rules.matches("https://cdn.com/tracker.js")
        assert not rules.matches("https://cdn.com/jquery.js")

    def test_wildcard_pattern(self):
        rules = FilterList.from_text("/ad/banner-*.js")
        assert rules.matches("https://x.com/ad/banner-abc.js")
        assert not rules.matches("https://x.com/ad/image.png")

    def test_separator_caret(self):
        rules = FilterList.from_text("||t.com/px^")
        assert rules.matches("https://t.com/px?cb=1")
        assert rules.matches("https://t.com/px")
        assert not rules.matches("https://t.com/pxx")

    def test_resource_type_option(self):
        rules = FilterList.from_text("||t.com^$image")
        image = MatchContext(resource_type="image")
        script = MatchContext(resource_type="script")
        assert rules.matches("https://t.com/a.gif", image)
        assert not rules.matches("https://t.com/a.js", script)

    def test_matches_domain_relaxed(self):
        rules = FilterList.from_text("||sub.tracker.com/only/this/path")
        # Full-URL match fails for other paths...
        assert not rules.matches("https://sub.tracker.com/other")
        # ...but the relaxed base-domain method flags the domain.
        assert rules.matches_domain("sub.tracker.com")
        assert rules.matches_domain("tracker.com")

    def test_blocked_domains_listing(self):
        rules = FilterList.from_text("||a.com^\n||b.net^$script\n/generic/*")
        assert rules.blocked_domains() == {"a.com", "b.net"}

    def test_start_anchor(self):
        rules = FilterList.from_text("|https://exact.com/start")
        assert rules.matches("https://exact.com/start/page")
        assert not rules.matches("https://other.com/?u=https://exact.com/start")


class TestDisconnect:
    def build(self):
        return DisconnectList([
            DisconnectEntry("Oracle", "analytics",
                            ("addthis.com", "bluekai.com")),
            DisconnectEntry("ExoClick", "advertising", ("exoclick.com",)),
        ])

    def test_lookup_by_subdomain(self):
        entities = self.build()
        assert entities.organization_of("s7.addthis.com") == "Oracle"

    def test_unknown_domain(self):
        assert self.build().organization_of("unknown.com") is None

    def test_category(self):
        assert self.build().category_of("bluekai.com") == "analytics"

    def test_organizations_set(self):
        assert self.build().organizations == {"Oracle", "ExoClick"}

    def test_len_counts_entries(self):
        assert len(self.build()) == 2
