"""Section 5.1.2 / Figure 4 — cookie-synchronization detection.

A sync is detected when a previously observed cookie *value* later appears
verbatim inside a request URL to a different domain.  Following the paper,
values are matched whole — never split on delimiters — so the measurement
is a lower bound.  Matching is implemented by extracting candidate tokens
(query-parameter values and path segments) from each request URL and
looking them up against the set of cookie values seen so far, which keeps
the scan linear in the number of requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..browser.events import CrawlLog
from ..net.url import URLError, parse_url, registrable_domain

__all__ = ["SyncEvent", "SyncReport", "detect_cookie_sync", "MIN_VALUE_LENGTH"]

#: Values shorter than this are too ambiguous to match (avoids false
#: positives on short tokens like "1" or "en").
MIN_VALUE_LENGTH = 8


@dataclass(frozen=True)
class SyncEvent:
    """One observed synchronization: a cookie value shipped to a partner."""

    page_domain: str     # site where it happened
    origin_domain: str   # registrable domain that owned the cookie
    destination: str     # registrable domain receiving the value
    cookie_name: str
    value: str


@dataclass
class SyncReport:
    """Aggregate §5.1.2 findings."""

    events: List[SyncEvent] = field(default_factory=list)
    #: (origin, destination) -> number of cookies observed shipped.
    pair_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    sites: Set[str] = field(default_factory=set)

    @property
    def pair_count(self) -> int:
        return len(self.pair_counts)

    @property
    def origins(self) -> Set[str]:
        return {origin for origin, _ in self.pair_counts}

    @property
    def destinations(self) -> Set[str]:
        return {destination for _, destination in self.pair_counts}

    def heavy_pairs(self, minimum: int = 75) -> Dict[Tuple[str, str], int]:
        """Figure 4's edge set: pairs exchanging at least ``minimum`` cookies."""
        return {
            pair: count for pair, count in self.pair_counts.items()
            if count >= minimum
        }

    def coverage_of(self, sites: Iterable[str]) -> float:
        """Fraction of the given sites on which syncing was observed."""
        sites = list(sites)
        if not sites:
            return 0.0
        return sum(1 for site in sites if site in self.sites) / len(sites)


def _url_tokens(url: str) -> List[str]:
    """Candidate value tokens in a URL: query values and path segments."""
    try:
        parsed = parse_url(url)
    except URLError:
        return []
    tokens = [
        value for value in parsed.query_params().values()
        if len(value) >= MIN_VALUE_LENGTH
    ]
    tokens.extend(
        segment for segment in parsed.path.split("/")
        if len(segment) >= MIN_VALUE_LENGTH
    )
    return tokens


def detect_cookie_sync(log: CrawlLog) -> SyncReport:
    """Scan a crawl log for cookie values reappearing in request URLs."""
    report = SyncReport()
    # value -> (owning registrable domain, cookie name, seq first observed)
    value_owner: Dict[str, Tuple[str, str, int]] = {}

    events = []
    for cookie in log.cookies:
        if len(cookie.value) < MIN_VALUE_LENGTH:
            continue
        events.append((cookie.seq, "cookie", cookie))
    for record in log.requests:
        events.append((record.seq, "request", record))
    events.sort(key=lambda item: item[0])

    for _, kind, payload in events:
        if kind == "cookie":
            key = payload.value
            if key not in value_owner:
                value_owner[key] = (
                    registrable_domain(payload.domain),
                    payload.name,
                    payload.seq,
                )
            continue

        destination = registrable_domain(payload.fqdn)
        for token in _url_tokens(payload.url):
            owner = value_owner.get(token)
            if owner is None:
                continue
            origin_domain, cookie_name, _ = owner
            if origin_domain == destination:
                continue  # not a cross-domain share
            event = SyncEvent(
                page_domain=payload.page_domain,
                origin_domain=origin_domain,
                destination=destination,
                cookie_name=cookie_name,
                value=token,
            )
            report.events.append(event)
            pair = (origin_domain, destination)
            report.pair_counts[pair] = report.pair_counts.get(pair, 0) + 1
            report.sites.add(payload.page_domain)
    return report
