"""v1 → v2 store migration: ``repro store reshard``.

:func:`reshard_store` converts a single-file (v1) crawl store into an
N-shard directory (v2) that :class:`~repro.datastore.store.CrawlStore`
opens transparently.  The conversion preserves every event row *and its
global position*, so cursors over the resharded store yield the exact
row sequence of the source — ``tests/test_sharded_store.py`` asserts
byte-identical study tables across the migration.

Routing matches the live write path (``sha256(site_domain) % N`` of the
*visited* site):

* ``visits`` carry their site domain and route directly;
* ``requests``/``cookies``/``js_calls`` carry no reliable site column
  (a JS call's ``document_host`` may be an iframe's), so they route by
  *slice*: ``run_sites`` records each completed site's per-table counts,
  completed sites are always a position-order prefix (resume preserves
  order), and event rows were appended one site at a time — cumulative
  counts therefore cut the position-ordered stream into per-site slices.

Everything streams through ``fetchmany``; peak memory is one batch of
rows regardless of store size.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Dict, Iterator, List, Sequence, Tuple

from .schema import ensure_schema, stamp_shard
from .serialize import (
    COOKIE_COLUMNS,
    JSCALL_COLUMNS,
    REQUEST_COLUMNS,
    VISIT_COLUMNS,
)
from .store import SHARD_FILE_FORMAT, shard_of_domain

__all__ = ["reshard_store"]

_BATCH = 2048


def _batched(cursor) -> Iterator[tuple]:
    while True:
        rows = cursor.fetchmany(_BATCH)
        if not rows:
            return
        yield from rows


def reshard_store(src_path: str, dst_path: str, *, shards: int) -> List[str]:
    """Convert the v1 store at ``src_path`` into a v2 directory.

    Returns the created shard file paths.  The source is opened
    read-only and left untouched; the destination must not exist.
    """
    if shards < 2:
        raise ValueError("a v2 store needs at least 2 shards")
    if not os.path.isfile(src_path):
        raise ValueError(f"{src_path} is not a v1 single-file store")
    if os.path.exists(dst_path):
        raise ValueError(f"refusing to overwrite {dst_path}")

    src = sqlite3.connect(f"file:{src_path}?mode=ro", uri=True)
    try:
        ensure_schema(src)  # raises SchemaError on version mismatch
        if src.execute(
            "SELECT 1 FROM meta WHERE key='shard_index'"
        ).fetchone():
            raise ValueError(f"{src_path} is already a shard file")

        os.makedirs(dst_path)
        paths = [
            os.path.join(dst_path, SHARD_FILE_FORMAT.format(index=i))
            for i in range(shards)
        ]
        dst = [sqlite3.connect(path) for path in paths]
        try:
            for index, conn in enumerate(dst):
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=OFF")  # bulk load; rebuildable
                ensure_schema(conn)
                stamp_shard(conn, index, shards)
                conn.execute("BEGIN")
            _copy_meta(src, dst)
            for run in src.execute(
                "SELECT id, run_key, kind, country_code, client_ip,"
                " config_json, vantage_json, domains_hash, seq, started_at,"
                " finished_at, stats_json FROM runs ORDER BY id"
            ).fetchall():
                _copy_run(src, dst, shards, run)
            _copy_artifacts(src, dst[0])
            for conn in dst:
                conn.execute("COMMIT")
        finally:
            for conn in dst:
                conn.close()
        return paths
    finally:
        src.close()


def _copy_meta(src: sqlite3.Connection, dst: Sequence[sqlite3.Connection]) -> None:
    row = src.execute(
        "SELECT value FROM meta WHERE key='config_json'"
    ).fetchone()
    if row:
        for conn in dst:
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("config_json", row[0]),
            )


def _copy_run(src: sqlite3.Connection, dst: Sequence[sqlite3.Connection],
              shards: int, run: tuple) -> None:
    (src_id, key, kind, country, client_ip, config_json, vantage_json,
     dh, seq, started_at, finished_at, stats_json) = run

    sites = src.execute(
        "SELECT position, domain, completed, elapsed, requests, cookies,"
        " js_calls FROM run_sites WHERE run_id=? ORDER BY position",
        (src_id,),
    ).fetchall()
    route = {domain: shard_of_domain(domain, shards)
             for _, domain, *_ in sites}

    local_ids: List[int] = []
    for index, conn in enumerate(dst):
        subset = [s for s in sites if route[s[1]] == index]
        elapsed = sum(s[3] or 0.0 for s in subset)
        cursor = conn.execute(
            "INSERT INTO runs (run_key, kind, country_code, client_ip,"
            " config_json, vantage_json, domains_hash, total_sites, seq,"
            " started_at, finished_at, elapsed, stats_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (key, kind, country, client_ip, config_json, vantage_json, dh,
             len(subset), seq, started_at, finished_at, elapsed,
             stats_json if index == 0 else None),
        )
        local_id = cursor.lastrowid
        local_ids.append(local_id)
        conn.executemany(
            "INSERT INTO run_sites VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [(local_id,) + tuple(s) for s in subset],
        )

    # Visits name their site; route each row directly.
    placeholders = ", ".join("?" * (len(VISIT_COLUMNS) + 2))
    for row in _batched(src.execute(
        f"SELECT position, {', '.join(VISIT_COLUMNS)} FROM visits"
        " WHERE run_id=? ORDER BY position", (src_id,),
    )):
        index = route[row[1]]  # site_domain is the first selected column
        dst[index].execute(
            f"INSERT INTO visits VALUES ({placeholders})",
            (local_ids[index],) + tuple(row),
        )

    # The other event tables route by per-site slice (module docstring).
    slices: Dict[str, List[Tuple[int, int, int]]] = {
        "requests": [], "cookies": [], "js_calls": [],
    }
    offsets = {"requests": 0, "cookies": 0, "js_calls": 0}
    for _, domain, completed, _, n_requests, n_cookies, n_js in sites:
        if not completed:
            break  # completed sites are a position-order prefix
        index = route[domain]
        for table, count in (("requests", n_requests), ("cookies", n_cookies),
                             ("js_calls", n_js)):
            start = offsets[table]
            slices[table].append((start, start + count, index))
            offsets[table] = start + count

    for table, columns in (("requests", REQUEST_COLUMNS),
                           ("cookies", COOKIE_COLUMNS),
                           ("js_calls", JSCALL_COLUMNS)):
        placeholders = ", ".join("?" * (len(columns) + 2))
        cuts = slices[table]
        cut = 0
        for n, row in enumerate(_batched(src.execute(
            f"SELECT position, {', '.join(columns)} FROM {table}"
            " WHERE run_id=? ORDER BY position", (src_id,),
        ))):
            while cuts[cut][1] <= n:
                cut += 1
            index = cuts[cut][2]
            dst[index].execute(
                f"INSERT INTO {table} VALUES ({placeholders})",
                (local_ids[index],) + tuple(row),
            )


def _copy_artifacts(src: sqlite3.Connection,
                    shard0: sqlite3.Connection) -> None:
    for row in _batched(src.execute(
        "SELECT artifact_key, payload, created_at FROM artifacts"
    )):
        shard0.execute(
            "INSERT INTO artifacts VALUES (?, ?, ?)", tuple(row)
        )
