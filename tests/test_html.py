"""Unit tests for the HTML substrate (DOM, parser, queries)."""

from repro.html.dom import Element
from repro.html.parser import parse_html
from repro.html.query import (
    body,
    elements_with_keyword,
    find_all,
    find_first,
    head,
    links,
    meta_tags,
    scripts,
)


class TestParser:
    def test_simple_document(self):
        root = parse_html("<html><body><p>hi</p></body></html>")
        paragraph = find_first(root, "p")
        assert paragraph is not None
        assert paragraph.text() == "hi"

    def test_attributes_lowercased(self):
        root = parse_html('<div ID="x" CLASS="a b"></div>')
        div = find_first(root, "div")
        assert div.id == "x"
        assert div.classes == ["a", "b"]

    def test_void_elements_do_not_nest(self):
        root = parse_html("<img src='a.png'><p>after</p>")
        paragraph = find_first(root, "p")
        assert paragraph.parent.tag == "html"

    def test_unclosed_tags_recovered(self):
        root = parse_html("<div><p>one<p>two</div><span>out</span>")
        paragraphs = find_all(root, "p")
        assert [p.text() for p in paragraphs] == ["one", "two"]
        assert find_first(root, "span").text() == "out"

    def test_stray_end_tag_ignored(self):
        root = parse_html("</div><p>ok</p>")
        assert find_first(root, "p").text() == "ok"

    def test_self_closing_syntax(self):
        root = parse_html('<link rel="stylesheet" href="x.css"/><p>t</p>')
        link = find_first(root, "link")
        assert link.get("href") == "x.css"

    def test_entity_decoding(self):
        root = parse_html("<p>a &amp; b</p>")
        assert find_first(root, "p").text() == "a & b"

    def test_html_attrs_merged_into_root(self):
        root = parse_html('<html lang="ru"><body></body></html>')
        assert root.get("lang") == "ru"
        # No nested <html> element.
        assert sum(1 for e in root.iter() if e.tag == "html") == 1


class TestDom:
    def test_style_parsing(self):
        root = parse_html('<div style="position: FIXED; color:red"></div>')
        div = find_first(root, "div")
        assert div.style["position"] == "fixed"
        assert div.is_floating

    def test_not_floating_by_default(self):
        root = parse_html("<div></div>")
        assert not find_first(root, "div").is_floating

    def test_sticky_and_absolute_float(self):
        for position in ("absolute", "sticky"):
            root = parse_html(f'<div style="position:{position}"></div>')
            assert find_first(root, "div").is_floating

    def test_ancestors_and_grandparent(self):
        root = parse_html("<div><section><p>deep</p></section></div>")
        paragraph = find_first(root, "p")
        chain = [a.tag for a in paragraph.ancestors()]
        assert chain == ["section", "div", "html"]
        assert paragraph.grandparent.tag == "div"

    def test_own_text_vs_descendant_text(self):
        root = parse_html("<div>outer <span>inner</span></div>")
        div = find_first(root, "div")
        assert div.own_text() == "outer"
        assert div.text() == "outer inner"

    def test_depth(self):
        root = parse_html("<a><b><c></c></b></a>")
        c = find_first(root, "c")
        assert c.depth() == 3


class TestQueries:
    SAMPLE = """
    <html><head><title>t</title><meta name="rating" content="RTA-5042"></head>
    <body>
      <a href="/privacy">Privacy Policy</a>
      <a>no-href anchor</a>
      <script src="https://t.com/a.js"></script>
      <div style="position:fixed"><button>Enter</button>
        <p>You must be 18 years or older</p></div>
    </body></html>
    """

    def test_links_require_href(self):
        assert len(links(parse_html(self.SAMPLE))) == 1

    def test_scripts(self):
        found = scripts(parse_html(self.SAMPLE))
        assert len(found) == 1
        assert found[0].get("src") == "https://t.com/a.js"

    def test_meta_tags_by_name(self):
        tags = meta_tags(parse_html(self.SAMPLE), "rating")
        assert len(tags) == 1
        assert tags[0].get("content") == "RTA-5042"

    def test_head_and_body(self):
        root = parse_html(self.SAMPLE)
        assert head(root).tag == "head"
        assert body(root).tag == "body"

    def test_keyword_matches_own_text_only(self):
        root = parse_html(self.SAMPLE)
        matches = elements_with_keyword(root, ["enter"])
        assert any(e.tag == "button" for e in matches)

    def test_find_all_with_predicate(self):
        root = parse_html(self.SAMPLE)
        floats = find_all(root, predicate=lambda e: e.is_floating)
        assert len(floats) == 1
        assert floats[0].tag == "div"
