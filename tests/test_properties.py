"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocklists.easylist import FilterList
from repro.core.cookie_sync import _url_tokens
from repro.net.cookies import CookieJar, parse_set_cookie
from repro.net.url import URL, parse_url, registrable_domain
from repro.text.levenshtein import levenshtein_distance, similarity
from repro.text.tfidf import TfIdfVectorizer, cosine_similarity
from repro.text.tokenize import tokenize
from repro.util import stable_hash, token_for

label = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=8)
hostname = st.builds(
    lambda labels: ".".join(labels),
    st.lists(label, min_size=2, max_size=4),
)
words = st.text(alphabet=string.ascii_letters + " ", min_size=0, max_size=200)


class TestUrlProperties:
    @given(hostname, st.sampled_from(["http", "https"]))
    def test_parse_str_round_trip(self, host, scheme):
        url = URL(scheme, host, None, "/p", "a=1")
        assert parse_url(str(url)) == url

    @given(hostname)
    def test_registrable_domain_is_suffix(self, host):
        base = registrable_domain(host)
        assert host == base or host.endswith("." + base)

    @given(hostname)
    def test_registrable_domain_idempotent(self, host):
        base = registrable_domain(host)
        assert registrable_domain(base) == base


class TestLevenshteinProperties:
    @given(st.text(max_size=30), st.text(max_size=30))
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(st.text(max_size=30))
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0
        assert similarity(a, a) == 1.0

    @given(st.text(max_size=20), st.text(max_size=20), st.text(max_size=20))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= \
            levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= similarity(a, b) <= 1.0

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_distance_bounded_by_longer(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))


class TestTfIdfProperties:
    @given(st.lists(words, min_size=2, max_size=6))
    def test_cosine_bounds(self, corpus):
        vectorizer = TfIdfVectorizer()
        vectors = vectorizer.fit_transform(corpus)
        for i in range(len(vectors)):
            for j in range(len(vectors)):
                value = cosine_similarity(vectors[i], vectors[j])
                assert -1e-9 <= value <= 1.0 + 1e-9

    @given(words)
    def test_self_similarity(self, document):
        vectorizer = TfIdfVectorizer()
        vectors = vectorizer.fit_transform([document, "other words here"])
        if vectors[0]:
            assert cosine_similarity(vectors[0], vectors[0]) == \
                __import__("pytest").approx(1.0)

    @given(st.text(max_size=300))
    def test_tokens_are_lowercase(self, text):
        for token in tokenize(text):
            assert token == token.lower()


class TestCookieJarProperties:
    cookie_name = st.text(alphabet=string.ascii_lowercase, min_size=1,
                          max_size=8)
    cookie_value = st.text(alphabet=string.ascii_letters + string.digits,
                           min_size=1, max_size=30)

    @given(st.lists(st.tuples(cookie_name, cookie_value), min_size=1,
                    max_size=20))
    def test_jar_size_bounded_by_distinct_names(self, pairs):
        jar = CookieJar()
        for name, value in pairs:
            cookie = parse_set_cookie(f"{name}={value}", request_host="t.com")
            jar.store(cookie)
        assert len(jar) == len({name for name, _ in pairs})

    @given(cookie_name, cookie_value)
    def test_stored_cookie_always_sent_back(self, name, value):
        jar = CookieJar()
        jar.store(parse_set_cookie(f"{name}={value}", request_host="t.com"))
        header = jar.cookie_header_for(parse_url("https://t.com/"))
        assert header == f"{name}={value}"

    @given(st.lists(hostname, min_size=1, max_size=10))
    def test_cookies_never_leak_across_unrelated_hosts(self, hosts):
        jar = CookieJar()
        for index, host in enumerate(hosts):
            jar.store(parse_set_cookie(f"c{index}=v{index}",
                                       request_host=host))
        for host in hosts:
            header = jar.cookie_header_for(parse_url(f"https://{host}/")) or ""
            for index, other in enumerate(hosts):
                if other != host:
                    assert f"c{index}=v{index}" not in header or \
                        other == host


class TestDeterminismProperties:
    @given(st.lists(st.text(max_size=20), min_size=1, max_size=5))
    def test_stable_hash_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)

    @given(st.integers(min_value=0, max_value=200),
           st.text(max_size=20))
    def test_token_length_exact(self, length, seed_text):
        token = token_for(length, seed_text)
        assert len(token) == length
        assert all(c in string.ascii_lowercase + string.digits for c in token)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_token_differs_across_keys(self, a, b):
        if a != b:
            assert token_for(16, a) != token_for(16, b)


class TestFilterListProperties:
    @given(hostname)
    def test_domain_rule_matches_all_subdomains(self, host):
        base = registrable_domain(host)
        rules = FilterList.from_text(f"||{base}^")
        assert rules.matches(f"https://{host}/anything")
        assert rules.matches_domain(host)

    @given(hostname, hostname)
    def test_unrelated_domains_unmatched(self, host, other):
        if registrable_domain(host) == registrable_domain(other):
            return
        rules = FilterList.from_text(f"||{registrable_domain(host)}^")
        assert not rules.matches(f"https://{other}/x")


class TestSyncTokenProperties:
    @given(st.dictionaries(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
        st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=8, max_size=24),
        min_size=0, max_size=5,
    ))
    def test_query_values_extracted(self, params):
        query = "&".join(f"{k}={v}" for k, v in params.items())
        url = f"https://x.com/p?{query}" if query else "https://x.com/p"
        tokens = set(_url_tokens(url))
        for value in params.values():
            assert value in tokens


def _exact_levenshtein(a, b):
    """Reference unbanded DP, independent of the production implementation."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]


class TestBandedLevenshteinProperties:
    """Satellite: the banded DP must agree with the exact DP — exact when
    the distance is within the band, ``max_distance + 1`` when beyond."""

    @given(st.text(max_size=25), st.text(max_size=25),
           st.integers(min_value=0, max_value=30))
    def test_banded_agrees_with_exact_dp(self, a, b, k):
        exact = _exact_levenshtein(a, b)
        banded = levenshtein_distance(a, b, max_distance=k)
        if exact <= k:
            assert banded == exact
        else:
            assert banded == k + 1

    @given(st.text(max_size=25), st.text(max_size=25))
    def test_unbanded_agrees_with_exact_dp(self, a, b):
        assert levenshtein_distance(a, b) == _exact_levenshtein(a, b)

    @given(st.text(max_size=25), st.text(max_size=25))
    def test_zero_band_is_equality_test(self, a, b):
        banded = levenshtein_distance(a, b, max_distance=0)
        assert (banded == 0) == (a == b)

    def test_negative_band_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            levenshtein_distance("a", "b", max_distance=-1)

    @given(hostname, hostname)
    def test_domains_similar_matches_unbanded_formula(self, a, b):
        from repro.text.levenshtein import domains_similar

        def reference(x, y, threshold=0.7):
            x, y = x.lower(), y.lower()
            if x.startswith("www."):
                x = x[4:]
            if y.startswith("www."):
                y = y[4:]
            if x == y:
                return True
            return similarity(x, y) > threshold

        assert domains_similar(a, b) == reference(a, b)

    @given(hostname)
    def test_domains_similar_www_invariant(self, host):
        from repro.text.levenshtein import domains_similar

        assert domains_similar("www." + host, host)
