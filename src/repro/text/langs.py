"""Multilingual keyword sets used by the interaction crawler.

The paper's Selenium crawler searches for age-gate buttons, privacy-policy
links, and account/premium cues in the eight most common default languages
of its corpus: English, Spanish, French, Portuguese, Russian, Italian,
German, and Romanian (Section 3.1, footnote 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

__all__ = [
    "LANGUAGES",
    "AGE_GATE_BUTTON_KEYWORDS",
    "PRIVACY_LINK_KEYWORDS",
    "ACCOUNT_KEYWORDS",
    "PREMIUM_KEYWORDS",
    "COOKIE_BANNER_KEYWORDS",
    "AGE_WARNING_PHRASES",
    "all_keywords",
    "contains_keyword",
]

LANGUAGES = ("en", "es", "fr", "pt", "ru", "it", "de", "ro")

#: Affirmative button labels that pass an age gate ("Yes", "Enter", "Agree",
#: "Continue", "Accept" in the paper).
AGE_GATE_BUTTON_KEYWORDS: Dict[str, FrozenSet[str]] = {
    "en": frozenset({"yes", "enter", "agree", "continue", "accept", "i am 18"}),
    "es": frozenset({"sí", "si", "entrar", "acepto", "continuar", "aceptar"}),
    "fr": frozenset({"oui", "entrer", "j'accepte", "continuer", "accepter"}),
    "pt": frozenset({"sim", "entrar", "concordo", "continuar", "aceitar"}),
    "ru": frozenset({"да", "войти", "согласен", "продолжить", "принять"}),
    "it": frozenset({"sì", "entra", "accetto", "continua", "accettare"}),
    "de": frozenset({"ja", "eintreten", "zustimmen", "weiter", "akzeptieren"}),
    "ro": frozenset({"da", "intră", "sunt de acord", "continuă", "accept"}),
}

#: Keywords identifying a privacy-policy link ("Privacy" and "Policy").
PRIVACY_LINK_KEYWORDS: Dict[str, FrozenSet[str]] = {
    "en": frozenset({"privacy", "policy"}),
    "es": frozenset({"privacidad", "política"}),
    "fr": frozenset({"confidentialité", "politique"}),
    "pt": frozenset({"privacidade", "política"}),
    "ru": frozenset({"конфиденциальности", "политика"}),
    "it": frozenset({"privacy", "politica"}),
    "de": frozenset({"datenschutz", "richtlinie"}),
    "ro": frozenset({"confidențialitate", "politica"}),
}

#: Account-creation cues ("Log In", "Sign Up") for Section 4.1's business
#: model classification.
ACCOUNT_KEYWORDS: Dict[str, FrozenSet[str]] = {
    "en": frozenset({"log in", "login", "sign up", "signup", "register", "join now"}),
    "es": frozenset({"iniciar sesión", "registrarse", "regístrate"}),
    "fr": frozenset({"connexion", "s'inscrire", "inscription"}),
    "pt": frozenset({"entrar na conta", "cadastre-se", "registrar"}),
    "ru": frozenset({"вход", "регистрация"}),
    "it": frozenset({"accedi", "registrati", "iscriviti"}),
    "de": frozenset({"anmelden", "registrieren", "konto erstellen"}),
    "ro": frozenset({"autentificare", "înregistrare"}),
}

#: Premium/subscription cues.
PREMIUM_KEYWORDS: Dict[str, FrozenSet[str]] = {
    "en": frozenset({"premium", "upgrade", "membership", "subscribe"}),
    "es": frozenset({"premium", "suscripción", "suscríbete"}),
    "fr": frozenset({"premium", "abonnement", "s'abonner"}),
    "pt": frozenset({"premium", "assinatura", "assinar"}),
    "ru": frozenset({"премиум", "подписка"}),
    "it": frozenset({"premium", "abbonamento", "abbonati"}),
    "de": frozenset({"premium", "abo", "mitgliedschaft"}),
    "ro": frozenset({"premium", "abonament", "abonează-te"}),
}

#: Cookie-consent banner phrases (Section 7.1 banner detector).
COOKIE_BANNER_KEYWORDS: Dict[str, FrozenSet[str]] = {
    "en": frozenset({"cookies", "this website uses cookies", "cookie policy"}),
    "es": frozenset({"cookies", "este sitio utiliza cookies", "política de cookies"}),
    "fr": frozenset({"cookies", "ce site utilise des cookies"}),
    "pt": frozenset({"cookies", "este site usa cookies"}),
    "ru": frozenset({"cookie", "файлы cookie"}),
    "it": frozenset({"cookie", "questo sito utilizza cookie"}),
    "de": frozenset({"cookies", "diese website verwendet cookies"}),
    "ro": frozenset({"cookie-uri", "acest site folosește cookie-uri"}),
}

#: Warning phrases that distinguish an age gate from an ordinary dialog.
AGE_WARNING_PHRASES: Dict[str, FrozenSet[str]] = {
    "en": frozenset(
        {"18 years", "adults only", "adult content", "age verification", "of legal age"}
    ),
    "es": frozenset({"18 años", "solo adultos", "contenido para adultos"}),
    "fr": frozenset({"18 ans", "réservé aux adultes", "contenu adulte"}),
    "pt": frozenset({"18 anos", "somente adultos", "conteúdo adulto"}),
    "ru": frozenset({"18 лет", "только для взрослых"}),
    "it": frozenset({"18 anni", "solo adulti", "contenuti per adulti"}),
    "de": frozenset({"18 jahre", "nur für erwachsene"}),
    "ro": frozenset({"18 ani", "doar adulți", "conținut pentru adulți"}),
}


def all_keywords(table: Dict[str, FrozenSet[str]]) -> Set[str]:
    """Flatten a per-language table into one keyword set."""
    merged: Set[str] = set()
    for keywords in table.values():
        merged |= keywords
    return merged


def contains_keyword(text: str, table: Dict[str, FrozenSet[str]]) -> bool:
    """True if ``text`` contains any keyword from any language."""
    lowered = text.lower()
    return any(keyword in lowered for keyword in all_keywords(table))


def matching_keywords(text: str, table: Dict[str, FrozenSet[str]]) -> List[str]:
    """All keywords (any language) found in ``text``, sorted."""
    lowered = text.lower()
    return sorted(keyword for keyword in all_keywords(table) if keyword in lowered)
