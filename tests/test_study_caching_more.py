"""Additional Study-level integration checks (caching, cross-country)."""

import pytest

from repro import Study, UniverseConfig


class TestStudyExtensionsCaching:
    def test_extension_results_cached(self, study):
        assert study.subscription_tracking() is study.subscription_tracking()
        assert study.cross_border() is study.cross_border()

    def test_banners_cached_per_country(self, study):
        assert study.banners("US") is study.banners("US")
        assert study.banners("US") is not study.banners("ES")

    def test_malware_cached_per_country(self, study):
        assert study.malware("RU") is study.malware("RU")
        assert study.malware("RU") is not study.malware("ES")

    def test_age_verification_cached_by_params(self, study):
        first = study.age_verification(top_n=25)
        second = study.age_verification(top_n=25)
        assert first is second


class TestCrossCountryCrawls:
    def test_country_logs_differ_in_content(self, study):
        es_fqdns = {record.fqdn for record in study.porn_log("ES").requests}
        ru_fqdns = {record.fqdn for record in study.porn_log("RU").requests}
        assert es_fqdns != ru_fqdns
        assert es_fqdns - ru_fqdns       # Spain sees ES-only services

    def test_ru_crawl_has_blocked_visits(self, study, universe):
        blocked_truth = {
            d for d, s in universe.porn_sites.items()
            if "RU" in s.blocked_countries and s.responsive
            and not s.crawl_flaky
        }
        if not blocked_truth:
            pytest.skip("no RU-blocked sites at this scale")
        ru_log = study.porn_log("RU")
        failed_451 = {
            v.site_domain for v in ru_log.visits
            if not v.success and v.status == 451
        }
        assert failed_451 == blocked_truth

    def test_wildcard_hosts_differ_per_country(self, study, universe):
        wildcard_ads = [
            d for d, s in universe.services.items()
            if s.wildcard_subdomains and s.category == "advertising"
        ]
        if not wildcard_ads:
            pytest.skip("no wildcard ad services at this scale")
        domain = wildcard_ads[0]
        es_hosts = {r.fqdn for r in study.porn_log("ES").requests
                    if r.fqdn.endswith(domain)}
        ru_hosts = {r.fqdn for r in study.porn_log("RU").requests
                    if r.fqdn.endswith(domain)}
        if es_hosts and ru_hosts:
            assert es_hosts != ru_hosts

    def test_same_corpus_each_country(self, study):
        es_sites = {v.site_domain for v in study.porn_log("ES").visits}
        ru_sites = {v.site_domain for v in study.porn_log("RU").visits}
        assert es_sites == ru_sites


class TestStudyDeterminism:
    def test_two_studies_same_seed_same_results(self):
        config = UniverseConfig(seed=77, scale=0.02)
        first = Study.build(config)
        second = Study.build(config)
        assert first.corpus_domains() == second.corpus_domains()
        table_a = first.table2()
        table_b = second.table2()
        assert table_a.porn_third_party == table_b.porn_third_party
        assert table_a.porn_ats == table_b.porn_ats
        stats_a = first.cookie_stats()
        stats_b = second.cookie_stats()
        assert stats_a.total_cookies == stats_b.total_cookies
        assert stats_a.ip_cookies == stats_b.ip_cookies

    def test_crawl_logs_byte_identical(self):
        config = UniverseConfig(seed=78, scale=0.01)
        first = Study.build(config)
        second = Study.build(config)
        log_a = first.porn_log()
        log_b = second.porn_log()
        assert [r.url for r in log_a.requests] == \
            [r.url for r in log_b.requests]
        assert [(c.name, c.value) for c in log_a.cookies] == \
            [(c.name, c.value) for c in log_b.cookies]
