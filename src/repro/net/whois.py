"""WHOIS registration data for the synthetic universe.

Section 4.2(3) (and §4.1 for site owners) complements certificate-based
attribution with WHOIS registrant organizations — the only evidence
available for domains that do not serve TLS.  Real-world WHOIS is heavily
privacy-redacted, which the model reproduces: most porn-site records hide
their registrant (that is why the paper attributes only 4% of sites to a
company), while third-party ad-tech companies usually register openly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .url import registrable_domain

__all__ = ["WhoisRecord", "WhoisRegistry", "PRIVACY_REDACTED"]

PRIVACY_REDACTED = "REDACTED FOR PRIVACY"


@dataclass(frozen=True)
class WhoisRecord:
    """One registration record."""

    domain: str
    registrant_org: str = PRIVACY_REDACTED
    registrar: str = "Synthetic Registrar LLC"
    country: str = ""

    @property
    def is_redacted(self) -> bool:
        return self.registrant_org == PRIVACY_REDACTED or not self.registrant_org


class WhoisRegistry:
    """Lookup table of registration records by registrable domain."""

    def __init__(self) -> None:
        self._records: Dict[str, WhoisRecord] = {}
        self._queries = 0

    def register(self, domain: str, *, organization: Optional[str] = None,
                 country: str = "") -> WhoisRecord:
        """Create (or overwrite) the record for a domain."""
        base = registrable_domain(domain)
        record = WhoisRecord(
            domain=base,
            registrant_org=organization if organization else PRIVACY_REDACTED,
            country=country,
        )
        self._records[base] = record
        return record

    def clone(self) -> "WhoisRegistry":
        """An independent registry with the same records (fresh counters).

        Epoch evolution copies site records verbatim instead of re-deriving
        them — the original derivation consumes order-sensitive RNG draws.
        """
        copy = WhoisRegistry()
        copy._records = dict(self._records)
        return copy

    def lookup(self, domain: str) -> Optional[WhoisRecord]:
        """The record for a domain's registrable base, if registered."""
        self._queries += 1
        return self._records.get(registrable_domain(domain))

    def organization_of(self, domain: str) -> Optional[str]:
        """The registrant organization, or ``None`` when redacted/unknown."""
        record = self.lookup(domain)
        if record is None or record.is_redacted:
            return None
        return record.registrant_org

    @property
    def query_count(self) -> int:
        return self._queries

    def __len__(self) -> int:
        return len(self._records)
