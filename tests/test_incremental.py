"""Incremental map/merge analysis: parity, caching, and invalidation.

Pins the contracts the aggregate cache rests on:

* every ``merge(map(site_rows))`` equals its monolithic reference —
  object-equal *and* identical through the rendered report bytes (the
  merges replay the reference insertion order, so even set/dict
  iteration ties line up);
* a second study over the same store serves every partial from the
  cache (zero misses) and still renders identical bytes;
* across an evolved epoch, exactly the sites whose analysis content
  hash changed are re-mapped — spliced sites are cache hits;
* bumping an ``ANALYSIS_VERSIONS`` entry orphans that analysis's
  cached partials (full recompute, same bytes);
* a corrupted aggregate row degrades to a recompute — never a wrong
  table;
* satellites: per-analysis wall timings under the prefetch pool, store
  open/scan counters, CLI ``--incremental`` / ``--stats`` / ``store
  info -v`` surfaces.
"""

import dataclasses
import os
import sqlite3

import pytest

from repro import Study, UniverseConfig
from repro.__main__ import main
from repro.core import mapmerge
from repro.datastore import (
    AggregateStore,
    CrawlStore,
    IncrementalRunAnalyzer,
    aggregates_path,
)
from repro.reporting.sections import render_section
from repro.webgen.builder import build_universe
from repro.webgen.evolve import analysis_hash_index, evolve_universe

SECTIONS = ("corpus", "table2", "table3", "figure3", "table4", "figure4",
            "table5", "table6", "malware")


@pytest.fixture(scope="module")
def inc_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("incremental")


@pytest.fixture(scope="module")
def epoch0_store(inc_dir, universe):
    path = str(inc_dir / "store")
    study = Study(universe, store=path)
    study.porn_log()
    study.porn_log("US")           # table8 compares ES vs US banners
    study.regular_log()
    study.inspections()            # `repro report` needs the full pass
    return path


@pytest.fixture(scope="module")
def evolved(universe):
    return evolve_universe(universe)


@pytest.fixture(scope="module")
def epoch1_store(inc_dir, evolved, epoch0_store):
    path = epoch0_store + "-e1"
    study = Study(evolved, store=path, baseline_store=epoch0_store)
    study.porn_log()
    study.regular_log()
    return path


@pytest.fixture(scope="module")
def reference_sections(universe, epoch0_store):
    """Monolithic store-only render: the byte-identity baseline."""
    study = Study(_rebuild(universe), store=epoch0_store, store_only=True)
    return {name: render_section(study, universe.config.scale, name)
            for name in SECTIONS}


def _rebuild(universe):
    """A fresh universe equal to ``universe`` (no shared memo state)."""
    return build_universe(universe.config)


def _incremental_study(universe, store_path, cache=None):
    return Study(_rebuild(universe), store=store_path, store_only=True,
                 aggregate_cache=cache
                 if cache is not None else aggregates_path(store_path))


def _render_all(study, scale):
    return {name: render_section(study, scale, name) for name in SECTIONS}


class TestMapMergeParity:
    """merge(map(per-site rows)) == the monolithic references."""

    @pytest.fixture(scope="class")
    def split(self, study):
        log = study.porn_log()
        domains = study.corpus_domains()
        vis = {d: [] for d in domains}
        req = {d: [] for d in domains}
        coo = {d: [] for d in domains}
        js = {d: [] for d in domains}
        for v in log.visits:
            vis[v.site_domain].append(v)
        for r in log.requests:
            req[r.page_domain].append(r)
        for c in log.cookies:
            coo[c.page_domain].append(c)
        for call in log.js_calls:
            js[call.document_host].append(call)
        return domains, vis, req, coo, js

    def test_labels(self, study, split):
        domains, _vis, req, _coo, _js = split
        ref = study.porn_labels()
        parts = [mapmerge.map_labels(
            req[d], cert_lookup=study.universe.certificate_for)
            for d in domains]
        got = mapmerge.merge_labels(parts)
        assert got == ref
        # Iteration order too: figure3's tie-break leaks set order.
        assert list(got.third_party_direct) == list(ref.third_party_direct)
        for page in ref.third_party_direct:
            assert list(got.third_party_direct[page]) == \
                list(ref.third_party_direct[page])
        for page in ref.third_party_dynamic:
            assert list(got.third_party_dynamic[page]) == \
                list(ref.third_party_dynamic[page])

    def test_ats(self, study, split):
        domains, _vis, req, _coo, _js = split
        ref = study.porn_ats()
        parts = [mapmerge.map_ats(req[d], study.ats_classifier())
                 for d in domains]
        got = mapmerge.merge_ats(
            parts,
            third_party_fqdns=study.porn_labels().all_third_party_fqdns)
        assert list(got.ats_fqdns) == list(ref.ats_fqdns)
        assert list(got.ats_domains_relaxed) == \
            list(ref.ats_domains_relaxed)
        assert list(got.per_page) == list(ref.per_page)
        for page in ref.per_page:
            assert list(got.per_page[page]) == list(ref.per_page[page])

    def test_cookies(self, study, split):
        domains, vis, _req, coo, _js = split
        ref = study.cookie_stats()
        ats = study.porn_ats()
        from repro.net.url import registrable_domain
        ats_bases = {registrable_domain(f)
                     for f in ats.ats_fqdns} | ats.ats_domains_relaxed
        regular_bases = {
            registrable_domain(f)
            for f in study.regular_labels().all_third_party_fqdns
        }
        parts = [mapmerge.map_cookies(vis[d], coo[d],
                                      client_ip=study.porn_log().client_ip)
                 for d in domains]
        got = mapmerge.merge_cookies(parts, ats_domains=ats_bases,
                                     regular_web_domains=regular_bases)
        assert got == ref
        assert list(got.popular_cookies) == list(ref.popular_cookies)
        assert list(got.ip_cookie_domains) == list(ref.ip_cookie_domains)

    def test_https(self, study, split):
        domains, vis, req, coo, _js = split
        ref = study.https_report()
        labels_parts = [mapmerge.map_labels(
            req[d], cert_lookup=study.universe.certificate_for)
            for d in domains]
        parts = [mapmerge.map_https(vis[d], req[d], coo[d],
                                    client_ip=study.porn_log().client_ip,
                                    labels_partial=lp)
                 for d, lp in zip(domains, labels_parts)]
        got = mapmerge.merge_https(parts,
                                   popularity=study.crawled_popularity())
        assert got == ref
        assert list(got.not_fully_https_sites) == \
            list(ref.not_fully_https_sites)

    def test_banners(self, study, split):
        domains, vis, _req, _coo, _js = split
        ref = study.banners()
        got = mapmerge.merge_banners(
            [mapmerge.map_banners(vis[d]) for d in domains],
            corpus_size=len(study.corpus_domains()))
        assert got.observations == ref.observations
        assert got.sites_checked == ref.sites_checked

    def test_sync(self, study, split):
        domains, _vis, req, coo, _js = split
        ref = study.cookie_sync()
        got = mapmerge.merge_sync(
            [mapmerge.map_sync(coo[d], req[d]) for d in domains])
        assert got.events == ref.events
        assert list(got.pair_counts) == list(ref.pair_counts)
        assert got.pair_counts == ref.pair_counts
        assert list(got.sites) == list(ref.sites)

    def test_fingerprinting(self, study, split):
        domains, _vis, _req, _coo, js = split
        ref = study.fingerprinting()
        got = mapmerge.merge_fingerprinting(
            [mapmerge.map_jsapi(js[d]) for d in domains],
            url_blocklisted=study.ats_classifier().matches_url)
        assert got == ref
        assert [s.script_url for s in got.scripts] == \
            [s.script_url for s in ref.scripts]

    def test_malware(self, study, split):
        domains, vis, _req, _coo, js = split
        ref = study.malware()
        got = mapmerge.merge_malware(
            [mapmerge.map_visits(vis[d]) for d in domains],
            [mapmerge.map_jsapi(js[d]) for d in domains],
            labels=study.porn_labels(),
            scanner=lambda domain: study.universe.scanner_hits(domain, "ES"),
        )
        assert got == ref
        assert list(got.sites_with_malicious_third_parties) == \
            list(ref.sites_with_malicious_third_parties)
        assert list(got.miner_services) == list(ref.miner_services)


class TestAggregateCache:
    def test_cold_run_renders_identical_bytes(self, universe, epoch0_store,
                                              reference_sections, inc_dir):
        cache = AggregateStore(str(inc_dir / "cold.sqlite"))
        study = _incremental_study(universe, epoch0_store, cache)
        assert _render_all(study, universe.config.scale) == \
            reference_sections
        assert cache.stats.misses > 0          # nothing was cached yet
        assert cache.row_count() > 0

    def test_warm_run_is_all_hits(self, universe, epoch0_store,
                                  reference_sections):
        warm = _incremental_study(universe, epoch0_store)
        first = warm.aggregate_cache.stats
        _render_all(warm, universe.config.scale)
        if first.misses:                       # first module use: warm it
            again = _incremental_study(universe, epoch0_store)
            _render_all(again, universe.config.scale)
            stats = again.aggregate_cache.stats
        else:
            stats = first
        assert stats.misses == 0
        assert stats.hits > 0

    def test_warm_tables_identical(self, universe, epoch0_store,
                                   reference_sections):
        study = _incremental_study(universe, epoch0_store)
        assert _render_all(study, universe.config.scale) == \
            reference_sections

    def test_epoch_churn_misses_only_changed_sites(self, universe, evolved,
                                                   epoch0_store,
                                                   epoch1_store):
        # Warm the cache from epoch 0 through the shared cache file.
        cache_path = aggregates_path(epoch1_store)
        assert cache_path == aggregates_path(epoch0_store)
        warm = _incremental_study(universe, epoch0_store)
        _render_all(warm, universe.config.scale)

        e1 = _rebuild(evolved)
        study = Study(e1, store=epoch1_store, store_only=True,
                      aggregate_cache=cache_path)
        missed = set()
        cache = study.aggregate_cache
        original_get_many = cache.get_many

        def recording_get_many(key, version, wanted):
            found = original_get_many(key, version, wanted)
            missed.update(set(wanted) - set(found))
            return found

        cache.get_many = recording_get_many
        sections = _render_all(study, evolved.config.scale)

        reference = Study(_rebuild(evolved), store=epoch1_store,
                          store_only=True)
        assert sections == _render_all(reference, evolved.config.scale)

        h0 = analysis_hash_index(_rebuild(universe))
        h1 = analysis_hash_index(_rebuild(evolved))
        # Restrict to sites with a spec in at least one epoch: sanitize
        # also caches spec-less keyword candidates under the "absent"
        # sentinel, which the hash indexes cannot compare.
        specced = {d for d in missed
                   if h0.hash_of(d) is not None
                   or h1.hash_of(d) is not None}
        assert missed, "an evolved epoch should churn some sites"
        # Every specced missed site must have actually changed content —
        # spliced (hash-stable) sites are cache hits by construction.
        stale = {d for d in specced if h0.hash_of(d) == h1.hash_of(d)}
        assert not stale, f"spliced sites must be cache hits: {stale}"
        # And the vast majority of lookups were hits.
        stats = cache.stats
        assert stats.misses < stats.lookups / 2

    def test_version_bump_forces_full_recompute(self, universe,
                                                epoch0_store,
                                                reference_sections):
        warm = _incremental_study(universe, epoch0_store)
        _render_all(warm, universe.config.scale)

        mapmerge.ANALYSIS_VERSIONS["labels"] += 1
        try:
            study = _incremental_study(universe, epoch0_store)
            sections = _render_all(study, universe.config.scale)
            assert sections == reference_sections
            stats = study.aggregate_cache.stats
            assert stats.misses > 0            # labels partials orphaned
        finally:
            mapmerge.ANALYSIS_VERSIONS["labels"] -= 1

    def test_corrupt_row_degrades_to_recompute(self, universe, epoch0_store,
                                               reference_sections):
        warm = _incremental_study(universe, epoch0_store)
        _render_all(warm, universe.config.scale)

        cache_path = aggregates_path(epoch0_store)
        with sqlite3.connect(cache_path) as conn:
            count = conn.execute(
                "UPDATE analysis_aggregates SET payload=X'00DEAD' WHERE "
                "rowid IN (SELECT rowid FROM analysis_aggregates LIMIT 7)"
            ).rowcount
        assert count == 7

        study = _incremental_study(universe, epoch0_store)
        sections = _render_all(study, universe.config.scale)
        assert sections == reference_sections  # never a wrong table
        stats = study.aggregate_cache.stats
        assert stats.corrupt > 0
        assert stats.misses >= stats.corrupt

    def test_aggregates_path_layouts(self, tmp_path):
        # v1 single-file store: a sibling file.
        assert aggregates_path(str(tmp_path / "s.db")) == \
            str(tmp_path / "s.db.aggregates")
        # epoch siblings share the base store's cache.
        assert aggregates_path(str(tmp_path / "s.db-e3")) == \
            str(tmp_path / "s.db.aggregates")
        # sharded (directory) store: inside the directory.
        shard_dir = tmp_path / "sharded"
        shard_dir.mkdir()
        assert aggregates_path(str(shard_dir)) == \
            str(shard_dir / "aggregates.sqlite")

    def test_engine_rejects_unknown_analysis(self, universe, epoch0_store,
                                             vantage_points, study):
        engine = IncrementalRunAnalyzer(
            CrawlStore(epoch0_store), _rebuild(universe), None,
            vantage=vantage_points.point("ES"), kind="openwpm:porn",
            domains=study.corpus_domains(), keep_html=True,
            classifier=study.ats_classifier(),
            cert_lookup=universe.certificate_for,
        )
        with pytest.raises(ValueError):
            engine.partials(("nonsense",))


class TestSatellites:
    def test_analysis_timings_under_prefetch(self, universe):
        study = Study(_rebuild(universe), parallelism=2)
        study.run_all()
        assert "table2" in study.analysis_timings
        assert "cookie_stats" in study.analysis_timings
        # Real wall time, not a near-zero memo read: at least one
        # analysis did measurable work inside the pool.
        assert max(study.analysis_timings.values()) > 0.001

    def test_analysis_timings_serial(self, universe):
        study = Study(_rebuild(universe), parallelism=1)
        study.table2()                 # outside run_all: not timed
        study.run_all()
        assert set(study.analysis_timings) >= {"table2", "https",
                                               "cookie_stats"}

    def test_store_io_stats_counters(self, universe, epoch0_store):
        store = CrawlStore(epoch0_store)
        assert store.io_stats["scans"] == 0
        study = Study(_rebuild(universe), store=store, store_only=True)
        study.table2()
        assert store.io_stats["scans"] > 0
        assert store.io_stats["opens"] > 0

    def test_cli_trend_stats_and_incremental(self, epoch0_store,
                                             epoch1_store, capsys):
        code = main(["trend", epoch0_store, epoch1_store,
                     "--incremental", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== trend: tracker prevalence ==" in out
        assert "connection opens" in out
        assert "event scans" in out
        assert "aggregate cache:" in out

    def test_cli_report_incremental_matches_plain(self, epoch0_store,
                                                  capsys):
        assert main(["report", "--store", epoch0_store]) == 0
        plain = capsys.readouterr().out
        assert main(["report", "--store", epoch0_store,
                     "--incremental"]) == 0
        incremental = capsys.readouterr().out
        assert incremental == plain

    def test_cli_store_info_verbose_prints_cache(self, epoch0_store,
                                                 capsys):
        # The CLI tests above populated the cache next to the store.
        assert os.path.exists(aggregates_path(epoch0_store))
        assert main(["store", "info", epoch0_store, "-v"]) == 0
        out = capsys.readouterr().out
        assert "aggregate cache:" in out
        assert "partials" in out
        assert "last study:" in out
