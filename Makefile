PYTHON ?= python
SCALE ?= 0.2
export PYTHONPATH := src

.PHONY: test bench bench-quick profile store-check

## Run the tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Run the end-to-end pipeline benchmark for parallelism 1 and 4; writes
## BENCH_pipeline.json at the repo root (each config in its own process).
bench:
	$(PYTHON) benchmarks/test_perf_pipeline.py --scale $(SCALE)

## Fast sequential-only bench smoke (used by CI): scale 0.02, parallelism 1.
## Writes BENCH_quick.json so the checked-in BENCH_pipeline.json stays put.
bench-quick:
	$(PYTHON) benchmarks/test_perf_pipeline.py --scale 0.02 \
		--parallelism-set 1 --output BENCH_quick.json

## Store replay check (used by CI): run a scale-0.02 study into a fresh
## datastore, re-render everything from the store alone, and require the
## two outputs to be byte-identical.
store-check:
	rm -f /tmp/repro-store-check.db
	$(PYTHON) -m repro study --scale 0.02 \
		--store /tmp/repro-store-check.db > /tmp/repro-study.out
	$(PYTHON) -m repro report \
		--store /tmp/repro-store-check.db > /tmp/repro-report.out
	diff /tmp/repro-study.out /tmp/repro-report.out
	$(PYTHON) -m repro store info /tmp/repro-store-check.db --verbose

## Profile one sequential pipeline run and print the top-20 functions by
## total own time.
profile:
	$(PYTHON) -c "import cProfile, pstats, sys; \
	sys.argv = ['bench']; \
	from benchmarks.test_perf_pipeline import run_pipeline; \
	profiler = cProfile.Profile(); \
	profiler.runcall(run_pipeline, $(SCALE), 1); \
	pstats.Stats(profiler).sort_stats('tottime').print_stats(20)"
