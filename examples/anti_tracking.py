#!/usr/bin/env python3
"""Anti-tracking effectiveness (the paper's §10 future work, implemented).

Crawls the corpus twice — once unprotected, once behind an
EasyList/EasyPrivacy content blocker — and shows how much of the porn
ecosystem's tracking survives, because its specialized trackers are not
indexed by the blocklists (91% of fingerprinting scripts in the paper).

Also prints the other two future-work studies: tracking by monetization
model, and cross-border identifier flows for an EU visitor.

Run:  python examples/anti_tracking.py [scale]
"""

import sys

from repro import Study, UniverseConfig


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    study = Study.build(UniverseConfig(scale=scale))
    print(f"corpus: {len(study.corpus_domains())} sites (scale={scale})\n")

    # --- Ad-blocker simulation -------------------------------------------------
    comparison = study.adblock_comparison()
    print("Crawling with an EasyList/EasyPrivacy content blocker:")
    print(f"  requests cancelled         : {comparison.requests_blocked}")
    print(f"  third-party ID cookies     : "
          f"{comparison.baseline_third_party_cookies} -> "
          f"{comparison.protected_third_party_cookies}  "
          f"(-{comparison.cookie_reduction:.0%})")
    print(f"  canvas-fingerprinted sites : "
          f"{len(comparison.baseline_canvas_sites)} -> "
          f"{len(comparison.protected_canvas_sites)}  "
          f"(-{comparison.canvas_reduction:.0%})")
    print(f"  trackers still active      : "
          f"{comparison.surviving_tracker_fraction:.0%}")
    print("  -> blocklists curb cookies but barely touch the unlisted")
    print("     fingerprinters — the paper's central anti-tracking warning\n")

    # --- Tracking by monetization model ---------------------------------------------
    subscription = study.subscription_tracking()
    print("Tracking surface by monetization model:")
    print(f"  {'model':<20} {'sites':>6} {'mean TPs':>9} {'mean TP cookies':>16}")
    for row in subscription.rows:
        print(f"  {row.model:<20} {row.site_count:>6} "
              f"{row.mean_third_parties:>9.1f} "
              f"{row.mean_third_party_id_cookies:>16.1f}")
    print()

    # --- Cross-border identifier flows ---------------------------------------------------
    border = study.cross_border()
    print("Cross-border flows for a visitor in Spain (EU):")
    print(f"  third-party requests located: {border.requests_total}")
    print(f"  terminating outside the EU  : {border.outside_eu_fraction:.0%}")
    top = sorted(border.by_country.items(), key=lambda item: -item[1])[:5]
    for code, count in top:
        print(f"    {code}: {count}")
    print(f"  services holding an ID cookie for this browser and hosted "
          f"outside the EU: {border.id_export_fraction:.0%} of "
          f"{len(border.id_cookie_domains)}")


if __name__ == "__main__":
    main()
