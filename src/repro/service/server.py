"""The HTTP server (service layer 4b): sockets, threads, SSE delivery.

:class:`ReproServer` glues a :class:`~http.server.ThreadingHTTPServer`
to the :class:`~repro.service.api.ServiceAPI` router and the
:class:`~repro.service.jobs.JobManager` worker pool.  Every request
runs on its own thread, so any number of clients can hold
``/jobs/<id>/events`` streams open while others submit jobs or fetch
tables; the GIL is a non-issue because streaming is I/O-bound and the
measurement work happens on the worker pool.

``port=0`` binds an ephemeral port (``server.port`` reports the real
one) — the CI serve-check and the benchmarks use that to avoid
collisions.  The server and the workers share one
:class:`~repro.datastore.CrawlStore` path; workers write through their
own connections, result reads go through the store's cursor layer, and
WAL keeps readers unblocked while a job is checkpointing.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from .api import ServiceAPI
from .jobs import JobManager
from .sse import HEARTBEAT_FRAME, format_event

__all__ = ["ReproServer"]

#: Seconds of stream silence before a keep-alive comment frame.
DEFAULT_HEARTBEAT = 15.0


class _Handler(BaseHTTPRequestHandler):
    """Thin shim: parse, delegate to the API, write; stream SSE inline."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _write(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -- verbs ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        url = urlsplit(self.path)
        if url.path.startswith("/jobs/") and url.path.endswith("/events"):
            self._stream_events(url.path, parse_qs(url.query))
            return
        self._write(*self.server.api.handle("GET", url.path))

    def do_POST(self) -> None:  # noqa: N802
        self._write(*self.server.api.handle(
            "POST", urlsplit(self.path).path, self._body()))

    def do_DELETE(self) -> None:  # noqa: N802
        self._write(*self.server.api.handle(
            "DELETE", urlsplit(self.path).path))

    # -- SSE ------------------------------------------------------------

    def _stream_events(self, path: str, query) -> None:
        job_id = path[len("/jobs/"):-len("/events")]
        try:
            job = self.server.api.manager.get(job_id)
        except KeyError:
            self._write(404, "application/json",
                        (json.dumps({"error": f"no job {job_id}"}) + "\n")
                        .encode())
            return
        try:
            from_seq = int(query.get("from", ["0"])[0])
        except ValueError:
            self._write(400, "application/json",
                        b'{"error": "from must be an integer"}\n')
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for event in job.events.subscribe(
                    from_seq, heartbeat=self.server.heartbeat):
                if event is None:
                    self.wfile.write(HEARTBEAT_FRAME)
                else:
                    self.wfile.write(format_event(event))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # subscriber went away; nothing to clean up
        self.close_connection = True


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, api: ServiceAPI, *,
                 heartbeat: float, verbose: bool) -> None:
        super().__init__(address, _Handler)
        self.api = api
        self.heartbeat = heartbeat
        self.verbose = verbose


class ReproServer:
    """The measurement service: worker pool + HTTP front end.

    ``ReproServer(store, port=0).start()`` is the whole programmatic
    surface — the CLI's ``repro serve`` adds only argument parsing and a
    banner.  ``stop()`` shuts the HTTP listener down and drains the
    worker pool (pending queue entries stay journaled for the next
    start, which is the restart-recovery path the tests exercise).
    """

    def __init__(self, store_path: str, *, port: int = 8008,
                 host: str = "127.0.0.1", workers: int = 1,
                 store_shards: Optional[int] = None,
                 heartbeat: float = DEFAULT_HEARTBEAT,
                 verbose: bool = False) -> None:
        from ..datastore import CrawlStore

        self.store = CrawlStore(str(store_path), shards=store_shards)
        self.manager = JobManager(self.store.path, workers=workers,
                                  store_shards=store_shards)
        self.api = ServiceAPI(self.manager, self.store)
        self._httpd = _HTTPServer((host, port), self.api,
                                  heartbeat=heartbeat, verbose=verbose)
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ReproServer":
        """Start workers and serve requests on a background thread."""
        self.manager.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI process."""
        self.manager.start()
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
            self._serve_thread = None
        self.manager.stop()
        self.store.close()
