"""Script behaviors and their execution against the instrumented APIs.

A third-party script in the synthetic universe carries a declarative
:class:`ScriptBehavior`.  When the browser "executes" the script, the
runtime expands the behavior into the exact sequence of instrumented API
calls a real script with that behavior would produce, plus any follow-up
network requests (tracking beacons, miner pool sockets).

The fidelity that matters is at the *log* level: the Englehardt-Narayanan
canvas heuristics and the paper's stricter ``measureText`` rule
(Section 5.1.3) must see the same evidence they would see from OpenWPM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .api import API, JSCall

__all__ = [
    "CanvasBehavior",
    "FontProbeBehavior",
    "ScriptBehavior",
    "execute_script",
]


@dataclass(frozen=True)
class CanvasBehavior:
    """Parameters of a canvas-drawing routine.

    The Englehardt-Narayanan fingerprinting filters key on exactly these
    properties: canvas size, color and character diversity, whether the
    pixels are read back (``toDataURL``/``getImageData``), and whether the
    script uses ``save``/``restore``/``addEventListener`` (which indicate a
    drawing app rather than a fingerprinter).
    """

    width: int = 300
    height: int = 150
    colors: int = 2
    text: str = "Cwm fjordbank glyphs vext quiz \U0001f60f"
    reads_back: bool = True            # calls toDataURL or getImageData
    read_api: str = API.CANVAS_TO_DATA_URL
    read_area: int = 0                 # area argument of getImageData
    uses_save_restore: bool = False
    uses_event_listener: bool = False


@dataclass(frozen=True)
class FontProbeBehavior:
    """Font-enumeration probing via ``measureText``.

    ``repeats_per_font`` calls of ``measureText`` with the *same* sample
    text per font; the paper's rule counts scripts that set the ``font``
    property and call ``measureText`` on the same text at least 50 times.
    """

    fonts: int = 60
    repeats_per_font: int = 1
    sample_text: str = "mmmmmmmmmmlli"
    #: When True each font is measured with its own sample string (the
    #: online-metrix.net pattern) — this defeats the paper's same-text
    #: counting rule but is caught by the font-enumeration detector.
    distinct_texts: bool = False


@dataclass(frozen=True)
class ScriptBehavior:
    """Everything a synthetic script does when executed."""

    canvas: Optional[CanvasBehavior] = None
    font_probe: Optional[FontProbeBehavior] = None
    uses_webrtc: bool = False
    is_miner: bool = False
    miner_pool: str = ""
    #: Absolute URLs requested after execution (analytics beacons etc.).
    beacons: Tuple[str, ...] = ()
    reads_navigator: bool = False
    sets_document_cookie: Optional[Tuple[str, str]] = None  # (name, value)

    @property
    def is_fingerprinting(self) -> bool:
        """Ground-truth flag: does this behavior try to fingerprint?"""
        return self.canvas is not None or self.font_probe is not None


def _canvas_calls(script_url: str, host: str, spec: CanvasBehavior) -> List[JSCall]:
    calls = [
        JSCall(script_url, host, API.CANVAS_CREATE,
               {"width": spec.width, "height": spec.height}),
    ]
    for index in range(spec.colors):
        calls.append(
            JSCall(script_url, host, API.CONTEXT_FILL_STYLE, {"color_index": index})
        )
    calls.append(JSCall(script_url, host, API.CONTEXT_FILL_TEXT, {"text": spec.text}))
    if spec.uses_save_restore:
        calls.append(JSCall(script_url, host, API.CONTEXT_SAVE, {}))
        calls.append(JSCall(script_url, host, API.CONTEXT_RESTORE, {}))
    if spec.uses_event_listener:
        calls.append(JSCall(script_url, host, API.ADD_EVENT_LISTENER, {"event": "click"}))
    if spec.reads_back:
        if spec.read_api == API.CONTEXT_GET_IMAGE_DATA:
            calls.append(
                JSCall(script_url, host, API.CONTEXT_GET_IMAGE_DATA,
                       {"area": spec.read_area or spec.width * spec.height})
            )
        else:
            calls.append(JSCall(script_url, host, API.CANVAS_TO_DATA_URL, {}))
    return calls


def _font_probe_calls(script_url: str, host: str, spec: FontProbeBehavior) -> List[JSCall]:
    calls: List[JSCall] = []
    for font_index in range(spec.fonts):
        calls.append(
            JSCall(script_url, host, API.CONTEXT_SET_FONT, {"font_index": font_index})
        )
        if spec.distinct_texts:
            text = f"{spec.sample_text}-{font_index}"
        else:
            text = spec.sample_text
        for _ in range(spec.repeats_per_font):
            calls.append(
                JSCall(script_url, host, API.CONTEXT_MEASURE_TEXT, {"text": text})
            )
    return calls


def execute_script(
    script_url: str,
    behavior: ScriptBehavior,
    *,
    document_host: str,
) -> Tuple[List[JSCall], List[str]]:
    """Run ``behavior`` and return ``(api_calls, follow_up_request_urls)``."""
    calls: List[JSCall] = []
    follow_ups: List[str] = []

    if behavior.reads_navigator:
        calls.append(JSCall(script_url, document_host, API.NAVIGATOR_USER_AGENT, {}))
        calls.append(JSCall(script_url, document_host, API.SCREEN_RESOLUTION, {}))
    if behavior.canvas is not None:
        calls.extend(_canvas_calls(script_url, document_host, behavior.canvas))
    if behavior.font_probe is not None:
        calls.extend(_font_probe_calls(script_url, document_host, behavior.font_probe))
    if behavior.uses_webrtc:
        calls.append(
            JSCall(script_url, document_host, API.RTC_PEER_CONNECTION,
                   {"config": "stun"})
        )
        calls.append(
            JSCall(script_url, document_host, API.RTC_ICE_CANDIDATE,
                   {"reveals": "local_and_public_ip"})
        )
    if behavior.sets_document_cookie is not None:
        name, value = behavior.sets_document_cookie
        calls.append(
            JSCall(script_url, document_host, API.DOCUMENT_COOKIE_SET,
                   {"name": name, "value": value})
        )
    if behavior.is_miner:
        calls.append(
            JSCall(script_url, document_host, API.WORKER_CREATE,
                   {"purpose": "cryptomining", "pool": behavior.miner_pool})
        )
        if behavior.miner_pool:
            follow_ups.append(behavior.miner_pool)

    follow_ups.extend(behavior.beacons)
    return calls, follow_ups
