"""Table 8 / §7.1 — cookie-consent banner taxonomy, EU vs USA."""

from repro.core.compliance.banners import (
    BANNER_BINARY,
    BANNER_CONFIRMATION,
    BANNER_NO_OPTION,
    BANNER_OTHER,
    analyze_banners,
)
from repro.reporting.tables import render_table8


def test_table8_banners(benchmark, study, paper, reporter):
    eu_log = study.porn_log()  # the Spanish crawl keeps HTML
    corpus_size = len(study.corpus_domains())
    eu = benchmark(lambda: analyze_banners(eu_log, corpus_size=corpus_size))
    us = study.banners("US")

    mapping = [
        ("No Option", BANNER_NO_OPTION, "no_option"),
        ("Confirmation", BANNER_CONFIRMATION, "confirmation"),
        ("Binary", BANNER_BINARY, "binary"),
        ("Others", BANNER_OTHER, "other"),
    ]
    for label, banner_type, key in mapping:
        reporter.row(
            f"{label}: EU / USA",
            f"{paper.banner_fractions_eu[key]:.2%} / "
            f"{paper.banner_fractions_us[key]:.2%}",
            f"{eu.fraction(banner_type):.2%} / {us.fraction(banner_type):.2%}",
        )
    reporter.row("Total: EU / USA", "4.41% / 3.76%",
                 f"{eu.total_fraction:.2%} / {us.total_fraction:.2%}")
    reporter.text(render_table8(eu, us))

    # Shape: banners are rare; the EU sees slightly more than the US;
    # confirmation dominates; binary banners are nearly EU-exclusive.
    assert eu.total_fraction < 0.10
    assert eu.total_fraction >= us.total_fraction
    assert eu.fraction(BANNER_CONFIRMATION) >= eu.fraction(BANNER_BINARY)
    assert eu.fraction(BANNER_BINARY) >= us.fraction(BANNER_BINARY)
