"""Shared benchmark fixtures.

The harness builds one synthetic universe and runs the full study once per
session; each benchmark then times the *analysis* step for its table or
figure and emits a paper-vs-measured comparison to stdout and to
``benchmarks/results/<name>.txt``.

``REPRO_BENCH_SCALE`` (default 1.0 = the paper's 6,843-site corpus)
shrinks the universe for quick runs, e.g.::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import Study, UniverseConfig
from repro.webgen.config import CalibrationTargets

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def study() -> Study:
    return Study.build(UniverseConfig(scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def paper() -> CalibrationTargets:
    return CalibrationTargets()


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE


class Reporter:
    """Collects paper-vs-measured rows and emits them."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines = [f"=== {name} (scale={BENCH_SCALE}) ==="]

    def row(self, metric: str, paper_value, measured_value) -> None:
        self.lines.append(f"{metric:<52} paper={paper_value!s:<14} "
                          f"measured={measured_value!s}")

    def text(self, block: str) -> None:
        self.lines.append(block)

    def emit(self) -> None:
        output = "\n".join(str(line) for line in self.lines)
        print("\n" + output)
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{self.name}.txt"
        path.write_text(output + "\n")


@pytest.fixture()
def reporter(request):
    instance = Reporter(request.node.name.replace("test_", "", 1))
    yield instance
    instance.emit()


def scaled(value: int, *, minimum: int = 1) -> int:
    """Scale a paper count to the benchmark corpus size."""
    return max(minimum, round(value * BENCH_SCALE))
