"""Section 7.2 — age-verification mechanisms on the top-50 porn sites.

The interaction crawler inspects each site from several countries,
detects age gates (keyword + ancestor verification), attempts to click
through them, and records whether the gate was bypassable — the paper's
operational test of whether a mechanism is "verifiable" (if the crawler
passes, a child could too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ...crawler.selenium import SeleniumCrawler, SiteInspection
from ...crawler.vpn import VantagePointManager
from ...webgen.universe import Universe

__all__ = ["CountryGateSummary", "AgeVerificationReport", "study_age_verification"]


@dataclass
class CountryGateSummary:
    """Age-gate observations from one country."""

    country: str
    inspected: int = 0
    gated_sites: Set[str] = field(default_factory=set)
    bypassed_sites: Set[str] = field(default_factory=set)
    login_required_sites: Set[str] = field(default_factory=set)

    @property
    def gate_fraction(self) -> float:
        return len(self.gated_sites) / self.inspected if self.inspected else 0.0

    @property
    def bypass_fraction(self) -> float:
        """Of gated sites, how many the crawler passed (non-verifiable)."""
        if not self.gated_sites:
            return 0.0
        return len(self.bypassed_sites) / len(self.gated_sites)


@dataclass
class AgeVerificationReport:
    """Cross-country comparison over the same top-N sites."""

    sites: List[str] = field(default_factory=list)
    by_country: Dict[str, CountryGateSummary] = field(default_factory=dict)

    def gated_in(self, country: str) -> Set[str]:
        summary = self.by_country.get(country)
        return set(summary.gated_sites) if summary else set()

    def consistent_countries(self, countries: Sequence[str]) -> bool:
        """True when the given countries saw the identical gated site set."""
        sets = [frozenset(self.gated_in(country)) for country in countries]
        return len(set(sets)) <= 1

    def only_in(self, country: str, *, others: Sequence[str]) -> Set[str]:
        """Sites gated in ``country`` but in none of ``others``."""
        gated = self.gated_in(country)
        for other in others:
            gated -= self.gated_in(other)
        return gated

    def missing_in(self, country: str, *, others: Sequence[str]) -> Set[str]:
        """Sites gated in every other country but not in ``country``."""
        if not others:
            return set()
        common = self.gated_in(others[0])
        for other in others[1:]:
            common &= self.gated_in(other)
        return common - self.gated_in(country)


def study_age_verification(
    universe: Universe,
    top_sites: Sequence[str],
    *,
    countries: Sequence[str] = ("US", "UK", "ES", "RU"),
    vantage_points: Optional[VantagePointManager] = None,
) -> AgeVerificationReport:
    """Inspect the top sites from each requested country."""
    manager = vantage_points or VantagePointManager()
    report = AgeVerificationReport(sites=list(top_sites))
    for country in countries:
        crawler = SeleniumCrawler(universe, manager.point(country))
        summary = CountryGateSummary(country=country)
        for domain in top_sites:
            inspection: SiteInspection = crawler.inspect(domain)
            if not inspection.reachable:
                continue
            summary.inspected += 1
            gate = inspection.age_gate
            if not gate.detected:
                continue
            summary.gated_sites.add(domain)
            if gate.bypassed:
                summary.bypassed_sites.add(domain)
            if gate.requires_login:
                summary.login_required_sites.add(domain)
        report.by_country[country] = summary
    return report
