"""§5.1.1 headline cookie statistics (92%/72%, 89k/51.6k/30.2k, IP/geo)."""

from conftest import scaled

from repro.core.cookie_analysis import analyze_cookies


def test_sec51_cookie_stats(benchmark, study, paper, reporter):
    log = study.porn_log()
    stats = benchmark.pedantic(lambda: analyze_cookies(log), rounds=1,
                               iterations=1)

    reporter.row("sites installing cookies", "92%",
                 f"{stats.sites_with_cookies_fraction:.0%}")
    reporter.row("total cookies", scaled(paper.total_cookies),
                 stats.total_cookies)
    reporter.row("potential-ID cookies", scaled(paper.id_cookies),
                 stats.id_cookies)
    reporter.row("third-party ID cookies", scaled(paper.third_party_id_cookies),
                 stats.third_party_id_cookies)
    reporter.row("third-party cookie-setting domains",
                 scaled(paper.cookie_setting_third_parties),
                 len(stats.third_party_cookie_domains))
    reporter.row("sites with third-party cookies", "72%",
                 f"{stats.sites_with_third_party_cookies_fraction:.0%}")
    reporter.row("ID cookies > 1,000 chars", "3%",
                 f"{stats.huge_id_cookies / max(1, stats.id_cookies):.1%}")
    reporter.row("cookies embedding the client IP",
                 scaled(paper.ip_embedding_cookies), stats.ip_cookies)
    exo = sum(count for domain, count in stats.ip_cookie_domains.items()
              if domain.startswith("ex"))
    reporter.row("  ExoClick share of IP cookies", "97%",
                 f"{exo / max(1, stats.ip_cookies):.0%}")
    reporter.row("geolocation cookies / sites",
                 f"{scaled(paper.geo_cookies)} / {scaled(paper.geo_cookie_sites)}",
                 f"{stats.geo_cookies} / {len(stats.geo_cookie_sites)}")
    reporter.row("top-100 cookies' site coverage", ">30%",
                 f"{stats.popular_cookie_site_coverage(100):.0%}")

    assert 0.85 <= stats.sites_with_cookies_fraction <= 1.0
    assert 0.60 <= stats.sites_with_third_party_cookies_fraction <= 0.85
    assert stats.third_party_id_cookies > 0.4 * stats.id_cookies
    assert exo / max(1, stats.ip_cookies) > 0.85
    assert stats.geo_cookies >= 1
