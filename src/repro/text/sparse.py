"""Numpy-only sparse text-similarity engine (CSR + blocked gram kernel).

The paper's two TF-IDF workloads — §4.1 owner-candidate discovery and the
§7.3 all-pairs policy comparison (1.2M pairs) — are set-similarity math
over very sparse document vectors: a policy holds a few hundred distinct
terms out of a corpus vocabulary of thousands.  The historical
implementations materialized a dense ``(n_docs × vocab)`` matrix, its
full ``n × n`` gram product, and an ``n × n`` ``np.triu`` boolean mask —
a multi-GB memory cliff at scale 1.0 (6,843 documents).

This module keeps the exact same math on sparse structures:

:class:`CsrMatrix`
    A hand-rolled compressed-sparse-row matrix — ``data`` / ``indices``
    / ``indptr`` arrays, no scipy dependency — with vectorized row
    densification for small row blocks.
:class:`SimilarityEngine`
    Fits a shared vocabulary (first-seen order, matching the dense
    code), weights rows with log-TF and optionally the smoothed IDF of
    :class:`~repro.text.tfidf.TfIdfVectorizer`
    (``ln((1+N)/(1+df)) + 1``), L2-normalizes rows (zero rows stay
    zero), and exposes a **row-blocked** gram kernel: for each block of
    ``block_size`` rows it emits ``X[s:e] @ X[s:].T`` — cosine rows
    against all columns ``j >= s`` — so peak memory is
    ``O(block × n)`` per strip plus two densified row blocks, never
    ``O(n × vocab)`` or ``O(n²)``.  Column blocks below the diagonal
    are never computed, halving the FLOPs of a full gram product.

Every consumer streams: :meth:`SimilarityEngine.similar_pairs` yields
above-threshold upper-triangle pairs in the same row-major order
``np.argwhere(np.triu(gram > t, k=1))`` produced,
:meth:`SimilarityEngine.count_pairs_above` aggregates counts without
ever materializing the pair list, and :meth:`SimilarityEngine.iter_pairs`
re-creates the ``(i, j, similarity)`` generator contract of
:func:`~repro.text.tfidf.pairwise_similarities`.

Term-count maps are memoized by content hash (thread-safe, bounded):
the §4.1 and §7.3 consumers tokenize overlapping policy corpora, and
tokenization — not linear algebra — dominates the similarity wall time.

Module-level counters (:func:`engine_stats`) aggregate docs, vocabulary
size, computed blocks, and streamed candidate pairs across every engine
built in the process, for ``repro study --stats``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..cache import BoundedCache, content_key
from .tokenize import term_counts

__all__ = [
    "CsrMatrix",
    "SimilarityEngine",
    "EngineStats",
    "engine_stats",
    "reset_engine_stats",
    "cached_term_counts",
]

#: Default number of rows densified per gram block.
DEFAULT_BLOCK_SIZE = 256

# ---------------------------------------------------------------------------
# Shared tokenization memo
# ---------------------------------------------------------------------------

#: The same policy text flows through owner discovery (§4.1), the §7.3
#: fraction computation, and the streaming generator; tokenizing it once
#: per process is the single largest win on the similarity path.
_TERM_COUNT_CACHE: BoundedCache = BoundedCache(maxsize=16384)


def cached_term_counts(text: str) -> Dict[str, int]:
    """``term_counts`` memoized on a content hash (returned dict is shared —
    callers must not mutate it)."""
    return _TERM_COUNT_CACHE.get_or_create(
        content_key(text), lambda: term_counts(text)
    )


# ---------------------------------------------------------------------------
# Engine counters
# ---------------------------------------------------------------------------


class EngineStats:
    """Aggregated similarity-engine counters (approximate under threads)."""

    __slots__ = ("engines", "documents", "vocabulary", "nonzeros",
                 "blocks", "candidate_pairs")

    def __init__(self) -> None:
        self.engines = 0
        self.documents = 0
        self.vocabulary = 0
        self.nonzeros = 0
        self.blocks = 0
        self.candidate_pairs = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


_STATS = EngineStats()
_STATS_LOCK = threading.Lock()


def engine_stats() -> EngineStats:
    """Process-wide counters across every :class:`SimilarityEngine`."""
    return _STATS


def reset_engine_stats() -> None:
    with _STATS_LOCK:
        for name in EngineStats.__slots__:
            setattr(_STATS, name, 0)


# ---------------------------------------------------------------------------
# CSR matrix
# ---------------------------------------------------------------------------


class CsrMatrix:
    """Compressed sparse rows over plain numpy arrays.

    ``data[indptr[i]:indptr[i+1]]`` are row ``i``'s values at column
    positions ``indices[indptr[i]:indptr[i+1]]`` (sorted ascending per
    row for determinism).  Only what the gram kernel needs is
    implemented; there is deliberately no scipy fallback.
    """

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(self, data: np.ndarray, indices: np.ndarray,
                 indptr: np.ndarray, shape: Tuple[int, int]) -> None:
        self.data = data
        self.indices = indices
        self.indptr = indptr
        self.shape = shape

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def row_norms(self) -> np.ndarray:
        """Per-row L2 norms, computed without densifying (cumsum trick)."""
        squares = np.concatenate(([0.0], np.cumsum(self.data * self.data)))
        return np.sqrt(squares[self.indptr[1:]] - squares[self.indptr[:-1]])

    def scale_rows(self, factors: np.ndarray) -> None:
        """Multiply each row by its factor, in place."""
        counts = np.diff(self.indptr)
        if self.data.size:
            self.data *= np.repeat(factors, counts)

    def dense_rows(self, start: int, stop: int) -> np.ndarray:
        """Densify rows ``[start, stop)`` to a ``(stop-start, n_cols)``
        float64 block (the only densification the engine ever performs)."""
        rows, cols = stop - start, self.shape[1]
        block = np.zeros((rows, cols))
        lo, hi = self.indptr[start], self.indptr[stop]
        if hi > lo:
            row_ids = np.repeat(
                np.arange(rows), np.diff(self.indptr[start:stop + 1])
            )
            block[row_ids, self.indices[lo:hi]] = self.data[lo:hi]
        return block


# ---------------------------------------------------------------------------
# Similarity engine
# ---------------------------------------------------------------------------


class SimilarityEngine:
    """Fitted sparse TF(-IDF) vectors with a blocked cosine-gram kernel.

    ``use_idf=True`` reproduces :class:`~repro.text.tfidf.TfIdfVectorizer`
    weighting (log-TF × smoothed IDF, ``min_df`` filtering);
    ``use_idf=False`` reproduces the §4.1 owner-discovery weighting
    (log-TF only).  Rows are L2-normalized either way, so every gram
    entry is exactly the cosine the dense/dict implementations computed.
    """

    def __init__(self, *, min_df: int = 1, use_idf: bool = True,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.min_df = min_df
        self.use_idf = use_idf
        self.block_size = block_size
        self.matrix: Optional[CsrMatrix] = None
        self.vocabulary: Dict[str, int] = {}
        self.blocks_computed = 0
        self.pairs_streamed = 0

    # -- fitting --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self.matrix is not None

    @property
    def n_docs(self) -> int:
        return self.matrix.shape[0] if self.matrix is not None else 0

    @property
    def vocabulary_size(self) -> int:
        return len(self.vocabulary)

    @property
    def nnz(self) -> int:
        return self.matrix.nnz if self.matrix is not None else 0

    def fit(self, documents: Sequence[str]) -> "SimilarityEngine":
        """Tokenize, build the shared vocabulary, and assemble the CSR."""
        counts = [cached_term_counts(document) for document in documents]
        return self.fit_counts(counts)

    def fit_counts(
        self, counts: Sequence[Dict[str, int]]
    ) -> "SimilarityEngine":
        """Fit from precomputed term-count maps (one per document)."""
        n = len(counts)
        document_frequency: Dict[str, int] = {}
        for count in counts:
            for term in count:
                document_frequency[term] = \
                    document_frequency.get(term, 0) + 1
        # First-seen vocabulary order, exactly like the dense code's
        # ``vocabulary.setdefault(term, len(vocabulary))`` loop.
        vocabulary: Dict[str, int] = {}
        for count in counts:
            for term in count:
                if document_frequency[term] >= self.min_df:
                    vocabulary.setdefault(term, len(vocabulary))
        self.vocabulary = vocabulary

        if self.use_idf:
            idf = np.empty(len(vocabulary))
            for term, index in vocabulary.items():
                idf[index] = math.log(
                    (1 + n) / (1 + document_frequency[term])
                ) + 1.0
        else:
            idf = None

        indptr = np.zeros(n + 1, dtype=np.int64)
        all_cols: List[np.ndarray] = []
        all_tfs: List[np.ndarray] = []
        for row, count in enumerate(counts):
            items = sorted(
                (vocabulary[term], frequency)
                for term, frequency in count.items() if term in vocabulary
            )
            indptr[row + 1] = indptr[row] + len(items)
            if items:
                pairs = np.asarray(items, dtype=np.float64)
                all_cols.append(pairs[:, 0].astype(np.int64))
                all_tfs.append(pairs[:, 1])
        indices = np.concatenate(all_cols) if all_cols else \
            np.zeros(0, dtype=np.int64)
        tf = np.concatenate(all_tfs) if all_tfs else np.zeros(0)
        data = 1.0 + np.log(tf) if tf.size else tf
        if idf is not None and data.size:
            data = data * idf[indices]

        matrix = CsrMatrix(data, indices, indptr, (n, len(vocabulary)))
        norms = matrix.row_norms()
        # Zero rows (no in-vocabulary terms) stay zero: cosine 0 against
        # everything, matching both dense implementations and the dict
        # path's "empty vector => 0.0".
        norms[norms == 0.0] = 1.0
        matrix.scale_rows(1.0 / norms)
        self.matrix = matrix

        with _STATS_LOCK:
            _STATS.engines += 1
            _STATS.documents += n
            _STATS.vocabulary += len(vocabulary)
            _STATS.nonzeros += matrix.nnz
        return self

    # -- blocked gram kernel --------------------------------------------

    def gram_strips(
        self, block_size: Optional[int] = None
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(row_start, strip)`` with ``strip = X[s:e] @ X[s:].T``.

        ``strip[r, c]`` is the cosine of documents ``s + r`` and
        ``s + c`` — columns start at the strip's own first row, so
        column blocks strictly below the diagonal are never computed.
        Peak live memory per iteration is the ``(block × (n - s))``
        strip plus two ``(block × vocab)`` densified row blocks.
        """
        if self.matrix is None:
            raise RuntimeError("engine is not fitted; call fit() first")
        n = self.matrix.shape[0]
        block = block_size or self.block_size
        for s in range(0, n, block):
            e = min(s + block, n)
            left = self.matrix.dense_rows(s, e)
            strip = np.empty((e - s, n - s))
            for cs in range(s, n, block):
                ce = min(cs + block, n)
                right = left if cs == s else self.matrix.dense_rows(cs, ce)
                strip[:, cs - s:ce - s] = left @ right.T
                self.blocks_computed += 1
                with _STATS_LOCK:
                    _STATS.blocks += 1
            yield s, strip

    def _upper_mask(self, start: int, strip: np.ndarray,
                    threshold: float) -> np.ndarray:
        """Boolean ``strip > threshold`` restricted to ``j > i`` (the
        leading ``rows × rows`` square of a strip is the diagonal block)."""
        mask = strip > threshold
        rows = strip.shape[0]
        lower = np.tril_indices(rows)
        mask[lower] = False
        return mask

    # -- consumers ------------------------------------------------------

    def similar_pairs(
        self, threshold: float, *, block_size: Optional[int] = None
    ) -> Iterator[Tuple[int, int]]:
        """Stream upper-triangle pairs with cosine strictly above
        ``threshold``, in the row-major ``(i asc, j asc)`` order of
        ``np.argwhere(np.triu(gram > threshold, k=1))``."""
        for start, strip in self.gram_strips(block_size):
            mask = self._upper_mask(start, strip, threshold)
            for i_local, j_local in np.argwhere(mask):
                self.pairs_streamed += 1
                with _STATS_LOCK:
                    _STATS.candidate_pairs += 1
                yield (start + int(i_local), start + int(j_local))

    def count_pairs_above(
        self, threshold: float, *, block_size: Optional[int] = None
    ) -> Tuple[int, int]:
        """``(count above threshold, total unordered pairs)`` without
        materializing any pair list or full mask."""
        n = self.n_docs
        total = n * (n - 1) // 2
        count = 0
        for start, strip in self.gram_strips(block_size):
            block_count = int(np.count_nonzero(
                self._upper_mask(start, strip, threshold)
            ))
            count += block_count
            with _STATS_LOCK:
                _STATS.candidate_pairs += block_count
        self.pairs_streamed += count
        return (count, total)

    def iter_pairs(
        self, *, block_size: Optional[int] = None
    ) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(i, j, similarity)`` for every unordered pair, in the
        nested-loop order of the historical generator."""
        for start, strip in self.gram_strips(block_size):
            rows, width = strip.shape
            for i_local in range(rows):
                row = strip[i_local]
                for j_local in range(i_local + 1, width):
                    yield (start + i_local, start + j_local,
                           float(row[j_local]))
