"""``make scale-check``: memory flatness + parity gate for the streaming path.

Runs the streaming memory probe (lazy universe, sharded store, trim-mode
crawl, cursor-fed analyses — see ``test_perf_pipeline.run_memory_probe``)
at two scales in fresh subprocesses and FAILS if either:

* the **crawl-path peak RSS ratio** between the scales exceeds the
  threshold (default 1.3, i.e. doubling the corpus must not come close
  to doubling resident memory through the crawl datapath), or
* the streaming run's Tables 2/4/6 at the smaller scale are not
  byte-identical to an eager-universe, unsharded, in-memory reference.

The enforced RSS sample is the ``ru_maxrss`` high-water taken right
after the crawl stage: it covers the universe, the corpus build, and the
entire crawl-into-shards datapath — the part of the pipeline this
repo's streaming work bounds.  The full-run peak (which additionally
carries the analyses' O(unique-domain) aggregates and the universe
model, both functions of corpus *diversity* rather than page count) is
printed for context but not gated.

Configuration (environment):

* ``REPRO_SCALE_CHECK_SCALES`` — comma-separated pair, default
  ``0.2,0.4`` ("scale-2 vs scale-4" smoke sizes; full scales 2/4 take
  tens of minutes and belong in a nightly run, not ``make``).
* ``REPRO_SCALE_CHECK_RATIO`` — RSS ratio threshold, default ``1.3``.

Exit status 0 on pass, 1 on any violation.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PROBE_SCRIPT = pathlib.Path(__file__).resolve().parent / "test_perf_pipeline.py"

DEFAULT_SCALES = (0.2, 0.4)
DEFAULT_RATIO = 1.3


def _run_probe(scale: float, mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    command = [sys.executable, str(PROBE_SCRIPT), "--scale", str(scale),
               f"--{mode}", "--json"]
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"{mode} child at scale {scale} failed:\n{result.stderr}"
        )
    return json.loads(result.stdout)


def main() -> int:
    raw_scales = os.environ.get("REPRO_SCALE_CHECK_SCALES", "")
    scales = tuple(float(s) for s in raw_scales.split(",")) if raw_scales \
        else DEFAULT_SCALES
    if len(scales) != 2 or scales[0] >= scales[1]:
        print(f"scale-check: need two increasing scales, got {scales}",
              file=sys.stderr)
        return 1
    threshold = float(os.environ.get("REPRO_SCALE_CHECK_RATIO",
                                     str(DEFAULT_RATIO)))

    small, large = scales
    print(f"scale-check: streaming probes at scales {small} and {large} "
          f"(threshold {threshold}x)")
    probe_small = _run_probe(small, "memory-probe")
    probe_large = _run_probe(large, "memory-probe")
    reference = _run_probe(small, "reference-probe")

    crawl_small = probe_small["stage_rss_mb"]["crawl:all"]
    crawl_large = probe_large["stage_rss_mb"]["crawl:all"]
    crawl_ratio = crawl_large / crawl_small
    full_ratio = probe_large["peak_rss_mb"] / probe_small["peak_rss_mb"]

    print(f"  scale {small}: crawl-path RSS {crawl_small:.1f} MiB, "
          f"full-run peak {probe_small['peak_rss_mb']:.1f} MiB, "
          f"{probe_small['pages']} pages")
    print(f"  scale {large}: crawl-path RSS {crawl_large:.1f} MiB, "
          f"full-run peak {probe_large['peak_rss_mb']:.1f} MiB, "
          f"{probe_large['pages']} pages")
    print(f"  crawl-path RSS ratio: {crawl_ratio:.3f}x "
          f"(full-run, ungated: {full_ratio:.3f}x) for "
          f"{large / small:.1f}x scale")

    failed = False
    if crawl_ratio > threshold:
        print(f"FAIL: crawl-path RSS ratio {crawl_ratio:.3f}x exceeds "
              f"{threshold}x", file=sys.stderr)
        failed = True

    if probe_small["tables_sha256"] == reference["tables_sha256"]:
        print(f"  tables at scale {small}: streaming sharded run is "
              "byte-identical to the unsharded in-memory reference")
    else:
        print(f"FAIL: streaming tables at scale {small} diverge from the "
              f"unsharded reference ({probe_small['tables_sha256'][:12]} != "
              f"{reference['tables_sha256'][:12]})", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("scale-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
