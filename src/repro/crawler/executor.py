"""Parallel execution of independent crawls (§3.1 and §6 at scale).

The study's crawls are embarrassingly parallel: every crawl owns its
cookie jar and its vantage point, so the six per-country porn crawls,
the regular-web control crawl, and any auxiliary (banner) crawls never
share state.  :class:`CrawlExecutor` fans those whole crawls out across
a worker pool while keeping each crawl strictly sequential inside — the
paper's single-session design (cookie syncing needs one live jar) is
preserved, which is what makes a parallel run bit-identical to the
sequential one.

Backends
--------

``process`` (default on POSIX)
    Forked worker processes inherit the immutable :class:`Universe` by
    copy-on-write; only the compact :class:`CrawlOutcome` results cross
    the process boundary.  This sidesteps the GIL for the CPU-bound
    page-render/parse loop.
``thread``
    Fallback where ``fork`` is unavailable.  Correct (crawls share no
    mutable state; the universe caches are thread-safe) but bounded by
    the GIL.
``serial``
    Used automatically for ``parallelism=1`` or single-spec batches;
    runs inline and reproduces the historical sequential behavior
    exactly, including evaluation order.

Failures inside a worker are returned as values, not raised, so one bad
crawl can never wedge the pool: every submitted spec completes, and the
executor then raises :class:`CrawlExecutionError` for the first failed
spec in input order, carrying the worker's traceback text.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import (
    Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union,
)

from ..browser.events import CrawlLog
from ..core.ats import ATSClassifier, ATSResult
from ..core.malware import MalwareReport, analyze_malware
from ..core.partylabel import PartyLabels, label_parties
from ..webgen.universe import Universe
from .openwpm import OpenWPMCrawler
from .vpn import VantagePointManager

__all__ = [
    "ANALYSIS_ATS",
    "ANALYSIS_LABELS",
    "ANALYSIS_MALWARE",
    "CrawlExecutionError",
    "CrawlExecutor",
    "CrawlOutcome",
    "CrawlSpec",
    "default_parallelism",
]

#: Per-crawl analyses a worker can run before shipping results back.
#: Each is a pure function of (log, universe), so running it next to the
#: crawl costs nothing in determinism and saves serializing + re-walking
#: the log in the parent.
ANALYSIS_LABELS = "labels"
ANALYSIS_ATS = "ats"
ANALYSIS_MALWARE = "malware"

_KNOWN_ANALYSES = frozenset({ANALYSIS_LABELS, ANALYSIS_ATS, ANALYSIS_MALWARE})


def default_parallelism() -> int:
    """The executor's default worker count (``os.cpu_count()``)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CrawlSpec:
    """One independent crawl: what to visit, from where, and what to derive.

    ``key`` identifies the crawl in results and errors; result ordering
    follows the order specs were submitted in, regardless of which
    worker finishes first.
    """

    key: str
    country: str
    domains: Tuple[str, ...]
    keep_html: bool = True
    epoch: str = "crawl"
    analyses: Tuple[str, ...] = ()
    #: Datastore run kind; defaults to ``openwpm:<key>`` when a store is
    #: attached.  Callers with their own naming (``Study``) set it so the
    #: sequential accessors land on the same manifest rows.
    store_kind: str = ""

    def __post_init__(self) -> None:
        unknown = set(self.analyses) - _KNOWN_ANALYSES
        if unknown:
            raise ValueError(f"unknown analyses: {sorted(unknown)}")


@dataclass
class CrawlOutcome:
    """Everything one worker produced for one :class:`CrawlSpec`."""

    key: str
    country: str
    log: CrawlLog
    labels: Optional[PartyLabels] = None
    ats: Optional[ATSResult] = None
    malware: Optional[MalwareReport] = None
    #: Per-event tallies counted inside a forked worker (whose local
    #: progress events cannot reach the parent's callback); the parent
    #: replays them as ``progress(event, count=n, ...)`` after the pool
    #: drains.  ``None`` on backends where progress fired live.
    event_counts: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class _WorkerFailure:
    """A crawl failure shipped back as a value (never raised in-pool)."""

    key: str
    country: str
    message: str
    worker_traceback: str


class CrawlExecutionError(RuntimeError):
    """A crawl failed inside the executor.

    Carries which crawl broke (``key``, ``country``) and the worker-side
    traceback so a multi-process failure is as debuggable as an inline
    one.
    """

    def __init__(self, key: str, country: str, message: str,
                 worker_traceback: str = "") -> None:
        detail = f"crawl {key!r} (country {country}) failed: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)
        self.key = key
        self.country = country
        self.message = message
        self.worker_traceback = worker_traceback


@dataclass
class _WorkerContext:
    """Everything a worker needs; inherited via fork, shared via threads.

    ``store_path`` travels as a path, never as an open handle: SQLite
    connections must not cross ``fork``, so each worker opens its own
    connection against the shared WAL store.

    ``progress`` is the per-site observation hook (see
    :meth:`OpenWPMCrawler.crawl`).  It only fires *live* on the serial
    and thread backends: a forked child calling the parent's callback
    would publish events into its own copy of the process.  The fork
    path therefore strips the callable and sets ``count_events``
    instead — workers tally event counts locally, ship them back on the
    :class:`CrawlOutcome`, and the parent replays the totals, so
    ``repro crawl --stats`` reports the same counts at any parallelism.
    """

    universe: Universe
    vantage_points: VantagePointManager
    classifier: Optional[ATSClassifier] = None
    store_path: Optional[str] = None
    baseline_path: Optional[str] = None
    progress: Optional[Callable[..., None]] = None
    count_events: bool = False


#: Set by the parent immediately before spawning a fork-based pool so
#: children inherit it by copy-on-write (nothing large is ever pickled).
_FORK_CONTEXT: Optional[_WorkerContext] = None


def _crawl_spec_log(context: _WorkerContext, spec: CrawlSpec,
                    progress: Optional[Callable[..., None]]) -> CrawlLog:
    """Produce the spec's crawl log, through the store when one is set.

    With a store attached, fully stored crawls load without a browser,
    partially stored ones resume at the first missing site, and fresh
    ones checkpoint after every site — all yielding logs bit-identical
    to a plain uninterrupted crawl.  When a baseline store is attached
    too, each crawl runs as a delta against the previous epoch's rows
    (:mod:`repro.datastore.delta`).
    """
    vantage = context.vantage_points.point(spec.country)
    if context.store_path is not None:
        from ..datastore import CrawlStore, stored_crawl

        with CrawlStore(context.store_path) as store:
            if context.baseline_path is not None:
                with CrawlStore(context.baseline_path) as baseline:
                    return stored_crawl(
                        store, context.universe, vantage,
                        spec.store_kind or f"openwpm:{spec.key}",
                        list(spec.domains), epoch=spec.epoch,
                        keep_html=spec.keep_html, baseline=baseline,
                        progress=progress,
                    )
            return stored_crawl(
                store, context.universe, vantage,
                spec.store_kind or f"openwpm:{spec.key}",
                list(spec.domains), epoch=spec.epoch,
                keep_html=spec.keep_html, progress=progress,
            )
    crawler = OpenWPMCrawler(context.universe, vantage, epoch=spec.epoch,
                             keep_html=spec.keep_html)
    return crawler.crawl(list(spec.domains), progress=progress)


def _execute_spec(context: _WorkerContext,
                  spec: CrawlSpec) -> Union[CrawlOutcome, _WorkerFailure]:
    """Run one crawl plus its requested analyses; never raises."""
    try:
        progress = context.progress
        counts: Optional[Counter] = None
        if progress is None and context.count_events:
            counts = Counter()

            def progress(event: str, **fields) -> None:
                counts[event] += 1

        log = _crawl_spec_log(context, spec, progress)
        outcome = CrawlOutcome(
            key=spec.key, country=spec.country, log=log,
            event_counts=dict(counts) if counts is not None else None,
        )
        wants = set(spec.analyses)
        if wants & {ANALYSIS_LABELS, ANALYSIS_ATS, ANALYSIS_MALWARE}:
            outcome.labels = label_parties(
                log, cert_lookup=context.universe.certificate_for
            )
        if ANALYSIS_ATS in wants:
            if context.classifier is None:
                raise RuntimeError("ATS analysis requested without a classifier")
            outcome.ats = context.classifier.classify_log(
                log, third_party_fqdns=outcome.labels.all_third_party_fqdns
            )
        if ANALYSIS_MALWARE in wants:
            outcome.malware = analyze_malware(
                log,
                outcome.labels,
                lambda domain: context.universe.scanner_hits(domain, spec.country),
            )
        return outcome
    except Exception as exc:
        return _WorkerFailure(
            key=spec.key,
            country=spec.country,
            message=f"{type(exc).__name__}: {exc}",
            worker_traceback=traceback.format_exc(),
        )


def _execute_forked(spec: CrawlSpec) -> Union[CrawlOutcome, _WorkerFailure]:
    """Entry point inside a forked worker: read the inherited context."""
    context = _FORK_CONTEXT
    if context is None:  # pragma: no cover - defensive
        return _WorkerFailure(spec.key, spec.country,
                              "worker context missing (fork misconfigured)", "")
    return _execute_spec(context, spec)


class CrawlExecutor:
    """Fans independent crawls out across a worker pool.

    Deterministic by construction: results come back in submission
    order, each crawl is internally sequential, and every analysis a
    worker runs is a pure function of its own crawl log.
    """

    def __init__(
        self,
        universe: Universe,
        vantage_points: VantagePointManager,
        *,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        classifier: Optional[ATSClassifier] = None,
        store=None,
        baseline=None,
        progress: Optional[Callable[..., None]] = None,
    ) -> None:
        """``store`` (a :class:`~repro.datastore.CrawlStore` or a path)
        makes every crawl persistent and resumable: workers record
        per-site completion and skip sites the store already holds.
        ``baseline`` (same type) is a previous epoch's store; with both
        set, workers splice unchanged sites from the baseline instead of
        rendering them (:mod:`repro.datastore.delta`).

        ``progress(event, **fields)`` observes site/run milestones live
        on the serial and thread backends; the process backend tallies
        events in the workers and replays the per-crawl totals (with a
        ``count=`` field) once the pool drains — see
        :class:`_WorkerContext`.
        """
        if backend not in (None, "process", "thread", "serial"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.universe = universe
        self.vantage_points = vantage_points
        self.parallelism = max(1, int(parallelism or default_parallelism()))
        self.backend = backend
        self._classifier = classifier
        self.store_path = getattr(store, "path", store)
        self.baseline_path = getattr(baseline, "path", baseline)
        self.progress = progress

    # ------------------------------------------------------------------

    def _resolve_backend(self, spec_count: int) -> str:
        if self.parallelism == 1 or spec_count <= 1:
            return "serial"
        if self.backend is not None and self.backend != "process":
            return self.backend
        if "fork" in multiprocessing.get_all_start_methods():
            return "process"
        # No fork (e.g. Windows): pickling the whole universe per worker
        # would dwarf the crawl itself, so degrade to threads.
        return "thread" if self.backend is None else "thread"

    def _context_for(self, specs: Sequence[CrawlSpec]) -> _WorkerContext:
        classifier = self._classifier
        if classifier is None and any(
            ANALYSIS_ATS in spec.analyses for spec in specs
        ):
            # Built once in the parent, pre-fork, so every worker shares
            # the compiled filter lists by copy-on-write.
            classifier = ATSClassifier.from_texts(
                self.universe.easylist_text, self.universe.easyprivacy_text
            )
            self._classifier = classifier
        return _WorkerContext(self.universe, self.vantage_points, classifier,
                              store_path=self.store_path,
                              baseline_path=self.baseline_path,
                              progress=self.progress)

    # ------------------------------------------------------------------

    def run(self, specs: Iterable[CrawlSpec]) -> List[CrawlOutcome]:
        """Execute every spec; return outcomes in submission order.

        Raises :class:`CrawlExecutionError` for the first (in submission
        order) spec whose crawl failed, after the whole batch has
        drained — the pool never deadlocks on a poisoned spec.
        """
        spec_list = list(specs)
        keys = [spec.key for spec in spec_list]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate crawl spec keys")
        if not spec_list:
            return []

        backend = self._resolve_backend(len(spec_list))
        context = self._context_for(spec_list)
        workers = min(self.parallelism, len(spec_list))

        if backend == "serial":
            results = [_execute_spec(context, spec) for spec in spec_list]
        elif backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(lambda spec: _execute_spec(context, spec), spec_list)
                )
        else:
            results = self._run_forked(context, spec_list, workers)

        for result in results:
            if isinstance(result, _WorkerFailure):
                raise CrawlExecutionError(result.key, result.country,
                                          result.message,
                                          result.worker_traceback)
        if self.progress is not None:
            # Forked workers counted events locally; replay the totals so
            # observers see the same tallies as a serial run would emit.
            for result in results:
                if result.event_counts:
                    for event, count in sorted(result.event_counts.items()):
                        self.progress(event, count=count, key=result.key,
                                      country=result.country)
        return results

    def _run_forked(
        self, context: _WorkerContext, specs: Sequence[CrawlSpec], workers: int
    ) -> List[Union[CrawlOutcome, _WorkerFailure]]:
        global _FORK_CONTEXT
        mp_context = multiprocessing.get_context("fork")
        # Per-site progress callbacks would fire inside the children;
        # strip the callable but keep counting, so the parent can replay
        # per-crawl event totals (documented on _WorkerContext).
        _FORK_CONTEXT = replace(context, progress=None,
                                count_events=context.progress is not None)
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=mp_context) as pool:
                return list(pool.map(_execute_forked, specs))
        finally:
            _FORK_CONTEXT = None
