"""DOM queries used by the crawlers and detectors."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from .dom import Element

__all__ = [
    "find_all",
    "find_first",
    "elements_with_keyword",
    "links",
    "scripts",
    "meta_tags",
    "head",
    "body",
]


def find_all(
    root: Element,
    tag: Optional[str] = None,
    *,
    predicate: Optional[Callable[[Element], bool]] = None,
) -> List[Element]:
    """All descendant elements matching ``tag`` and/or ``predicate``."""
    results = []
    for element in root.iter():
        if tag is not None and element.tag != tag.lower():
            continue
        if predicate is not None and not predicate(element):
            continue
        results.append(element)
    return results


def find_first(
    root: Element,
    tag: Optional[str] = None,
    *,
    predicate: Optional[Callable[[Element], bool]] = None,
) -> Optional[Element]:
    """First matching descendant, or ``None``."""
    for element in root.iter():
        if tag is not None and element.tag != tag.lower():
            continue
        if predicate is not None and not predicate(element):
            continue
        return element
    return None


def elements_with_keyword(root: Element, keywords: Iterable[str]) -> List[Element]:
    """Elements whose *own* text contains any keyword (case-insensitive).

    Matching on own text (not descendant text) pinpoints the clickable
    element itself, the way the paper's Selenium crawler locates age-gate
    buttons before inspecting their ancestors.
    """
    lowered_keywords = [keyword.lower() for keyword in keywords]
    matches = []
    for element in root.iter():
        text = element.own_text().lower()
        if not text:
            continue
        if any(keyword in text for keyword in lowered_keywords):
            matches.append(element)
    return matches


def links(root: Element) -> List[Element]:
    """All anchor elements with an ``href``."""
    return find_all(root, "a", predicate=lambda e: bool(e.get("href")))


def scripts(root: Element) -> List[Element]:
    """All ``<script>`` elements (external and inline)."""
    return find_all(root, "script")


def meta_tags(root: Element, name: Optional[str] = None) -> List[Element]:
    """All ``<meta>`` tags, optionally filtered by ``name`` attribute.

    Used to detect the ASACP Restricted-To-Adults label
    (``<meta name="rating" content="RTA-5042-1996-1400-1577-RTA">``).
    """
    tags = find_all(root, "meta")
    if name is None:
        return tags
    lowered = name.lower()
    return [tag for tag in tags if (tag.get("name") or "").lower() == lowered]


def head(root: Element) -> Optional[Element]:
    return find_first(root, "head")


def body(root: Element) -> Optional[Element]:
    return find_first(root, "body")
