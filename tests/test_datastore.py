"""Tests for the persistent crawl datastore: roundtrip fidelity,
checkpoint/resume bit-identity, store-backed execution, and the
``repro report`` / ``repro store info`` CLI surface."""

import pytest

from repro import Study, UniverseConfig
from repro.__main__ import main
from repro.crawler.executor import CrawlExecutor, CrawlSpec
from repro.crawler.openwpm import OpenWPMCrawler
from repro.datastore import (
    CrawlStore,
    MissingRunError,
    SCHEMA_VERSION,
    config_from_json,
    config_to_json,
    run_key,
    stored_crawl,
)
from repro.reporting.tables import (
    render_table2,
    render_table4,
    render_table6,
)

SEED = 20191021


@pytest.fixture()
def store(tmp_path):
    with CrawlStore(str(tmp_path / "crawl.db")) as handle:
        yield handle


class TestRunIdentity:
    def test_config_json_roundtrip_default(self):
        config = UniverseConfig()
        assert config_from_json(config_to_json(config)) == config

    def test_config_json_roundtrip_custom(self):
        config = UniverseConfig(seed=7, scale=0.31, rank_days=90)
        assert config_from_json(config_to_json(config)) == config

    def test_run_key_is_stable_and_sensitive(self, vantage_points):
        config = UniverseConfig(seed=1, scale=0.1)
        es, us = vantage_points.point("ES"), vantage_points.point("US")
        base = run_key(config, es, "openwpm:porn")
        assert base == run_key(config, es, "openwpm:porn")
        assert base != run_key(config, us, "openwpm:porn")
        assert base != run_key(config, es, "openwpm:regular")
        assert base != run_key(UniverseConfig(seed=2, scale=0.1), es,
                               "openwpm:porn")
        assert base != run_key(config, es, "openwpm:porn", keep_html=False)
        assert base != run_key(config, es, "openwpm:porn", epoch="revisit")

    def test_store_rejects_second_config(self, store, universe,
                                         vantage_points):
        store.open_run(universe.config, vantage_points.point("ES"),
                       "openwpm:porn", ["a.com"])
        with pytest.raises(ValueError, match="different UniverseConfig"):
            store.open_run(UniverseConfig(seed=9, scale=0.5),
                           vantage_points.point("ES"),
                           "openwpm:porn", ["a.com"])


class TestRoundtrip:
    def test_crawl_log_roundtrip_over_all_archetypes(self, store, universe,
                                                     vantage_points,
                                                     crawlable_porn):
        """store→load of a full-corpus log equals the in-memory log.

        The session corpus spans every site archetype (all content
        categories, HTTPS and cleartext, banner/age-gate/policy
        variants), so equality here is the roundtrip property over the
        whole generator surface.
        """
        categories = {
            universe.porn_sites[d].content_category for d in crawlable_porn
        }
        assert categories == {"tube", "cams", "proxy", "gallery", "premium"}

        vantage = vantage_points.point("ES")
        in_memory = OpenWPMCrawler(universe, vantage).crawl(crawlable_porn)
        via_store = stored_crawl(store, universe, vantage, "openwpm:porn",
                                 crawlable_porn)
        assert via_store == in_memory          # every field of every record
        assert via_store._seq == in_memory._seq

        reloaded = stored_crawl(store, universe, vantage, "openwpm:porn",
                                crawlable_porn)
        assert reloaded == in_memory

    def test_regular_log_roundtrip(self, store, universe, vantage_points):
        domains = universe.reference_regular_corpus()
        vantage = vantage_points.point("ES")
        in_memory = OpenWPMCrawler(universe, vantage,
                                   keep_html=False).crawl(domains)
        via_store = stored_crawl(store, universe, vantage, "openwpm:regular",
                                 domains, keep_html=False)
        assert via_store == in_memory


class _Abort(Exception):
    """Stands in for SIGKILL between two per-site checkpoints."""


def _abort_after(checkpoint, count):
    calls = {"n": 0}

    def wrapped(domain, log, marks):
        checkpoint(domain, log, marks)
        calls["n"] += 1
        if calls["n"] >= count:
            raise _Abort

    return wrapped


class TestResume:
    ABORT_AFTER = 5

    def _aborted_store(self, path, universe, vantage, domains):
        """Simulate a crawl killed after K per-site checkpoints."""
        with CrawlStore(path) as store:
            state = store.open_run(universe.config, vantage, "openwpm:porn",
                                   domains)
            crawler = OpenWPMCrawler(universe, vantage)
            with pytest.raises(_Abort):
                crawler.crawl(domains, checkpoint=_abort_after(
                    store.checkpointer(state.run_id), self.ABORT_AFTER))

    def test_aborted_then_resumed_log_is_bit_identical(
            self, tmp_path, universe, vantage_points, crawlable_porn):
        path = str(tmp_path / "resume.db")
        vantage = vantage_points.point("ES")
        domains = crawlable_porn
        self._aborted_store(path, universe, vantage, domains)

        with CrawlStore(path) as store:
            state = store.find_run(universe.config, vantage, "openwpm:porn",
                                   domains)
            assert len(state.completed) == self.ABORT_AFTER
            assert not state.finished
            resumed = stored_crawl(store, universe, vantage, "openwpm:porn",
                                   domains)
            manifest = store.run_manifests()[0]

        clean = OpenWPMCrawler(universe, vantage).crawl(domains)
        assert resumed == clean
        assert resumed._seq == clean._seq
        assert manifest.complete
        assert manifest.stats["resumed_from_site"] == self.ABORT_AFTER

    def test_resumed_study_tables_match_clean_study(
            self, tmp_path, universe, vantage_points, crawlable_porn, study):
        """Tables 2/4/6 from an aborted-then-resumed store-backed study
        render byte-identically to the uninterrupted in-memory study."""
        path = str(tmp_path / "resume-study.db")
        vantage = vantage_points.point("ES")
        # The study's porn crawl covers the full sanitized corpus, not
        # just the crawl-survivable subset the other tests use.
        plain = Study(universe, parallelism=1)
        self._aborted_store(path, universe, vantage, plain.corpus_domains())

        restored = Study(universe, parallelism=1, store=path)
        assert render_table2(restored.table2()) == \
            render_table2(study.table2())
        assert render_table4(restored.cookie_stats()) == \
            render_table4(study.cookie_stats())
        assert render_table6(restored.https_report()) == \
            render_table6(study.https_report())


class TestStoreBackedExecution:
    def test_executor_skips_stored_crawls(self, tmp_path, universe,
                                          vantage_points, crawlable_porn,
                                          monkeypatch):
        store_path = str(tmp_path / "exec.db")
        specs = [
            CrawlSpec(key=f"porn:{country}", country=country,
                      domains=tuple(crawlable_porn),
                      store_kind="openwpm:porn")
            for country in ("ES", "US")
        ]
        first = CrawlExecutor(universe, vantage_points, parallelism=2,
                              backend="thread",
                              store=store_path).run(specs)

        def exploding_crawl(self, domains, **kwargs):  # pragma: no cover
            raise AssertionError("stored crawl must not re-crawl")

        monkeypatch.setattr(OpenWPMCrawler, "crawl", exploding_crawl)
        second = CrawlExecutor(universe, vantage_points, parallelism=2,
                               backend="thread",
                               store=store_path).run(specs)
        for before, after in zip(first, second):
            assert before.log == after.log

    def test_study_store_only_raises_on_missing_run(self, tmp_path, universe):
        hydrated = Study(universe, parallelism=1,
                         store=str(tmp_path / "empty.db"), store_only=True)
        with pytest.raises(MissingRunError):
            hydrated.porn_log()

    def test_store_only_requires_store(self, universe):
        with pytest.raises(ValueError):
            Study(universe, store_only=True)


class TestCLI:
    SCALE, CLI_SEED = "0.02", "3"

    def test_report_is_byte_identical_to_study(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        assert main(["study", "--scale", self.SCALE, "--seed", self.CLI_SEED,
                     "--store", db]) == 0
        study_out = capsys.readouterr().out
        assert main(["report", "--store", db]) == 0
        report_out = capsys.readouterr().out
        assert report_out == study_out
        for marker in ("Table 5: fingerprinting", "§5.3 malware:"):
            assert marker in study_out

    def test_store_info_lists_manifests(self, tmp_path, capsys):
        db = str(tmp_path / "info.db")
        assert main(["crawl", "--scale", self.SCALE, "--seed", self.CLI_SEED,
                     "--sites", "6", "--store", db, "--stats"]) == 0
        crawl_out = capsys.readouterr().out
        assert "fetch cache:" in crawl_out
        assert main(["store", "info", db, "--verbose"]) == 0
        info = capsys.readouterr().out
        assert f"schema v{SCHEMA_VERSION}" in info
        assert "openwpm:porn from ES" in info
        assert "6/6" in info
        assert "fetch_cache:" in info
        assert "run key:" in info

    def test_report_on_empty_store_errors(self, tmp_path, capsys):
        db = str(tmp_path / "void.db")
        CrawlStore(db).close()
        assert main(["report", "--store", db]) == 1
        assert "holds no runs" in capsys.readouterr().err
