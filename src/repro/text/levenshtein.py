"""Levenshtein edit distance and normalized domain similarity.

Section 4.2 labels an embedded service as first party when its FQDN is
within similarity 0.7 of the host website's FQDN, grouping e.g.
``doublepimp.com`` with ``doublepimpssl.com`` while keeping
``doubleclick.net`` separate.
"""

from __future__ import annotations

import math
from collections import Counter
from functools import lru_cache
from typing import Optional, Sequence

__all__ = ["levenshtein_distance", "similarity", "domains_similar"]


# Counter objects are heavy (~0.5 KiB each); the live working set is
# the registrable domains of one study, so a 16k cap bounds the cache
# without measurable misses.
@lru_cache(maxsize=16384)
def _char_counts(value: str) -> Counter:
    return Counter(value)


def _common_chars(a: str, b: str) -> int:
    """Size of the character multiset intersection of two strings."""
    counts_a = _char_counts(a)
    counts_b = _char_counts(b)
    if len(counts_a) > len(counts_b):
        counts_a, counts_b = counts_b, counts_a
    common = 0
    for char, count in counts_a.items():
        other = counts_b.get(char, 0)
        common += count if count < other else other
    return common


def levenshtein_distance(
    a: Sequence, b: Sequence, *, max_distance: Optional[int] = None
) -> int:
    """Classic dynamic-programming edit distance (insert/delete/substitute).

    With ``max_distance`` set, the computation is banded: the exact
    distance is returned whenever it is ``<= max_distance``, and
    ``max_distance + 1`` as soon as the distance provably exceeds the
    cutoff (length-difference prefilter, then row-minimum early abort).
    The similarity threshold test only needs "is the distance within
    budget", which makes most domain pairs exit after the prefilter.
    """
    if len(a) < len(b):
        a, b = b, a
    if max_distance is not None:
        if max_distance < 0:
            raise ValueError("max_distance must be >= 0")
        # The distance is at least the length difference.
        if len(a) - len(b) > max_distance:
            return max_distance + 1
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        # Row minima are non-decreasing between rows, so once every cell
        # exceeds the cutoff the final distance must too.
        if max_distance is not None and min(current) > max_distance:
            return max_distance + 1
        previous = current
    distance = previous[-1]
    if max_distance is not None and distance > max_distance:
        return max_distance + 1
    return distance


def similarity(a: str, b: str) -> float:
    """Normalized similarity in [0, 1]: 1 - distance / max(len)."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def domains_similar(a: str, b: str, *, threshold: float = 0.7) -> bool:
    """The paper's same-entity test for two FQDNs.

    The comparison strips a leading ``www.`` and compares the remainder
    case-insensitively; a similarity strictly above ``threshold`` counts as
    the same entity.
    """
    a = a.lower()
    b = b.lower()
    if a.startswith("www."):
        a = a[4:]
    if b.startswith("www."):
        b = b[4:]
    if a == b:
        return True
    # "similarity > threshold" only needs "distance < (1-threshold)*L";
    # band the DP at ceil of that bound — any distance beyond it cannot
    # pass, and within it the banded distance is exact, so the float
    # comparison below is bit-identical to the unbanded implementation.
    longest = max(len(a), len(b))
    cutoff = max(0, math.ceil((1.0 - threshold) * longest))
    # Multiset lower bound, far cheaper than the DP: an edit script of d
    # operations leaves >= max(|a|,|b|) - d characters copied verbatim,
    # and a copied subsequence can never exceed the character multiset
    # intersection — so distance >= longest - common.  Unrelated domain
    # pairs (the vast majority) exit here without touching the DP.
    if longest - _common_chars(a, b) > cutoff:
        return False
    distance = levenshtein_distance(a, b, max_distance=cutoff)
    if distance > cutoff:
        return False
    return 1.0 - distance / longest > threshold
