"""Crawlers: OpenWPM-style measurement, Selenium-style interaction, VPNs."""

from .openwpm import OpenWPMCrawler
from .selenium import (
    AgeGateObservation,
    PolicyObservation,
    SeleniumCrawler,
    SiteInspection,
    find_age_gate_button,
)
from .vpn import VantagePointManager, client_for

__all__ = [
    "OpenWPMCrawler",
    "AgeGateObservation",
    "PolicyObservation",
    "SeleniumCrawler",
    "SiteInspection",
    "find_age_gate_button",
    "VantagePointManager",
    "client_for",
]
