"""Figure 3 — most relevant third-party organizations, porn vs regular."""

from repro.core.ecosystem import build_figure3
from repro.reporting.figures import figure3_ascii, figure3_csv


def test_fig3_organizations(benchmark, study, paper, reporter):
    porn_labels = study.porn_labels()
    regular_labels = study.regular_labels()
    porn_attribution = study.porn_attribution()
    regular_attribution = study.regular_attribution()
    bars = benchmark(
        lambda: build_figure3(
            porn_labels=porn_labels,
            regular_labels=regular_labels,
            porn_attribution=porn_attribution,
            regular_attribution=regular_attribution,
            porn_visited=len(study.porn_log().successful_visits()),
            regular_visited=len(study.regular_log().successful_visits()),
            top_n=19,
        )
    )
    by_org = {entry.organization: entry for entry in bars}

    reporter.row("Alphabet porn prevalence", "74%",
                 f"{by_org['Alphabet'].porn_fraction:.0%}"
                 if "Alphabet" in by_org else "absent")
    exoclick = next((e for e in bars if "ExoClick" in e.organization), None)
    reporter.row("ExoClick porn prevalence", "40%",
                 f"{exoclick.porn_fraction:.0%}" if exoclick else "absent")
    cloudflare = by_org.get("Cloudflare")
    reporter.row("Cloudflare porn prevalence", "35%",
                 f"{cloudflare.porn_fraction:.0%}" if cloudflare else "absent")
    oracle = by_org.get("Oracle")
    reporter.row("Oracle porn prevalence (AddThis)", "~18%",
                 f"{oracle.porn_fraction:.0%}" if oracle else "absent")
    reporter.text(figure3_ascii(bars))
    reporter.text(figure3_csv(bars))

    # Shape: Alphabet leads both ecosystems; ExoClick is porn-exclusive;
    # DoubleClick-style reach is much higher in the regular web.
    assert bars[0].organization == "Alphabet"
    assert bars[0].porn_fraction > 0.5
    assert exoclick is not None
    assert exoclick.porn_fraction > 0.15
    assert exoclick.regular_fraction < 0.01
    facebook = by_org.get("Facebook")
    if facebook is not None:
        assert facebook.porn_fraction < 0.05  # §4.2.3: Facebook is rare
