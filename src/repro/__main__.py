"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``corpus``   — compile and sanitize the §3 corpus, print the accounting.
``crawl``    — crawl N sites from a vantage point, print tracker summary.
``study``    — run the full study and print every table and figure.

Every command accepts ``--scale`` (corpus size as a fraction of the
paper's 6,843 sites) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from . import Study, UniverseConfig
from .net.url import registrable_domain
from .reporting import (
    figure1_ascii,
    figure3_ascii,
    figure4_ascii,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
    render_table7,
    render_table8,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale (1.0 = the paper's 6,843 sites)")
    parser.add_argument("--seed", type=int, default=20191021)


def _build_study(args: argparse.Namespace) -> Study:
    return Study.build(UniverseConfig(seed=args.seed, scale=args.scale))


def cmd_corpus(args: argparse.Namespace) -> int:
    study = _build_study(args)
    candidates, sanitized = study.corpus()
    by_source = candidates.count_by_source()
    print(f"candidates: {len(candidates)}")
    for source, count in sorted(by_source.items()):
        print(f"  {source}: {count}")
    print(f"false positives: {sanitized.false_positives} "
          f"({len(sanitized.unresponsive)} unresponsive, "
          f"{len(sanitized.non_adult)} non-adult)")
    print(f"sanitized corpus: {len(sanitized.corpus)} sites")
    report = study.popularity()
    print(f"always in the top-1M: {report.always_top_1m_count} "
          f"({report.always_top_1m_fraction:.0%})")
    return 0


def cmd_crawl(args: argparse.Namespace) -> int:
    from .crawler import OpenWPMCrawler

    study = _build_study(args)
    domains = study.corpus_domains()[: args.sites]
    crawler = OpenWPMCrawler(
        study.universe, study.vantage_points.point(args.country)
    )
    log = crawler.crawl(domains)
    ok = sum(1 for visit in log.visits if visit.success)
    print(f"crawled {ok}/{len(domains)} sites from {args.country}: "
          f"{len(log.requests)} requests, {len(log.cookies)} cookies, "
          f"{len(log.js_calls)} JS calls")
    third_parties = sorted({
        registrable_domain(record.fqdn) for record in log.requests
        if registrable_domain(record.fqdn)
        != registrable_domain(record.page_domain)
    })
    print(f"{len(third_parties)} third-party domains; top of the list:")
    for domain in third_parties[: args.top]:
        print(f"  {domain}")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    study = _build_study(args)
    print(f"== corpus ({len(study.corpus_domains())} sites) ==")
    print(figure1_ascii(study.popularity()))
    print("\n== Table 1: owners ==")
    print(render_table1(study.owners(), study.best_rank))
    print("\n== Table 2: third parties ==")
    print(render_table2(study.table2()))
    print("\n== Table 3: long tail ==")
    print(render_table3(study.table3()))
    print("\n== Figure 3: organizations ==")
    print(figure3_ascii(study.figure3(top_n=10)))
    print("\n== Table 4: cookies ==")
    print(render_table4(study.cookie_stats()))
    print("\n== Figure 4: cookie syncing ==")
    print(figure4_ascii(study.cookie_sync(),
                        minimum=max(2, int(75 * args.scale))))
    print("\n== Table 6: HTTPS ==")
    print(render_table6(study.https_report()))
    if args.geo:
        print("\n== Table 7: geography ==")
        print(render_table7(study.geography()))
    print("\n== Table 8: banners ==")
    print(render_table8(study.banners("ES"), study.banners("US")))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tales from the Porn' (IMC 2019)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus = subparsers.add_parser("corpus", help="compile the §3 corpus")
    _add_common(corpus)
    corpus.set_defaults(func=cmd_corpus)

    crawl = subparsers.add_parser("crawl", help="crawl sites, show trackers")
    _add_common(crawl)
    crawl.add_argument("--sites", type=int, default=25)
    crawl.add_argument("--country", default="ES",
                       choices=["ES", "US", "UK", "RU", "IN", "SG"])
    crawl.add_argument("--top", type=int, default=15)
    crawl.set_defaults(func=cmd_crawl)

    study = subparsers.add_parser("study", help="run the whole paper")
    _add_common(study)
    study.add_argument("--geo", action="store_true",
                       help="include the six-country Table 7 (slow)")
    study.set_defaults(func=cmd_study)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
