"""Table 7 / §6.1 — per-country third-party populations."""

from conftest import scaled

from repro.reporting.tables import render_table7


def test_table7_geography(benchmark, study, paper, reporter):
    report = benchmark.pedantic(lambda: study.geography(), rounds=1,
                                iterations=1)

    paper_rows = {row[0]: row for row in paper.per_country_fqdns}
    by_country = {row.country: row for row in report.rows}
    for country, fqdns, unique, ats, unique_ats in paper.per_country_fqdns:
        measured = by_country.get(country)
        if measured is None:
            continue
        reporter.row(
            f"{country}: FQDNs / unique / ATS / unique ATS",
            f"{scaled(fqdns)} / {scaled(unique)} / {scaled(ats)} / "
            f"{scaled(unique_ats)}",
            f"{measured.fqdn_count} / {measured.unique_fqdns} / "
            f"{measured.ats_count} / {measured.unique_ats}",
        )
    reporter.row("total distinct FQDNs across countries",
                 scaled(paper.all_country_fqdn_total), report.total_fqdns)
    reporter.row("blocked sites in Russia", scaled(paper.blocked_sites_russia),
                 by_country["RU"].blocked_sites)
    reporter.row("blocked sites in India", scaled(paper.blocked_sites_india),
                 by_country["IN"].blocked_sites)
    reporter.text(render_table7(report))

    # Shape: Russia sees the fewest third parties; every country has
    # unique regional services; the union exceeds any single country.
    fqdn_counts = {row.country: row.fqdn_count for row in report.rows}
    assert fqdn_counts["RU"] == min(fqdn_counts.values())
    assert all(row.unique_fqdns > 0 for row in report.rows)
    assert report.total_fqdns > max(fqdn_counts.values())
    assert by_country["IN"].blocked_sites > by_country["RU"].blocked_sites > 0
