"""``make serve-check``: end-to-end gate for the measurement service.

Boots a :class:`repro.service.ReproServer` on an ephemeral port over a
fresh sharded store, submits one scale-0.02 study job over HTTP, and
FAILS unless:

* two subscribers streaming ``GET /jobs/<id>/events`` concurrently —
  one connected before the job runs, one reconnecting mid-run via
  ``?from=`` — receive **identical** event sequences ending in
  ``job_done``;
* ``GET /jobs/<id>/report`` is **byte-identical** to ``python -m repro
  report --store`` run against the same store in a separate process;
* the full report reassembled from the individually served sections
  (``GET /jobs/<id>/tables/<name>`` plus the headered figures) is
  byte-identical to that CLI report, i.e. every served table matches
  its section of the report exactly.

Exit status 0 on pass, 1 on any violation.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCALE = 0.02
SEED = 20191021

#: Figure sections are served headerless under ``/figures/``; the report
#: prints them with these headers (see ``repro.reporting.sections``).
FIGURE_HEADERS = {
    "figure3": "== Figure 3: organizations ==\n",
    "figure4": "== Figure 4: cookie syncing ==\n",
}


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url) as resp:
        return resp.read()


def _post_json(url: str, document: dict) -> dict:
    request = urllib.request.Request(
        url, method="POST", data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as resp:
        return json.loads(resp.read())


def _stream(url: str, sink: list) -> None:
    with urllib.request.urlopen(url) as resp:
        for chunk in resp:
            sink.append(chunk)


def _fail(message: str) -> int:
    print(f"serve-check: FAIL — {message}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.reporting import FIGURE_SECTIONS, section_names
    from repro.service import ReproServer
    from repro.service.sse import parse_stream

    with tempfile.TemporaryDirectory(prefix="repro-serve-check-") as tmp:
        store = str(pathlib.Path(tmp) / "store")
        server = ReproServer(store, port=0, workers=1, store_shards=2)
        server.start()
        try:
            print(f"serve-check: serving {server.url} (store {store})")
            job = _post_json(server.url + "/jobs",
                             {"seed": SEED, "scale": SCALE})
            events_url = server.url + f"/jobs/{job['id']}/events"

            # Subscriber 1 rides along from the start; subscriber 2
            # joins once the crawl is underway and replays via ?from=0.
            first: list = []
            thread = threading.Thread(target=_stream,
                                      args=(events_url, first))
            thread.start()
            live = server.manager.get(job["id"]).events
            while len(live) < 10 and not live.finished:
                time.sleep(0.01)
            second: list = []
            _stream(events_url + "?from=0", second)
            thread.join(timeout=600)
            if thread.is_alive():
                return _fail("subscriber 1 never saw the stream close")

            one, two = b"".join(first), b"".join(second)
            if one != two:
                return _fail("concurrent subscribers saw different bytes")
            events = list(parse_stream([one]))
            if events[-1][1] != "job_done":
                return _fail(f"stream ended with {events[-1][1]},"
                             " not job_done")
            print(f"serve-check: {len(events)} events,"
                  " two subscribers identical")

            result = subprocess.run(
                [sys.executable, "-m", "repro", "report", "--store", store],
                capture_output=True, text=True, cwd=REPO_ROOT,
                env={"PYTHONPATH": str(REPO_ROOT / "src")},
            )
            if result.returncode != 0:
                return _fail(f"repro report failed:\n{result.stderr}")
            expected = result.stdout

            served_report = _get(
                server.url + f"/jobs/{job['id']}/report").decode()
            if served_report != expected:
                return _fail("GET /report differs from `repro report`")

            parts = []
            for name in section_names(geo=False):
                if name in FIGURE_SECTIONS:
                    ascii_art = _get(
                        server.url + f"/jobs/{job['id']}/figures/{name}"
                    ).decode()
                    parts.append(FIGURE_HEADERS[name] + ascii_art[:-1])
                else:
                    text = _get(
                        server.url + f"/jobs/{job['id']}/tables/{name}"
                    ).decode()
                    parts.append(text[:-1])
            reassembled = "\n\n".join(parts) + "\n"
            if reassembled != expected:
                return _fail("report reassembled from served sections"
                             " differs from `repro report`")
            print(f"serve-check: {len(parts)} served sections reassemble"
                  " the report byte-identically")
        finally:
            server.stop()
    print("serve-check: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
