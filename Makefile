PYTHON ?= python
SCALE ?= 0.2
export PYTHONPATH := src

.PHONY: test bench bench-quick profile store-check parallel-check \
	scale-check serve-check delta-check incremental-check

## Run the tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Run the end-to-end pipeline benchmark for parallelism 1 and 4; writes
## BENCH_pipeline.json at the repo root (each config in its own process).
bench:
	$(PYTHON) benchmarks/test_perf_pipeline.py --scale $(SCALE)

## Fast sequential-only bench smoke (used by CI): scale 0.02, parallelism 1.
## Writes BENCH_quick.json so the checked-in BENCH_pipeline.json stays put.
bench-quick:
	REPRO_PERF_MEM_SCALES=0.02,0.04 REPRO_PERF_DELTA_SCALE=0.05 \
	$(PYTHON) benchmarks/test_perf_pipeline.py --scale 0.02 \
		--parallelism-set 1 --output BENCH_quick.json
	$(PYTHON) -c "import json; \
	d = json.load(open('BENCH_quick.json')); \
	assert d['schema'] == 'bench-pipeline/v7', d['schema']; \
	stages = d['runs'][0]['stages']; \
	wanted = ('analysis:table2', 'analysis:geography', 'analysis:banners', \
	          'analysis:owners', 'analysis:policies', 'analysis:all'); \
	missing = [k for k in wanted if k not in stages]; \
	assert not missing, f'missing analysis stages: {missing}'; \
	assert d['runs'][0]['stage_rss_mb']['crawl:all'] > 0; \
	memory = d['memory_scaling']; \
	assert memory['reference_tables_match'] is True, memory; \
	service = d['service']; \
	assert service['subscribers'] == 8, service; \
	assert service['events_per_sec'] > 0, service; \
	assert service['served_table_p50_ms'] > 0, service; \
	delta = d['delta']; \
	assert delta['stores_identical'] is True, delta; \
	assert delta['spliced'] > 0, delta; \
	assert delta['speedup'] and delta['speedup'] > 1.0, delta; \
	incr = d['incremental_analysis']; \
	assert incr['tables_identical'] is True, incr; \
	assert incr['hits'] > 0 and incr['misses'] > 0, incr; \
	assert incr['speedup'] and incr['speedup'] > 1.0, incr; \
	print('bench-quick: schema v7, analysis:* stages present,', \
	      'streaming tables match reference,', \
	      'service block recorded,', \
	      'delta store byte-identical at', \
	      str(delta['speedup']) + 'x,', \
	      'incremental analysis byte-identical at', \
	      str(incr['speedup']) + 'x')"

## Memory-flatness gate: run the streaming probe (lazy universe, sharded
## store, trim-mode crawl, cursor analyses) at two scales and fail if the
## crawl-path peak RSS ratio exceeds 1.3x or the tables diverge from an
## unsharded in-memory reference.  Scales/threshold via
## REPRO_SCALE_CHECK_SCALES / REPRO_SCALE_CHECK_RATIO.
scale-check:
	$(PYTHON) benchmarks/scale_check.py

## Scheduler identity check (used by CI): the rendered study must be
## byte-identical across --parallelism 1 and 2, and --stats must report
## the sparse similarity engine's counters.
parallel-check:
	$(PYTHON) -m repro study --scale 0.02 --parallelism 1 \
		> /tmp/repro-serial.out
	$(PYTHON) -m repro study --scale 0.02 --parallelism 2 \
		> /tmp/repro-parallel.out
	diff /tmp/repro-serial.out /tmp/repro-parallel.out
	$(PYTHON) -m repro study --scale 0.02 --parallelism 2 --stats \
		| grep "similarity engine:"

## Store replay check (used by CI): run a scale-0.02 study into a fresh
## datastore, re-render everything from the store alone, and require the
## two outputs to be byte-identical.
store-check:
	rm -rf /tmp/repro-store-check.db /tmp/repro-store-check-sharded
	$(PYTHON) -m repro study --scale 0.02 \
		--store /tmp/repro-store-check.db > /tmp/repro-study.out
	$(PYTHON) -m repro report \
		--store /tmp/repro-store-check.db > /tmp/repro-report.out
	diff /tmp/repro-study.out /tmp/repro-report.out
	$(PYTHON) -m repro store reshard /tmp/repro-store-check.db \
		/tmp/repro-store-check-sharded --shards 3
	$(PYTHON) -m repro report \
		--store /tmp/repro-store-check-sharded > /tmp/repro-sharded.out
	diff /tmp/repro-study.out /tmp/repro-sharded.out
	$(PYTHON) -m repro store info /tmp/repro-store-check.db --verbose
	$(PYTHON) -m repro store info /tmp/repro-store-check-sharded --shards

## Measurement-service gate (used by CI): boot `repro serve` on an
## ephemeral port, submit a scale-0.02 study over HTTP, stream its events
## to completion from two concurrent subscribers, and require the served
## report — whole and reassembled from the per-section endpoints — to be
## byte-identical to `repro report` against the same store.
serve-check:
	$(PYTHON) benchmarks/serve_check.py

## Delta-crawl gate (used by CI): evolve the universe one epoch (~5% of
## sites change content), crawl epoch 1 as a delta against the epoch-0
## store and again as a full re-crawl, and require byte-identical stores,
## byte-identical rendered sections, and a >= 3x speedup.  Tune with
## REPRO_DELTA_CHECK_SCALE / _CHURN / _SPEEDUP.
delta-check:
	$(PYTHON) benchmarks/delta_check.py

## Incremental-analysis gate (used by CI): warm the map/merge aggregate
## cache on the seed epoch, delta-crawl one evolved epoch (~5% churn),
## then render every section incrementally and monolithically and require
## byte-identical output, a hit-dominated epoch pass, and a >= 3x
## speedup.  Tune with REPRO_INCREMENTAL_CHECK_SCALE / _CHURN / _SPEEDUP.
incremental-check:
	$(PYTHON) benchmarks/incremental_check.py

## Profile one sequential pipeline run and print the top-20 functions by
## total own time.
profile:
	$(PYTHON) -c "import cProfile, pstats, sys; \
	sys.argv = ['bench']; \
	from benchmarks.test_perf_pipeline import run_pipeline; \
	profiler = cProfile.Profile(); \
	profiler.runcall(run_pipeline, $(SCALE), 1); \
	pstats.Stats(profiler).sort_stats('tottime').print_stats(20)"
