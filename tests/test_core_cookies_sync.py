"""Tests for §5.1.1-§5.1.2: cookie analysis and cookie syncing."""

import base64

import pytest

from repro.browser.events import CookieRecord, CrawlLog, RequestRecord
from repro.core.cookie_analysis import analyze_cookies, decode_cookie_value
from repro.core.cookie_sync import detect_cookie_sync
from repro.net.url import parse_url


def make_cookie(page, domain, name, value, *, session=False, seq=0):
    return CookieRecord(
        page_domain=page, set_by_host=domain, domain=domain, name=name,
        value=value, session=session, secure=True, over_https=True, seq=seq,
    )


def make_request(url, page, *, seq=0):
    parsed = parse_url(url)
    return RequestRecord(
        url=url, fqdn=parsed.host, scheme=parsed.scheme, page_domain=page,
        resource_type="image", initiator=None, referrer=f"https://{page}/",
        seq=seq, status=200,
    )


class TestDecoding:
    def test_plain_value_kept(self):
        assert "abc123" in decode_cookie_value("abc123")

    def test_url_decoding(self):
        decoded = decode_cookie_value("lat%3D40.4%26lon%3D-3.7")
        assert any("lat=40.4" in text for text in decoded)

    def test_base64_decoding(self):
        encoded = base64.b64encode(b"uid123:31.0.0.1").decode()
        decoded = decode_cookie_value(encoded)
        assert any("31.0.0.1" in text for text in decoded)

    def test_base64_without_padding(self):
        encoded = base64.b64encode(b"uid:10.1.2.3").decode().rstrip("=")
        decoded = decode_cookie_value(encoded)
        assert any("10.1.2.3" in text for text in decoded)

    def test_binary_garbage_survives(self):
        # Non-decodable values must not raise.
        assert decode_cookie_value("!!!???") == ["!!!???"]


class TestCookieStatsUnit:
    def build_log(self):
        log = CrawlLog(client_ip="31.0.0.1")
        log.visits = []
        from repro.browser.events import PageVisit

        log.visits.append(PageVisit("site.com", "https://site.com/", True))
        log.cookies = [
            make_cookie("site.com", "site.com", "uid", "a" * 24, seq=1),
            make_cookie("site.com", "site.com", "sess", "b" * 20,
                        session=True, seq=2),
            make_cookie("site.com", "site.com", "tiny", "x", seq=3),
            make_cookie("site.com", "tracker.com", "tid", "c" * 24, seq=4),
            make_cookie("site.com", "tracker.com", "tid", "c" * 24, seq=5),  # dup
            make_cookie(
                "site.com", "exo.com", "uid",
                base64.b64encode(b"zz:31.0.0.1").decode().rstrip("="), seq=6,
            ),
            make_cookie("site.com", "geo.com", "loc",
                        "lat%3D40.4%26lon%3D-3.7%26isp%3DAS64000", seq=7),
            make_cookie("site.com", "big.com", "blob", "d" * 1500, seq=8),
        ]
        return log

    def test_dedup_and_totals(self):
        stats = analyze_cookies(self.build_log())
        assert stats.total_cookies == 7  # duplicate collapsed

    def test_session_and_short_filtered_from_id(self):
        stats = analyze_cookies(self.build_log())
        # uid, tid, exo, geo, blob are ID cookies; sess/tiny are not.
        assert stats.id_cookies == 5

    def test_first_vs_third_party_split(self):
        stats = analyze_cookies(self.build_log())
        assert stats.first_party_id_cookies == 1
        assert stats.third_party_id_cookies == 4

    def test_ip_detection(self):
        stats = analyze_cookies(self.build_log())
        assert stats.ip_cookies == 1
        assert "exo.com" in stats.ip_cookie_domains

    def test_geo_detection_with_isp(self):
        stats = analyze_cookies(self.build_log())
        assert stats.geo_cookies == 1
        assert stats.geo_cookies_with_isp == 1
        assert stats.geo_cookie_sites == {"site.com"}

    def test_huge_cookie_detection(self):
        stats = analyze_cookies(self.build_log())
        assert stats.huge_id_cookies == 1

    def test_top_domains_ranked_by_sites(self):
        stats = analyze_cookies(self.build_log(), top_n=2)
        assert len(stats.top_domains) == 2
        assert stats.top_domains[0].site_count >= stats.top_domains[1].site_count


class TestCookieStatsIntegration:
    def test_headline_fractions(self, study):
        stats = study.cookie_stats()
        assert 0.85 <= stats.sites_with_cookies_fraction <= 1.0
        assert 0.6 <= stats.sites_with_third_party_cookies_fraction <= 0.85

    def test_third_party_id_cookies_majority(self, study):
        stats = study.cookie_stats()
        assert stats.third_party_id_cookies > 0
        assert stats.id_cookies >= stats.third_party_id_cookies

    def test_exoclick_family_dominates_ip_cookies(self, study):
        stats = study.cookie_stats()
        if stats.ip_cookies == 0:
            pytest.skip("no IP cookies at this scale")
        exo = sum(count for domain, count in stats.ip_cookie_domains.items()
                  if domain.startswith("ex"))
        assert exo / stats.ip_cookies > 0.8

    def test_popular_cookies_span_sites(self, study):
        stats = study.cookie_stats()
        coverage = stats.popular_cookie_site_coverage(100)
        assert 0.0 < coverage <= 1.0


class TestCookieSyncUnit:
    def test_value_reuse_detected(self):
        log = CrawlLog()
        log.cookies = [make_cookie("p.com", "origin.com", "uid",
                                   "val12345678", seq=1)]
        log.requests = [
            make_request("https://dest.com/sync?uid=val12345678", "p.com",
                         seq=2)
        ]
        report = detect_cookie_sync(log)
        assert report.pair_counts == {("origin.com", "dest.com"): 1}
        assert report.sites == {"p.com"}

    def test_request_before_cookie_not_counted(self):
        log = CrawlLog()
        log.requests = [
            make_request("https://dest.com/sync?uid=val12345678", "p.com",
                         seq=1)
        ]
        log.cookies = [make_cookie("p.com", "origin.com", "uid",
                                   "val12345678", seq=2)]
        assert detect_cookie_sync(log).pair_count == 0

    def test_same_domain_not_a_sync(self):
        log = CrawlLog()
        log.cookies = [make_cookie("p.com", "origin.com", "uid",
                                   "val12345678", seq=1)]
        log.requests = [
            make_request("https://cdn.origin.com/px?uid=val12345678",
                         "p.com", seq=2)
        ]
        assert detect_cookie_sync(log).pair_count == 0

    def test_short_values_ignored(self):
        log = CrawlLog()
        log.cookies = [make_cookie("p.com", "origin.com", "uid", "abc", seq=1)]
        log.requests = [make_request("https://dest.com/s?uid=abc", "p.com",
                                     seq=2)]
        assert detect_cookie_sync(log).pair_count == 0

    def test_no_delimiter_splitting(self):
        # The value embedded with extra text must NOT match (lower bound).
        log = CrawlLog()
        log.cookies = [make_cookie("p.com", "origin.com", "uid",
                                   "val12345678", seq=1)]
        log.requests = [
            make_request("https://dest.com/s?uid=val12345678-extra", "p.com",
                         seq=2)
        ]
        assert detect_cookie_sync(log).pair_count == 0

    def test_path_segment_match(self):
        log = CrawlLog()
        log.cookies = [make_cookie("p.com", "origin.com", "uid",
                                   "val12345678", seq=1)]
        log.requests = [
            make_request("https://dest.com/pixel/val12345678/m.gif", "p.com",
                         seq=2)
        ]
        assert detect_cookie_sync(log).pair_count == 1

    def test_heavy_pairs_threshold(self):
        log = CrawlLog()
        log.cookies = [make_cookie("p.com", "o.com", "uid", "v" * 12, seq=1)]
        log.requests = [
            make_request(f"https://d.com/s?uid={'v' * 12}", f"p{i}.com",
                         seq=2 + i)
            for i in range(80)
        ]
        report = detect_cookie_sync(log)
        assert report.heavy_pairs(75) == {("o.com", "d.com"): 80}
        assert report.heavy_pairs(100) == {}


class TestCookieSyncIntegration:
    def test_first_party_sync_origins_exist(self, universe, study):
        """Sites passing their ID to ad networks appear as origins."""
        report = study.cookie_sync()
        passers = {d for d, s in universe.porn_sites.items()
                   if s.passes_id_to is not None and s.responsive
                   and not s.crawl_flaky}
        assert report.origins & passers

    def test_exoclick_family_syncs(self, study):
        report = study.cookie_sync()
        assert any(origin.endswith("exosrv.com") or origin == "exosrv.com"
                   for origin, _ in report.pair_counts)

    def test_hprofits_triangle(self, universe, study):
        """hd100546b.com / bd202457b.com sync into hprofits.com (§5.1.2)."""
        report = study.cookie_sync()
        hprofits_edges = {
            pair for pair in report.pair_counts
            if pair[1] == "hprofits.com"
        }
        if not hprofits_edges:
            pytest.skip("hprofits services not embedded at this scale")
        origins = {origin for origin, _ in hprofits_edges}
        assert origins & {"hd100546b.com", "bd202457b.com"}

    def test_sync_sites_subset_of_corpus(self, study):
        report = study.cookie_sync()
        corpus = set(study.corpus_domains())
        assert report.sites <= corpus
