"""Figure 4 / §5.1.2 — cookie synchronization between organizations."""

from conftest import BENCH_SCALE, scaled

from repro.core.cookie_sync import detect_cookie_sync
from repro.reporting.figures import figure4_ascii


def test_fig4_cookie_sync(benchmark, study, paper, reporter):
    log = study.porn_log()
    report = benchmark.pedantic(lambda: detect_cookie_sync(log), rounds=1,
                                iterations=1)

    reporter.row("sites where syncing observed", scaled(paper.sync_sites),
                 len(report.sites))
    reporter.row("distinct (origin, destination) pairs",
                 scaled(paper.sync_pairs), report.pair_count)
    reporter.row("origin domains", scaled(paper.sync_origins),
                 len(report.origins))
    reporter.row("destination domains", scaled(paper.sync_destinations),
                 len(report.destinations))
    top100 = study.top_sites(100)
    reporter.row("coverage of top-100 porn sites", "58%",
                 f"{report.coverage_of(top100):.0%}")
    threshold = max(2, round(paper.figure4_min_cookies * BENCH_SCALE))
    reporter.row(f"pairs exchanging >= {threshold} cookies", "(Fig. 4 edges)",
                 len(report.heavy_pairs(threshold)))
    reporter.text(figure4_ascii(report, minimum=threshold))

    # Shape: thousands of sites involved at full scale, more origins than
    # destinations, the ExoClick family among the heavy syncers, and the
    # hprofits same-organization triangle present.
    assert len(report.sites) > 0.25 * len(study.porn_log().successful_visits())
    assert len(report.origins) > len(report.destinations)
    heavy = report.heavy_pairs(threshold)
    assert heavy
    assert any("exo" in origin for origin, _ in heavy)
    hprofits_origins = {
        origin for origin, destination in report.pair_counts
        if destination == "hprofits.com"
    }
    assert hprofits_origins & {"hd100546b.com", "bd202457b.com"}
