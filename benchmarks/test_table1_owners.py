"""Table 1 — largest clusters of porn sites grouped by parent company."""

from conftest import scaled

from repro.core.owners import discover_owners, normalize_company
from repro.reporting.tables import render_table1


def test_table1_owners(benchmark, study, paper, reporter):
    policy_texts = {
        inspection.domain: inspection.policy.text
        for inspection in study.inspections()
        if inspection.reachable and inspection.policy.link_found
        and inspection.policy.fetched_ok
    }
    landing_html = {
        visit.site_domain: visit.html
        for visit in study.porn_log().successful_visits()
        if visit.html
    }
    report = benchmark.pedantic(
        lambda: discover_owners(
            policy_texts=policy_texts,
            landing_html=landing_html,
            cert_lookup=study.universe.certificate_for,
        ),
        rounds=1, iterations=1,
    )

    reporter.row("companies identified", 24, len(report.clusters))
    reporter.row("sites attributed to companies", scaled(286),
                 report.attributed_sites)
    reporter.row("TF-IDF candidate pairs rejected by verification",
                 "(manual step)", report.rejected_pairs)
    reporter.text(render_table1(report, study.best_rank, top_n=15))

    # Every paper cluster with >= 2 scaled sites must be recovered.
    recovered = {normalize_company(cluster.company)
                 for cluster in report.clusters}
    for company, count, _, _ in paper.owner_clusters[:10]:
        if scaled(count) >= 2:
            assert normalize_company(company) in recovered, company
    # MindGeek's flagship stays pornhub.com.
    mindgeek = next(c for c in report.clusters
                    if normalize_company(c.company) == "mindgeek")
    flagship, rank = mindgeek.most_popular(study.best_rank)
    assert flagship == "pornhub.com"
