"""Section 4.1 / Table 1 — discovering website owners.

Two-stage method, as in the paper:

1. *Discovery*: TF-IDF similarity between privacy policies and between
   landing-page ``<head>`` markup proposes candidate same-owner pairs.
2. *Verification* (the paper's manual pass, automated here): a candidate
   pair is confirmed only when both sites carry the same organization
   evidence — the company named in the policy's controller clause, the
   ``<head>`` copyright/network metadata, or the X.509 Subject
   organization.  This kills the false positives that template-shared
   boilerplate would otherwise create.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..html.parser import parse_html_cached
from ..html.query import head, meta_tags
from ..net.tls import Certificate

__all__ = [
    "OwnerCluster",
    "OwnerReport",
    "extract_policy_company",
    "extract_head_organization",
    "normalize_company",
    "discover_owners",
]

_POLICY_COMPANY_RE = re.compile(
    r"explains how (.+?) collects|controller in respect of personal data "
    r"processed through .+? include|operated by (.+?) as part",
    re.IGNORECASE,
)

_GENERIC_COMPANY_RE = re.compile(r"^the operator of ", re.IGNORECASE)

_LEGAL_SUFFIXES = (
    "ltd.", "ltd", "inc.", "inc", "llc", "s.l.", "s.l", "b.v.", "b.v",
    "sarl", "s.a.", "s.a", "ou", "corp.", "corp", "media group", "holding",
)


def normalize_company(name: str) -> str:
    """Canonical company key: lower-case, legal suffixes stripped."""
    cleaned = name.strip().lower().rstrip(".")
    changed = True
    while changed:
        changed = False
        for suffix in _LEGAL_SUFFIXES:
            if cleaned.endswith(" " + suffix):
                cleaned = cleaned[: -len(suffix) - 1].strip()
                changed = True
    return cleaned


def extract_policy_company(text: str) -> Optional[str]:
    """The data-controller name stated in a privacy policy, if concrete."""
    match = _POLICY_COMPANY_RE.search(text)
    if not match:
        return None
    company = next((group for group in match.groups() if group), None)
    if not company:
        return None
    company = company.strip().strip('."')
    if _GENERIC_COMPANY_RE.match(company):
        return None
    return company


def extract_head_organization(html: str) -> Optional[str]:
    """Owner evidence in ``<head>``: copyright meta or network CMS tag."""
    # Only <head> metadata is consulted and the renderer always emits a
    # literal "</head>", so parsing stops there: landing-page bodies are
    # many times the head's size and never carry owner evidence (the
    # only body meta the universe produces is the RTA label).  Markup
    # without a head terminator falls back to the full parse.
    head_end = html.find("</head>")
    if head_end != -1:
        html = html[: head_end + len("</head>")]
    # Read-only queries only, so the shared parse cache is safe.
    document = parse_html_cached(html)
    head_element = head(document)
    if head_element is None:
        return None
    for meta in meta_tags(document, "copyright"):
        content = meta.get("content")
        if content:
            return content
    for meta in meta_tags(document, "generator"):
        content = meta.get("content") or ""
        match = re.match(r"(.+?) Network CMS", content)
        if match:
            return match.group(1)
    return None


@dataclass
class OwnerCluster:
    """One Table 1 row: a company and its websites."""

    company: str
    sites: List[str] = field(default_factory=list)
    evidence: Set[str] = field(default_factory=set)  # policy|head|certificate

    @property
    def size(self) -> int:
        return len(self.sites)

    def most_popular(self, best_rank: Callable[[str], int]) -> Tuple[str, int]:
        ranked = sorted(
            ((best_rank(site) or 10**9, site) for site in self.sites)
        )
        rank, site = ranked[0]
        return (site, rank)


@dataclass
class OwnerReport:
    clusters: List[OwnerCluster] = field(default_factory=list)
    #: Pairs proposed by TF-IDF that verification rejected.
    rejected_pairs: int = 0
    attributed_sites: int = 0

    def table1(
        self, best_rank: Callable[[str], int], *, top_n: int = 15
    ) -> List[Tuple[str, int, str, int]]:
        """(company, #sites, flagship, flagship best rank), largest first."""
        rows = []
        for cluster in sorted(self.clusters, key=lambda c: -c.size)[:top_n]:
            site, rank = cluster.most_popular(best_rank)
            rows.append((cluster.company, cluster.size, site, rank))
        return rows


def _policy_similarity_pairs(
    sites: Sequence[str], texts: Sequence[str], *, threshold: float
) -> List[Tuple[int, int]]:
    """Candidate same-owner pairs from policy TF similarity.

    Log-TF weighting without IDF, exactly as the historical dense
    implementation (retained as :func:`_policy_similarity_pairs_dense`),
    but streamed from the blocked sparse gram kernel: no
    ``(n × vocab)`` matrix, no ``n × n`` gram, and no ``np.triu``
    boolean mask are ever allocated.  Pair order (row-major upper
    triangle) is unchanged.
    """
    if len(texts) < 2:
        return []
    from ..text.sparse import SimilarityEngine

    engine = SimilarityEngine(use_idf=False).fit(texts)
    return list(engine.similar_pairs(threshold))


def _policy_similarity_pairs_dense(
    sites: Sequence[str], texts: Sequence[str], *, threshold: float
) -> List[Tuple[int, int]]:
    """Historical dense-matrix reference for the discovery stage
    (kept for parity tests and the benchmark's before/after measure)."""
    n = len(texts)
    if n < 2:
        return []
    from ..text.tokenize import term_counts

    counts = [term_counts(text) for text in texts]
    vocabulary: Dict[str, int] = {}
    for count in counts:
        for term in count:
            vocabulary.setdefault(term, len(vocabulary))
    matrix = np.zeros((n, len(vocabulary)))
    for row, count in enumerate(counts):
        for term, frequency in count.items():
            matrix[row, vocabulary[term]] = 1.0 + np.log(frequency)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    matrix /= norms
    gram = matrix @ matrix.T
    pairs = np.argwhere(np.triu(gram > threshold, k=1))
    return [(int(i), int(j)) for i, j in pairs]


def discover_owners(
    *,
    policy_texts: Dict[str, str],
    landing_html: Dict[str, str],
    cert_lookup: Optional[Callable[[str], Optional[Certificate]]] = None,
    policy_threshold: float = 0.9,
) -> OwnerReport:
    """Run discovery + verification and return the owner clusters."""
    report = OwnerReport()

    evidence_of: Dict[str, Tuple[str, str]] = {}  # site -> (company key, kind)
    display_name: Dict[str, str] = {}

    def record_evidence(site: str, company: str, kind: str) -> None:
        key = normalize_company(company)
        if not key:
            return
        if site not in evidence_of:
            evidence_of[site] = (key, kind)
            display_name.setdefault(key, company.strip())

    for site, text in policy_texts.items():
        company = extract_policy_company(text)
        if company:
            record_evidence(site, company, "policy")
    for site, html in landing_html.items():
        organization = extract_head_organization(html)
        if organization:
            record_evidence(site, organization, "head")
    if cert_lookup is not None:
        for site in landing_html:
            certificate = cert_lookup(site)
            if certificate is not None and certificate.has_organization:
                record_evidence(site, certificate.subject_o, "certificate")

    # Discovery stage: TF-IDF candidate pairs over policies; count how many
    # the verification stage rejects (the paper's manual-filter analogue).
    policy_sites = [site for site in policy_texts if policy_texts[site]]
    candidate_pairs = _policy_similarity_pairs(
        policy_sites, [policy_texts[site] for site in policy_sites],
        threshold=policy_threshold,
    )
    for i, j in candidate_pairs:
        left = evidence_of.get(policy_sites[i])
        right = evidence_of.get(policy_sites[j])
        if left is None or right is None or left[0] != right[0]:
            report.rejected_pairs += 1

    clusters: Dict[str, OwnerCluster] = {}
    for site, (key, kind) in evidence_of.items():
        cluster = clusters.get(key)
        if cluster is None:
            cluster = OwnerCluster(company=display_name[key])
            clusters[key] = cluster
        cluster.sites.append(site)
        cluster.evidence.add(kind)
    report.clusters = [cluster for cluster in clusters.values()]
    report.attributed_sites = sum(cluster.size for cluster in report.clusters)
    return report
