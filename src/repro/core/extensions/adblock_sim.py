"""Extension (§10) — effectiveness of blocklist-based anti-tracking.

The paper's conclusion warns that porn-specific trackers "might render
many anti-tracking technologies based on blacklists insufficient" and
proposes studying ad-blocker effectiveness as future work.  This module
runs that study: the same corpus is crawled with an EasyList/EasyPrivacy
content blocker enabled, and the residual tracking surface is compared
against the unprotected crawl.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from ...browser.browser import Browser
from ...browser.events import CrawlLog
from ...crawler.vpn import client_for
from ...net.geo import VantagePoint
from ...net.url import registrable_domain
from ...webgen.universe import Universe
from ..ats import ATSClassifier
from ..cookie_analysis import MIN_ID_LENGTH
from ..fingerprinting import analyze_fingerprinting

__all__ = ["AdblockComparison", "crawl_with_adblocker", "compare_protection"]


@dataclass
class AdblockComparison:
    """Unprotected vs blocked crawl, side by side."""

    sites_crawled: int = 0
    requests_blocked: int = 0
    # Tracking surface without / with the blocker:
    baseline_third_party_cookies: int = 0
    protected_third_party_cookies: int = 0
    baseline_canvas_sites: Set[str] = field(default_factory=set)
    protected_canvas_sites: Set[str] = field(default_factory=set)
    baseline_tracker_domains: Set[str] = field(default_factory=set)
    protected_tracker_domains: Set[str] = field(default_factory=set)

    @property
    def cookie_reduction(self) -> float:
        if not self.baseline_third_party_cookies:
            return 0.0
        return 1.0 - (self.protected_third_party_cookies
                      / self.baseline_third_party_cookies)

    @property
    def canvas_reduction(self) -> float:
        if not self.baseline_canvas_sites:
            return 0.0
        return 1.0 - (len(self.protected_canvas_sites)
                      / len(self.baseline_canvas_sites))

    @property
    def surviving_tracker_fraction(self) -> float:
        """Trackers still contacting the browser despite the blocker."""
        if not self.baseline_tracker_domains:
            return 0.0
        return len(self.protected_tracker_domains) / \
            len(self.baseline_tracker_domains)


def crawl_with_adblocker(
    universe: Universe,
    vantage: VantagePoint,
    domains: Sequence[str],
    classifier: ATSClassifier,
) -> CrawlLog:
    """Crawl with an EasyList/EasyPrivacy blocker cancelling requests."""
    browser = Browser(
        universe,
        client_for(vantage),
        keep_html=False,
        request_filter=lambda url, page, rtype: classifier.matches_url(
            url, first_party_host=page, resource_type=rtype
        ),
    )
    for domain in domains:
        browser.visit(domain)
    log = browser.log
    # Stash the block counter on the log for reporting.
    log.blocked_requests = browser.blocked_requests  # type: ignore[attr-defined]
    return log


def _third_party_id_cookie_count(log: CrawlLog) -> int:
    seen = set()
    count = 0
    for cookie in log.cookies:
        key = (cookie.page_domain, cookie.domain, cookie.name, cookie.value)
        if key in seen:
            continue
        seen.add(key)
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        if registrable_domain(cookie.domain) != \
                registrable_domain(cookie.page_domain):
            count += 1
    return count


def _tracker_domains(log: CrawlLog) -> Set[str]:
    """Registrable domains that stored third-party ID cookies or ran
    fingerprinting scripts."""
    domains: Set[str] = set()
    for cookie in log.cookies:
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        base = registrable_domain(cookie.domain)
        if base != registrable_domain(cookie.page_domain):
            domains.add(base)
    report = analyze_fingerprinting(log.js_calls)
    domains.update(report.canvas_services())
    return domains


def compare_protection(
    universe: Universe,
    vantage: VantagePoint,
    domains: Sequence[str],
    *,
    baseline_log: CrawlLog,
    classifier: ATSClassifier,
) -> AdblockComparison:
    """Run the protected crawl and compare against the unprotected one."""
    protected = crawl_with_adblocker(universe, vantage, domains, classifier)
    comparison = AdblockComparison(sites_crawled=len(domains))
    comparison.requests_blocked = getattr(protected, "blocked_requests", 0)
    comparison.baseline_third_party_cookies = \
        _third_party_id_cookie_count(baseline_log)
    comparison.protected_third_party_cookies = \
        _third_party_id_cookie_count(protected)
    comparison.baseline_canvas_sites = \
        analyze_fingerprinting(baseline_log.js_calls).canvas_sites
    comparison.protected_canvas_sites = \
        analyze_fingerprinting(protected.js_calls).canvas_sites
    comparison.baseline_tracker_domains = _tracker_domains(baseline_log)
    comparison.protected_tracker_domains = _tracker_domains(protected)
    return comparison
