"""Integration tests for the OpenWPM-style and Selenium-style crawlers."""

import pytest

from repro.crawler.openwpm import OpenWPMCrawler
from repro.crawler.selenium import SeleniumCrawler, find_age_gate_button
from repro.crawler.vpn import VantagePointManager, client_for
from repro.html.parser import parse_html


class TestVantagePoints:
    def test_default_manager_has_six_countries(self, vantage_points):
        assert len(vantage_points) == 6
        assert set(vantage_points.country_codes) == \
            {"ES", "US", "UK", "RU", "IN", "SG"}

    def test_home_is_physical_spain(self, vantage_points):
        assert vantage_points.home.country_code == "ES"
        assert not vantage_points.home.via_vpn

    def test_unknown_country_raises(self, vantage_points):
        with pytest.raises(KeyError):
            vantage_points.point("BR")

    def test_client_epoch(self, vantage_points):
        client = vantage_points.client("RU", epoch="sanitization")
        assert client.country_code == "RU"
        assert client.epoch == "sanitization"

    def test_duplicate_countries_rejected(self, vantage_points):
        point = vantage_points.point("ES")
        with pytest.raises(ValueError):
            VantagePointManager([point, point])


class TestOpenWPM:
    def test_crawl_visits_every_domain(self, universe, vantage_points,
                                        crawlable_porn):
        crawler = OpenWPMCrawler(universe, vantage_points.home)
        log = crawler.crawl(crawlable_porn[:15])
        assert len(log.visits) == 15
        assert all(v.success for v in log.visits)

    def test_flaky_sites_fail_in_main_crawl(self, universe, vantage_points):
        flaky = sorted(d for d, s in universe.porn_sites.items()
                       if s.responsive and s.crawl_flaky)
        if not flaky:
            pytest.skip("no flaky sites at this scale")
        crawler = OpenWPMCrawler(universe, vantage_points.home)
        log = crawler.crawl(flaky[:3])
        assert all(not v.success for v in log.visits)

    def test_single_session_shared_log(self, universe, vantage_points,
                                       crawlable_porn):
        crawler = OpenWPMCrawler(universe, vantage_points.home)
        first = crawler.crawl(crawlable_porn[:3])
        combined = crawler.crawl(crawlable_porn[3:6], log=first)
        assert combined is first
        assert len(combined.visits) == 6

    def test_log_carries_vantage_metadata(self, universe, vantage_points,
                                          crawlable_porn):
        crawler = OpenWPMCrawler(universe, vantage_points.point("RU"))
        log = crawler.crawl(crawlable_porn[:2])
        assert log.country_code == "RU"
        assert log.client_ip.startswith("77.")


class TestSeleniumGateDetection:
    def test_button_gate_detected_and_bypassed(self, universe, vantage_points):
        gated = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky and s.age_gate is not None
            and s.age_gate.mode == "button" and s.age_gate.countries is None
        )
        crawler = SeleniumCrawler(universe, vantage_points.home)
        inspection = crawler.inspect(gated[0])
        assert inspection.age_gate.detected
        assert inspection.age_gate.clicked
        assert inspection.age_gate.bypassed

    def test_ungated_site_not_flagged(self, universe, vantage_points):
        plain = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky and s.age_gate is None
        )
        crawler = SeleniumCrawler(universe, vantage_points.home)
        inspection = crawler.inspect(plain[0])
        assert not inspection.age_gate.detected

    def test_social_login_gate_not_bypassable(self, universe, vantage_points):
        social = next(
            (d for d, s in universe.porn_sites.items()
             if s.age_gate is not None and s.age_gate.mode == "social_login"),
            None,
        )
        if social is None:
            pytest.skip("no social-login gate at this scale")
        crawler = SeleniumCrawler(universe, vantage_points.point("RU"))
        inspection = crawler.inspect(social)
        assert inspection.age_gate.detected
        assert inspection.age_gate.requires_login
        assert not inspection.age_gate.bypassed

    def test_keyword_in_body_text_is_not_a_gate(self):
        # Plain keyword matching would flag this; ancestor verification
        # must not.
        html = """
        <html><body>
          <p>Enter the world of free movies. Click accept below.</p>
          <button>accept</button>
        </body></html>
        """
        assert find_age_gate_button(parse_html(html)) is None

    def test_floating_overlay_with_warning_is_a_gate(self):
        html = """
        <html><body>
          <div style="position:fixed"><div>
            <h2>You must be 18 years or older to view adult content.</h2>
            <button>Enter</button>
          </div></div>
        </body></html>
        """
        button = find_age_gate_button(parse_html(html))
        assert button is not None
        assert button.own_text() == "Enter"


class TestSeleniumPolicies:
    def test_policy_fetched(self, universe, vantage_points):
        with_policy = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky and s.policy is not None
            and not s.policy.link_broken
        )
        crawler = SeleniumCrawler(universe, vantage_points.home)
        inspection = crawler.inspect(with_policy[0])
        assert inspection.policy.link_found
        assert inspection.policy.fetched_ok
        assert inspection.policy.letter_count > 500

    def test_broken_policy_link_yields_error_status(self, universe,
                                                    vantage_points):
        broken = next(
            (d for d, s in universe.porn_sites.items()
             if s.responsive and not s.crawl_flaky and s.policy is not None
             and s.policy.link_broken and s.banner is not None),
            None,
        )
        if broken is None:
            pytest.skip("no broken-link site with banner at this scale")
        crawler = SeleniumCrawler(universe, vantage_points.home)
        inspection = crawler.inspect(broken)
        if inspection.policy.link_found:
            assert inspection.policy.status == 404

    def test_subscription_cues_detected(self, universe, vantage_points):
        paid = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky and s.subscription == "paid"
        )
        crawler = SeleniumCrawler(universe, vantage_points.home)
        inspection = crawler.inspect(paid[0])
        assert inspection.has_account_option
        assert inspection.has_payment_cue

    def test_rta_label_detected(self, universe, vantage_points):
        labeled = sorted(
            d for d, s in universe.porn_sites.items()
            if s.responsive and not s.crawl_flaky and s.rta_label
        )
        crawler = SeleniumCrawler(universe, vantage_points.home)
        assert crawler.inspect(labeled[0]).rta_labeled
