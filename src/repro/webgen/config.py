"""Calibration targets and universe configuration.

:class:`CalibrationTargets` collects every aggregate statistic the paper
publishes.  The generator samples ground truth from these targets; the
analysis pipeline *re-measures* them from crawl logs, and EXPERIMENTS.md
compares measured values against this table.

All fractions are of the sanitized porn corpus unless noted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["CalibrationTargets", "UniverseConfig", "TIER_NAMES", "DEFAULT_TARGETS"]

#: Popularity tiers by best Alexa rank throughout 2018 (Table 3 / Table 6).
TIER_NAMES: Tuple[str, ...] = ("0-1k", "1k-10k", "10k-100k", "100k+")


@dataclass(frozen=True)
class CalibrationTargets:
    """The paper's published statistics, used to parameterize generation."""

    # --- Section 3: corpus ---------------------------------------------------
    candidates_total: int = 8_099
    from_aggregators: int = 342
    from_alexa_category: int = 22
    from_keyword_search: int = 7_735
    false_positives: int = 1_256
    sanitized_corpus: int = 6_843
    crawlable_corpus: int = 6_346          # §4.2: successfully crawled
    regular_corpus: int = 9_688            # reference dataset (§3)
    regular_crawlable: int = 8_511         # Table 2 corpus size
    always_top_1m: int = 1_103             # Fig. 1: 16% always in top-1M
    always_top_1k: int = 16

    # Of the 1,256 removed candidates, how many were unresponsive porn
    # sites vs. genuinely non-pornographic keyword matches.
    unresponsive_candidates: int = 700
    non_porn_keyword_matches: int = 556

    # --- Section 3/Table 3: per-tier site counts (crawlable porn corpus) ----
    tier_site_counts: Tuple[int, ...] = (73, 536, 3_668, 2_069)

    # --- Section 4.1: owners and business models ------------------------------
    #: Table 1 clusters: (company, number of sites, flagship site, best rank).
    owner_clusters: Tuple[Tuple[str, int, str, int], ...] = (
        ("Gamma Entertainment", 65, "evilangel.com", 5_301),
        ("MindGeek", 54, "pornhub.com", 22),
        ("PaperStreet Media", 38, "teamskeet.com", 10_171),
        ("Techpump", 25, "porn300.com", 2_366),
        ("PMG Entertainment", 15, "private.com", 7_758),
        ("SexMex", 12, "sexmex.xxx", 122_227),
        ("Docler Holding", 10, "livejasmin.com", 36),
        ("Mature.nl", 9, "mature.nl", 6_577),
        ("Liberty Media", 7, "corbinfisher.com", 26_436),
        ("WGCZ", 5, "xvideos.com", 32),
        ("AFS Media LTD", 5, "theclassicporn.com", 13_939),
        ("AEBN", 5, "pornotube.com", 31_148),
        ("Zero Tolerance", 5, "ztod.com", 40_676),
        ("Eurocreme", 5, "eurocreme.com", 110_012),
        ("JM Productions", 5, "jerkoffzone.com", 147_753),
        # Nine further small operators, completing the paper's 24 companies
        # owning 286 sites (names synthesized; the paper does not list them).
        ("Bang Bros Network", 4, "bangbros-hd.com", 18_400),
        ("Adult Time Group", 3, "adulttimehub.com", 27_500),
        ("FapHouse Media", 3, "faphouse-videos.com", 52_000),
        ("VCX Entertainment", 2, "vcxclassics.com", 88_000),
        ("Score Group", 2, "scorevideos.net", 95_000),
        ("Pink Visual", 2, "pinkvisualtube.com", 140_000),
        ("Digital Playground IP", 2, "dpclassics.net", 210_000),
        ("Homegrown Video", 2, "homegrownclips.com", 260_000),
        ("Vivid Corp", 1, "vividarchive.com", 310_000),
    )
    subscription_fraction: float = 0.14    # sites offering accounts
    paid_subscription_fraction: float = 0.23  # of those, behind a paywall
    privacy_policy_fraction: float = 0.16

    # --- Section 4.2 / Table 2: third-party ecosystem -------------------------
    porn_third_party_fqdns: int = 5_457
    porn_first_party_fqdns: int = 727
    regular_third_party_fqdns: int = 21_128
    regular_first_party_fqdns: int = 3_852
    porn_ats_fqdns: int = 663
    regular_ats_fqdns: int = 196
    fqdn_intersection: int = 889
    ats_intersection: int = 86
    attributable_fqdn_fraction: float = 0.74   # §4.2(3): parent company found
    disconnect_only_organizations: int = 142
    total_organizations: int = 1_014

    # --- Table 3: third-party domains per popularity tier ---------------------
    tier_third_party_totals: Tuple[int, ...] = (407, 1_327, 3_702, 2_363)
    tier_third_party_unique: Tuple[int, ...] = (119, 531, 2_115, 1_007)
    all_tier_fraction: float = 0.03        # TP domains present in all 4 tiers

    # --- Section 5.1.1 / Table 4: cookies --------------------------------------
    sites_with_cookies_fraction: float = 0.92
    total_cookies: int = 89_009
    id_cookies: int = 51_648
    third_party_id_cookies: int = 30_247
    cookie_setting_third_parties: int = 3_343
    sites_with_third_party_cookies_fraction: float = 0.72
    huge_cookie_fraction: float = 0.03     # ID cookies > 1,000 chars
    ip_embedding_cookies: int = 2_183
    ip_cookies_exoclick_share: float = 0.97
    geo_cookies: int = 28
    geo_cookie_sites: int = 15
    #: Table 4 rows: (domain, % of porn sites, cookies, % cookies w/ client IP).
    top_cookie_domains: Tuple[Tuple[str, float, int, float], ...] = (
        ("exosrv.com", 0.21, 2_095, 0.85),
        ("addthis.com", 0.17, 1_289, 0.0),
        ("exoclick.com", 0.14, 434, 0.29),
        ("yandex.ru", 0.04, 312, 0.0),
        ("juicyads.com", 0.04, 475, 0.0),
    )

    # --- Section 5.1.2 / Fig. 4: cookie syncing -------------------------------
    sync_sites: int = 2_867
    sync_pairs: int = 4_675
    sync_origins: int = 1_120
    sync_destinations: int = 727
    figure4_min_cookies: int = 75

    # --- Section 5.1.3 / Table 5: fingerprinting -------------------------------
    canvas_scripts: int = 245
    canvas_sites: int = 315
    canvas_third_party_services: int = 49
    canvas_scripts_third_party_fraction: float = 0.74
    canvas_scripts_unlisted_fraction: float = 0.91  # not in EasyList/EasyPrivacy
    font_fp_scripts: int = 1                        # online-metrix.net
    webrtc_scripts: int = 27
    webrtc_sites: int = 177
    webrtc_services: int = 13

    # --- Section 5.2 / Table 6: HTTPS -------------------------------------------
    tier_https_site_fraction: Tuple[float, ...] = (0.92, 0.63, 0.32, 0.22)
    tier_https_service_fraction: Tuple[float, ...] = (0.90, 0.48, 0.25, 0.16)
    not_fully_https_sites: int = 4_663     # 68% of corpus
    cleartext_sensitive_cookie_fraction: float = 0.08

    # --- Section 5.3: malware ----------------------------------------------------
    malicious_porn_sites: int = 7
    malicious_third_parties: int = 16
    sites_with_malicious_third_parties: int = 41
    miner_services: Tuple[str, ...] = ("coinhive.com", "jsecoin.com", "bitcoin-pay.eu")
    miner_sites: int = 8
    virustotal_threshold: int = 4
    virustotal_scanners: int = 70

    # --- Section 6 / Table 7: geography -----------------------------------------
    #: (country, FQDNs seen, unique to country, ATS seen, ATS unique).
    per_country_fqdns: Tuple[Tuple[str, int, int, int, int], ...] = (
        ("US", 5_483, 357, 635, 25),
        ("UK", 5_364, 231, 620, 20),
        ("ES", 5_494, 561, 592, 59),
        ("RU", 4_750, 373, 542, 27),
        ("IN", 5_340, 275, 607, 21),
        ("SG", 5_310, 233, 608, 16),
    )
    all_country_fqdn_total: int = 7_813
    blocked_sites_russia: int = 21
    blocked_sites_india: int = 168
    #: §6.2: malicious third-party domains seen per country (min RU, max IN).
    malicious_domains_by_country: Dict[str, int] = field(
        default_factory=lambda: {
            "US": 17, "UK": 17, "ES": 18, "RU": 15, "IN": 19, "SG": 16,
        }
    )
    malicious_domains_everywhere: int = 13
    malicious_sites_by_country: Dict[str, int] = field(
        default_factory=lambda: {
            "US": 36, "UK": 35, "ES": 42, "RU": 29, "IN": 40, "SG": 33,
        }
    )
    malicious_sites_everywhere: int = 26

    # --- Section 7.1 / Table 8: cookie banners -----------------------------------
    #: Fractions of the full sanitized corpus showing each banner type.
    banner_fractions_eu: Dict[str, float] = field(
        default_factory=lambda: {
            "no_option": 0.0136,
            "confirmation": 0.0282,
            "binary": 0.0020,
            "other": 0.0003,
        }
    )
    banner_fractions_us: Dict[str, float] = field(
        default_factory=lambda: {
            "no_option": 0.0139,
            "confirmation": 0.0230,
            "binary": 0.0006,
            "other": 0.0001,
        }
    )

    # --- Section 7.2: age verification ---------------------------------------------
    age_gate_top50_fraction: float = 0.20
    age_gate_top50_fraction_russia: float = 0.14
    age_gate_only_russia_fraction: float = 0.08
    age_gate_except_russia_fraction: float = 0.12

    # --- Section 7.3: privacy policies -----------------------------------------------
    policy_gdpr_mention_fraction: float = 0.20
    policy_mean_length: int = 17_159
    policy_min_length: int = 1_088
    policy_max_length: int = 243_649
    policy_pairs_similar_fraction: float = 0.76   # cosine > 0.5
    policy_http_error_false_positives: int = 44
    #: §7.3 Polisis-style manual check of the top-25 tracking sites.
    policy_discloses_practices_fraction: float = 0.72


@dataclass(frozen=True)
class UniverseConfig:
    """Knobs controlling universe generation.

    ``scale`` shrinks every corpus count proportionally (1.0 = paper scale,
    6,843 porn sites).  Tests use small scales; benchmarks use 1.0.

    ``epoch`` selects a snapshot of the *evolving* ecosystem: epoch 0 is
    the classic single-snapshot universe, and every higher epoch is
    derived deterministically from the previous one by
    :func:`repro.webgen.evolve.evolve_universe` (trackers born, dying and
    consolidating; sites migrating to HTTPS; consent banners spreading;
    a ``churn`` fraction of sites changing content).  The epoch is part
    of the datastore run key, so each epoch's crawls pin their own store.
    """

    seed: int = 20191021            # IMC'19 started October 21, 2019
    scale: float = 1.0
    targets: CalibrationTargets = field(default_factory=CalibrationTargets)
    rank_days: int = 365
    epoch: int = 0
    #: Fraction of sites whose page content changes per evolution step.
    churn: float = 0.1

    def scaled(self, count: int, *, minimum: int = 1) -> int:
        """Scale an absolute corpus count, keeping at least ``minimum``."""
        return max(minimum, round(count * self.scale))
