"""Section 7.3 — privacy policies versus observed behavior.

Pipeline: collect policies via the interaction crawler; discard the
HTTP-error false positives (abnormally short texts behind broken links);
measure GDPR mentions and length statistics; compute all-pairs TF-IDF
similarity (the paper's 1.2M-pair computation — here vectorized with
numpy); and cross-check disclosed practices (a Polisis-style summary)
against the tracking observed on each site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...crawler.selenium import PolicyObservation, SeleniumCrawler
from ...crawler.vpn import VantagePointManager
from ...text.tokenize import term_counts
from ...webgen.universe import Universe

__all__ = [
    "CollectedPolicy",
    "DisclosureSummary",
    "PolicyReport",
    "collect_policies",
    "analyze_policies",
    "pairwise_similarity_fractions",
    "pairwise_similarity_fractions_dense",
    "extract_disclosures",
]

_GDPR_RE = re.compile(r"GDPR|General Data Protection Regulation", re.IGNORECASE)

#: Policies shorter than this (in letters) after an HTTP error are the
#: §7.3 false positives the authors removed manually.
MIN_POLICY_LETTERS = 600


@dataclass(frozen=True)
class CollectedPolicy:
    site_domain: str
    text: str
    status: Optional[int]

    @property
    def letters(self) -> int:
        return len(self.text)

    @property
    def valid(self) -> bool:
        ok_status = self.status is not None and 200 <= self.status < 300
        return ok_status and self.letters >= MIN_POLICY_LETTERS


@dataclass(frozen=True)
class DisclosureSummary:
    """Polisis-style summary of what one policy admits to."""

    discloses_cookies: bool
    discloses_data_types: bool
    discloses_third_parties: bool
    mentioned_domains: Tuple[str, ...] = ()

    @property
    def discloses_practices(self) -> bool:
        return (self.discloses_cookies and self.discloses_data_types
                and self.discloses_third_parties)


def extract_disclosures(
    text: str, *, candidate_domains: Iterable[str] = ()
) -> DisclosureSummary:
    """Keyword-section extraction standing in for the Polisis classifier."""
    lowered = text.lower()
    mentioned = tuple(
        domain for domain in candidate_domains if domain.lower() in lowered
    )
    return DisclosureSummary(
        discloses_cookies="cookie" in lowered,
        discloses_data_types=any(
            marker in lowered
            for marker in ("categories of data", "data we collect",
                           "information we collect", "informations of navigation",
                           "connection data")
        ),
        discloses_third_parties=any(
            marker in lowered
            for marker in ("third party", "third-party", "advertising partners",
                           "advertising networks", "external companies")
        ),
        mentioned_domains=mentioned,
    )


def collect_policies(
    universe: Universe,
    corpus: Sequence[str],
    *,
    country: str = "ES",
    vantage_points: Optional[VantagePointManager] = None,
) -> List[CollectedPolicy]:
    """Fetch each site's privacy policy with the interaction crawler."""
    manager = vantage_points or VantagePointManager()
    crawler = SeleniumCrawler(universe, manager.point(country))
    collected = []
    for domain in corpus:
        inspection = crawler.inspect(domain)
        observation: PolicyObservation = inspection.policy
        if not inspection.reachable or not observation.link_found:
            continue
        collected.append(
            CollectedPolicy(domain, observation.text, observation.status)
        )
    return collected


def pairwise_similarity_fractions(
    texts: Sequence[str], *, threshold: float = 0.5
) -> Tuple[float, int]:
    """Fraction of document pairs with TF-IDF cosine above ``threshold``.

    The paper's 1.2M pairwise comparisons stream through the blocked
    sparse gram kernel (:class:`~repro.text.sparse.SimilarityEngine`):
    above-threshold pairs are *counted* per block strip, so neither the
    pair list nor any ``(n × vocab)`` / ``n × n`` array is materialized.
    The historical dense implementation survives as
    :func:`pairwise_similarity_fractions_dense` (parity reference).
    Returns ``(fraction, total_pairs)``.
    """
    n = len(texts)
    if n < 2:
        return (0.0, 0)
    from ...text.sparse import SimilarityEngine

    engine = SimilarityEngine(use_idf=True).fit(texts)
    count, total_pairs = engine.count_pairs_above(threshold)
    return (count / total_pairs, total_pairs)


def pairwise_similarity_fractions_dense(
    texts: Sequence[str], *, threshold: float = 0.5
) -> Tuple[float, int]:
    """Historical dense-matrix reference: one full Gram product plus an
    ``np.triu_indices`` extraction (kept for parity tests and the
    benchmark's before/after measure)."""
    n = len(texts)
    if n < 2:
        return (0.0, 0)
    counts = [term_counts(text) for text in texts]
    vocabulary: Dict[str, int] = {}
    document_frequency: Dict[str, int] = {}
    for count in counts:
        for term in count:
            if term not in vocabulary:
                vocabulary[term] = len(vocabulary)
            document_frequency[term] = document_frequency.get(term, 0) + 1
    idf = np.zeros(len(vocabulary))
    for term, index in vocabulary.items():
        idf[index] = np.log((1 + n) / (1 + document_frequency[term])) + 1.0
    matrix = np.zeros((n, len(vocabulary)))
    for row, count in enumerate(counts):
        for term, frequency in count.items():
            matrix[row, vocabulary[term]] = (1.0 + np.log(frequency)) * \
                idf[vocabulary[term]]
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    matrix /= norms
    gram = matrix @ matrix.T
    upper = gram[np.triu_indices(n, k=1)]
    total_pairs = upper.size
    return (float((upper > threshold).sum()) / total_pairs, total_pairs)


@dataclass
class PolicyReport:
    """Everything §7.3 reports."""

    corpus_size: int = 0
    collected: int = 0
    valid_policies: List[CollectedPolicy] = field(default_factory=list)
    http_error_false_positives: int = 0
    gdpr_mentions: int = 0
    mean_letters: float = 0.0
    min_letters: int = 0
    max_letters: int = 0
    similar_pair_fraction: float = 0.0
    pair_count: int = 0
    #: site -> Polisis-style disclosure summary.
    disclosures: Dict[str, DisclosureSummary] = field(default_factory=dict)
    full_list_sites: List[str] = field(default_factory=list)

    @property
    def presence_fraction(self) -> float:
        return len(self.valid_policies) / self.corpus_size \
            if self.corpus_size else 0.0

    @property
    def gdpr_fraction(self) -> float:
        return self.gdpr_mentions / len(self.valid_policies) \
            if self.valid_policies else 0.0

    def disclosure_fraction(self, sites: Iterable[str]) -> float:
        """Of the given sites *with policies*, how many disclose practices."""
        relevant = [s for s in sites if s in self.disclosures]
        if not relevant:
            return 0.0
        return sum(
            1 for s in relevant if self.disclosures[s].discloses_practices
        ) / len(relevant)


def analyze_policies(
    policies: Sequence[CollectedPolicy],
    *,
    corpus_size: int,
    observed_third_parties: Optional[Dict[str, Set[str]]] = None,
    similarity_threshold: float = 0.5,
    full_list_coverage: float = 0.8,
) -> PolicyReport:
    """Run the §7.3 measurements over collected policies."""
    report = PolicyReport(corpus_size=corpus_size, collected=len(policies))
    for policy in policies:
        if policy.valid:
            report.valid_policies.append(policy)
        else:
            report.http_error_false_positives += 1

    lengths = [policy.letters for policy in report.valid_policies]
    if lengths:
        report.mean_letters = float(np.mean(lengths))
        report.min_letters = int(min(lengths))
        report.max_letters = int(max(lengths))
    report.gdpr_mentions = sum(
        1 for policy in report.valid_policies if _GDPR_RE.search(policy.text)
    )
    report.similar_pair_fraction, report.pair_count = \
        pairwise_similarity_fractions(
            [policy.text for policy in report.valid_policies],
            threshold=similarity_threshold,
        )

    observed = observed_third_parties or {}
    for policy in report.valid_policies:
        candidates = sorted(observed.get(policy.site_domain, ()))
        summary = extract_disclosures(policy.text, candidate_domains=candidates)
        report.disclosures[policy.site_domain] = summary
        if candidates and len(summary.mentioned_domains) >= \
                full_list_coverage * len(candidates):
            report.full_list_sites.append(policy.site_domain)
    return report
