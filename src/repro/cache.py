"""Deterministic memoization for the crawl hot path.

Everything the synthetic universe serves is a pure function of the
request URL, the referrer, and the client context (country, IP, epoch):
no server in :mod:`repro.webgen.universe` keeps per-request state.
Likewise :func:`repro.html.parser.parse_html` is a pure function of its
markup.  Both can therefore be memoized without changing a single
observable byte of a crawl — the caches below only collapse *redundant*
work (the same ad frame served to the same client twice, the same
third-party payload parsed 3,600 times).

Two cache flavors live here:

:class:`BoundedCache`
    A thread-safe mapping with FIFO eviction, usable as a building block
    for any pure function.
:class:`FetchCache`
    A :class:`BoundedCache` specialization that also memoizes
    *deterministic failures* (the universe's ``FetchError`` hierarchy is
    a property of the site spec, not of timing), re-raising the cached
    exception on every hit.

Thread safety matters because :class:`repro.study.Study` may evaluate
independent crawls concurrently (see
:mod:`repro.crawler.executor`); worker *processes* each inherit their
own copy-on-write cache, worker *threads* share one.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = [
    "BoundedCache",
    "CacheStats",
    "FetchCache",
    "content_key",
]


def content_key(text: str) -> bytes:
    """A compact, stable content hash usable as a cache key for ``text``."""
    return hashlib.blake2b(
        text.encode("utf-8", "surrogatepass"), digest_size=16
    ).digest()


class CacheStats:
    """Hit/miss/eviction counters (reads are approximate under threads)."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")


class BoundedCache:
    """A thread-safe bounded mapping with FIFO eviction.

    FIFO (insertion order) beats LRU here: crawl locality is temporal —
    a repeated payload recurs within a handful of page loads — and FIFO
    avoids mutating the dict on every hit, which keeps the lock critical
    section tiny.

    Values handed out by :meth:`get_or_create` are shared between
    callers; they must be treated as immutable.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: dict = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self.stats.hits += 1
                return self._data[key]
            self.stats.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key: Hashable, value: Any) -> None:
        if key not in self._data and self.maxsize is not None \
                and len(self._data) >= self.maxsize:
            # FIFO: evict the oldest insertion (dicts preserve order).
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.stats.evictions += 1
        self._data[key] = value

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss.

        The factory runs outside the lock — pure factories make duplicate
        concurrent computation harmless (last write wins with an equal
        value).  A factory that raises caches nothing.
        """
        with self._lock:
            if key in self._data:
                self.stats.hits += 1
                return self._data[key]
            self.stats.misses += 1
        value = factory()
        with self._lock:
            self._put_locked(key, value)
        return value


class FetchCache(BoundedCache):
    """Memoizes the universe's response *or deterministic failure* per key.

    The render key is ``(url, referrer, country, client_ip, epoch)`` —
    exactly the arguments :meth:`repro.webgen.universe.Universe.fetch`
    depends on (the server side never reads request cookies).
    """

    _OK, _ERR = True, False

    def fetch(self, key: Hashable, thunk: Callable[[], Any]) -> Any:
        """Return the memoized response for ``key``, computing via ``thunk``.

        Exceptions raised by ``thunk`` are cached and re-raised on every
        subsequent lookup: an unresponsive or geo-blocked site fails
        identically on every request from the same client.
        """

        def outcome() -> Tuple[bool, Any]:
            try:
                return (self._OK, thunk())
            except Exception as exc:
                return (self._ERR, exc)

        ok, payload = self.get_or_create(key, outcome)
        if ok:
            return payload
        raise payload
