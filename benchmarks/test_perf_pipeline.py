"""End-to-end pipeline timing: universe build, crawls, analysis stages.

Writes machine-readable ``BENCH_pipeline.json`` at the repo root with one
entry per parallelism setting (schema ``bench-pipeline/v2``: stage ->
seconds, plus scale, parallelism, and per-run crawl **throughput** —
pages/sec and requests/sec over the crawl:all wall time).  Single-crawl
throughput is the headline metric: wall-clock speedup across parallelism
settings is meaningless on a box with fewer cores than workers (runs
where ``parallelism > cpu_count`` are annotated), while pages/sec is
comparable everywhere.  Each configuration runs in a **fresh
subprocess**: forking a worker pool from a process that already ran a
large sequential study inflates copy-on-write page faults and would make
the parallel run look slower than it is, so configs never share a
process.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/test_perf_pipeline.py \
        --scale 0.2 --parallelism-set 1,4

or through pytest (scale via ``REPRO_PERF_SCALE``, default 0.05 so the
test stays quick)::

    REPRO_PERF_SCALE=0.2 PYTHONPATH=src pytest benchmarks/test_perf_pipeline.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_pipeline.json"
SCHEMA = "bench-pipeline/v2"
DEFAULT_COUNTRIES = ("ES", "US", "UK", "RU", "IN", "SG")


# --------------------------------------------------------------------------
# Child mode: time one (scale, parallelism) configuration in-process.
# --------------------------------------------------------------------------

def run_pipeline(scale: float, parallelism: int, countries=DEFAULT_COUNTRIES):
    """Build a universe and run the crawl + analysis pipeline, timing stages.

    Returns ``{"scale", "parallelism", "stages": {name: seconds}, ...}``.
    Stage names: ``universe_build``, ``crawl:all`` (every per-country porn
    crawl plus the regular-web control), per-country ``crawl:<CC>`` detail
    in sequential mode, and ``analysis:*`` for the downstream reports.
    """
    from repro import Study, UniverseConfig
    from repro.reporting.tables import render_table2, render_table7
    from repro.webgen.builder import build_universe

    stages: dict = {}
    clock = time.perf_counter

    start = clock()
    universe = build_universe(UniverseConfig(scale=scale))
    stages["universe_build"] = clock() - start

    study = Study(universe, parallelism=parallelism)
    countries = list(countries)

    start = clock()
    if parallelism > 1:
        # One batch: N porn crawls + the regular control, analyses included.
        study.prefetch_crawls(countries)
    else:
        for country in countries:
            country_start = clock()
            study.porn_log(country)
            stages[f"crawl:{country}"] = clock() - country_start
        study.regular_log()
    stages["crawl:all"] = clock() - start

    logs = [study.porn_log(country) for country in countries]
    logs.append(study.regular_log())
    pages = sum(len(log.visits) for log in logs)
    requests = sum(len(log.requests) for log in logs)
    crawl_seconds = stages["crawl:all"]

    start = clock()
    table2 = study.table2()
    render_table2(table2)
    stages["analysis:table2"] = clock() - start

    start = clock()
    geo = study.geography(countries)
    render_table7(geo)
    stages["analysis:geography"] = clock() - start

    start = clock()
    reports = study.banner_reports(countries)
    assert set(reports) == set(countries)
    stages["analysis:banners"] = clock() - start

    cpu_count = os.cpu_count() or 1
    run = {
        "scale": scale,
        "parallelism": parallelism,
        "countries": countries,
        "corpus_size": len(study.corpus_domains()),
        "stages": {name: round(seconds, 4) for name, seconds in stages.items()},
        "throughput": {
            "pages": pages,
            "requests": requests,
            "pages_per_sec": round(pages / crawl_seconds, 2) if crawl_seconds else None,
            "requests_per_sec": round(requests / crawl_seconds, 2)
            if crawl_seconds else None,
        },
        "total_seconds": round(sum(
            seconds for name, seconds in stages.items()
            if not name.startswith("crawl:") or name == "crawl:all"
        ), 4),
    }
    if parallelism > cpu_count:
        run["parallelism_exceeds_cpus"] = True
        run["note"] = (
            f"{parallelism} workers time-slice {cpu_count} core(s); "
            "wall-clock speedup is not meaningful on this host"
        )
    return run


# --------------------------------------------------------------------------
# Orchestrator: one subprocess per configuration, merged JSON at repo root.
# --------------------------------------------------------------------------

def _run_config_isolated(scale: float, parallelism: int) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--scale", str(scale), "--parallelism", str(parallelism), "--json",
    ]
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"benchmark child (parallelism={parallelism}) failed:\n"
            f"{result.stderr}"
        )
    return json.loads(result.stdout)


def run_benchmark(scale: float, parallelism_set=(1, 4),
                  output_path: pathlib.Path = OUTPUT_PATH) -> dict:
    runs = [_run_config_isolated(scale, p) for p in parallelism_set]
    document = {
        "schema": SCHEMA,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "countries": list(DEFAULT_COUNTRIES),
        "runs": runs,
    }
    baseline = next((r for r in runs if r["parallelism"] == 1), None)
    if baseline is not None:
        # Headline: single-crawl throughput from the sequential run.
        document["single_crawl_throughput"] = baseline["throughput"]
        for run in runs:
            if run["parallelism"] != 1 and run["total_seconds"] > 0:
                document[f"speedup_x{run['parallelism']}"] = round(
                    baseline["total_seconds"] / run["total_seconds"], 2
                )
                if run.get("parallelism_exceeds_cpus"):
                    document[f"speedup_x{run['parallelism']}_note"] = run["note"]
    output_path.write_text(json.dumps(document, indent=2) + "\n")
    return document


# --------------------------------------------------------------------------
# pytest entry point (plain test; no pytest-benchmark dependency).
# --------------------------------------------------------------------------

def test_perf_pipeline():
    scale = float(os.environ.get("REPRO_PERF_SCALE", "0.05"))
    document = run_benchmark(scale)
    assert OUTPUT_PATH.exists()
    assert document["schema"] == SCHEMA
    assert {run["parallelism"] for run in document["runs"]} == {1, 4}
    assert document["single_crawl_throughput"]["pages_per_sec"] > 0
    assert document["single_crawl_throughput"]["requests_per_sec"] > 0
    cpu_count = os.cpu_count() or 1
    for run in document["runs"]:
        assert run["stages"]["universe_build"] > 0
        assert run["stages"]["crawl:all"] > 0
        assert run["total_seconds"] > 0
        assert run["throughput"]["pages"] > 0
        assert run["throughput"]["requests"] > run["throughput"]["pages"]
        if run["parallelism"] > cpu_count:
            assert run["parallelism_exceeds_cpus"] is True
    print(json.dumps(document, indent=2))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_PERF_SCALE",
                                                     "0.2")))
    parser.add_argument("--parallelism", type=int, default=None,
                        help="child mode: time this one configuration")
    parser.add_argument("--parallelism-set", default="1,4",
                        help="orchestrator mode: comma-separated settings")
    parser.add_argument("--json", action="store_true",
                        help="child mode: print the run as JSON to stdout")
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT_PATH,
                        help="orchestrator mode: where to write the merged "
                             "JSON (default BENCH_pipeline.json)")
    args = parser.parse_args()

    if args.parallelism is not None:
        run = run_pipeline(args.scale, args.parallelism)
        if args.json:
            print(json.dumps(run))
        else:
            print(json.dumps(run, indent=2))
        return

    settings = tuple(int(p) for p in args.parallelism_set.split(","))
    document = run_benchmark(args.scale, settings, output_path=args.output)
    print(json.dumps(document, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
