"""Section 7.1 / Table 8 — cookie-consent banner detection.

The detector walks the rendered DOM looking for floating elements whose
text discusses cookies (8 languages), then classifies the banner with the
Degeling et al. taxonomy.  As in the paper, the automated pipeline only
separates *No option* / *Confirmation* / *Binary*; slider and checkbox
banners land in *Others* because classifying them further would require
interacting with the controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ...browser.events import CrawlLog
from ...cache import BoundedCache, content_key
from ...html.dom import Element
from ...html.parser import parse_html, parse_html_cached
from ...html.query import find_all
from ...text.langs import COOKIE_BANNER_KEYWORDS, all_keywords

__all__ = [
    "BANNER_NO_OPTION",
    "BANNER_CONFIRMATION",
    "BANNER_BINARY",
    "BANNER_OTHER",
    "BannerObservation",
    "BannerReport",
    "detect_banner",
    "detect_banner_unfiltered",
    "analyze_banners",
]

BANNER_NO_OPTION = "no_option"
BANNER_CONFIRMATION = "confirmation"
BANNER_BINARY = "binary"
BANNER_OTHER = "other"

_COOKIE_WORDS = all_keywords(COOKIE_BANNER_KEYWORDS)

_ACCEPT_WORDS = frozenset({
    "accept", "ok", "agree", "got it", "aceptar", "accepter", "aceitar",
    "принять", "accetto", "akzeptieren",
})
_REJECT_WORDS = frozenset({
    "decline", "reject", "refuse", "rechazar", "refuser", "recusar",
    "отказ", "rifiuto", "ablehnen", "refuz",
})


@dataclass(frozen=True)
class BannerObservation:
    """One detected banner."""

    site_domain: str
    banner_type: str
    text: str


def _classify_banner(banner: Element) -> str:
    has_slider = any(
        element.get("type") == "range" for element in find_all(banner, "input")
    )
    has_checkbox = any(
        element.get("type") == "checkbox" for element in find_all(banner, "input")
    )
    if has_slider or has_checkbox:
        return BANNER_OTHER
    accept = False
    reject = False
    for button in find_all(banner, "button"):
        text = button.text().lower()
        if any(word in text for word in _ACCEPT_WORDS):
            accept = True
        if any(word in text for word in _REJECT_WORDS):
            reject = True
    if accept and reject:
        return BANNER_BINARY
    if accept:
        return BANNER_CONFIRMATION
    return BANNER_NO_OPTION


#: Detection outcome per distinct page content: landing pages repeat
#: across vantage points (roughly half the per-country pages at paper
#: scale are duplicates), and the outcome depends only on the markup.
_DETECTION_CACHE = BoundedCache(maxsize=16_384)


def detect_banner(html: str, site_domain: str = "") -> Optional[BannerObservation]:
    """Find and classify a cookie banner in a rendered landing page."""
    detection = _DETECTION_CACHE.get_or_create(
        content_key(html), lambda: _detect(html)
    )
    if detection is None:
        return None
    banner_type, text = detection
    return BannerObservation(
        site_domain=site_domain, banner_type=banner_type, text=text
    )


def _detect(html: str) -> Optional[tuple]:
    """``(banner type, banner text)`` for one page content, or ``None``."""
    # Raw-markup prefilter: a banner's element text must contain one of
    # the cookie keywords, and any keyword inside a text node is a
    # literal substring of the markup (text nodes join with spaces and
    # the renderer never entity-escapes), so a page whose lowered HTML
    # holds no keyword cannot yield a banner — skip the parse entirely.
    # Most landing pages carry no banner, which makes this the banner
    # detector's fast path; keyword-bearing pages fall through to the
    # identical DOM walk.
    lowered_html = html.lower()
    if not any(word in lowered_html for word in _COOKIE_WORDS):
        return None
    # Read-only DOM walk, so the shared content-hash parse cache is
    # safe — identical markup served to several vantage points parses
    # once per process.
    observation = _walk_for_banner(parse_html_cached(html), "")
    if observation is None:
        return None
    return (observation.banner_type, observation.text)


def detect_banner_unfiltered(
    html: str, site_domain: str = ""
) -> Optional[BannerObservation]:
    """Historical detector: fresh parse of every page, no prefilter.

    Kept as the parity reference (``tests/test_analysis_scheduler.py``
    asserts page-by-page agreement with :func:`detect_banner`) and as
    the benchmark's before/after measure of the banner fast path.
    """
    return _walk_for_banner(parse_html(html), site_domain)


def _walk_for_banner(document, site_domain: str) -> Optional[BannerObservation]:
    for element in document.iter():
        if not element.is_floating:
            continue
        text = element.text().lower()
        if not text:
            continue
        if not any(word in text for word in _COOKIE_WORDS):
            continue
        # Age gates also float and may mention a cookie policy link; require
        # the *cookie* wording to dominate rather than age warnings.
        if "18" in text and "cookie" not in text:
            continue
        return BannerObservation(
            site_domain=site_domain,
            banner_type=_classify_banner(element),
            text=text[:160],
        )
    return None


@dataclass
class BannerReport:
    """Table 8 aggregate for one vantage point."""

    observations: List[BannerObservation] = field(default_factory=list)
    sites_checked: int = 0

    def count(self, banner_type: str) -> int:
        return sum(1 for o in self.observations if o.banner_type == banner_type)

    def fraction(self, banner_type: str) -> float:
        return self.count(banner_type) / self.sites_checked \
            if self.sites_checked else 0.0

    @property
    def total_fraction(self) -> float:
        return len(self.observations) / self.sites_checked \
            if self.sites_checked else 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            BANNER_NO_OPTION: self.fraction(BANNER_NO_OPTION),
            BANNER_CONFIRMATION: self.fraction(BANNER_CONFIRMATION),
            BANNER_BINARY: self.fraction(BANNER_BINARY),
            BANNER_OTHER: self.fraction(BANNER_OTHER),
            "total": self.total_fraction,
        }


def analyze_banners(log: CrawlLog, *, corpus_size: Optional[int] = None) -> BannerReport:
    """Detect banners on every successfully crawled landing page.

    ``corpus_size`` normalizes the Table 8 fractions over the full
    sanitized corpus (the paper's denominator, N = 6,843) rather than only
    the successfully crawled pages.
    """
    report = BannerReport()
    visits = log.successful_visits()
    report.sites_checked = corpus_size if corpus_size else len(visits)
    for visit in visits:
        if not visit.html:
            continue
        observation = detect_banner(visit.html, visit.site_domain)
        if observation is not None:
            report.observations.append(observation)
    return report
