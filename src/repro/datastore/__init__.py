"""Persistent crawl datastore: OpenWPM-style SQLite persistence.

The paper's crawler writes every request, cookie, and JS call to SQLite
and runs analyses over the stored measurement data; this package gives
the reproduction the same shape.  :class:`CrawlStore` is the store,
:func:`stored_crawl` the load-resume-or-crawl entry point, and
:func:`run_key` the content-hash run identity.
"""

from .aggregates import AggregateCacheStats, AggregateStore, aggregates_path
from .delta import DeltaSource, SiteSlice, delta_crawl
from .incremental import IncrementalRunAnalyzer, cached_sanitize
from .schema import SCHEMA_VERSION, SchemaError
from .serialize import config_from_json, config_to_json, domains_hash, run_key
from .shards import reshard_store
from .store import (
    CrawlStore,
    MissingRunError,
    RunManifest,
    RunRef,
    RunState,
    RunWriter,
    ShardInfo,
    StoredLogView,
    shard_of_domain,
    stored_crawl,
)

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "AggregateCacheStats",
    "AggregateStore",
    "aggregates_path",
    "CrawlStore",
    "IncrementalRunAnalyzer",
    "cached_sanitize",
    "DeltaSource",
    "MissingRunError",
    "RunManifest",
    "RunRef",
    "RunState",
    "RunWriter",
    "ShardInfo",
    "SiteSlice",
    "StoredLogView",
    "delta_crawl",
    "config_from_json",
    "config_to_json",
    "domains_hash",
    "reshard_store",
    "run_key",
    "shard_of_domain",
    "stored_crawl",
]
