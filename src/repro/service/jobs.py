"""Job model, persistent queue, and the worker pool (service layer 1+2).

A *job* is one study request: a universe configuration (seed + scale),
the vantage points it needs, and which analyses to evaluate.  Jobs are
journaled to a small SQLite table (``jobs.sqlite`` next to the shard
files, or ``<store>.jobs`` next to a v1 file) the moment they are
submitted, so a restarted server recovers queued — and *interrupted* —
jobs: a job found ``running`` in the journal is re-queued as
``submitted``, and because all crawl data lives in the shared
:class:`~repro.datastore.CrawlStore` with per-site checkpoints, the
re-run resumes where the previous process died instead of starting
over.

States move ``submitted → running → done|failed|cancelled``; terminal
states never change.  Cancellation is cooperative: ``DELETE /jobs/<id>``
sets a flag the runner checks at per-site checkpoint boundaries (after
the site's rows are durably on disk) and between analyses, so a
cancelled job never tears a transaction and a resubmitted identical job
resumes from the checkpointed sites.

Execution rides entirely on existing machinery: each job builds a lazy
universe, wraps it in a ``Study`` bound to the shared store with
``parallelism=1`` (the deterministic serial order, and the configuration
under which crawl progress hooks fire inline), and evaluates the
study's analysis task list.  Concurrency across jobs is safe because
``stored_crawl`` serializes same-run crawls in-process and WAL
serializes cross-connection writes.
"""

from __future__ import annotations

import json
import os
import queue
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .events import EventLog

__all__ = [
    "ANALYSIS_NAMES",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobSpec",
    "JobState",
    "epoch_store_path",
]


class JobState:
    """The five job states (plain strings; stored verbatim in the journal)."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (SUBMITTED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


#: Analysis names a job may select (the full-study task list of
#: :meth:`repro.study.Study._analysis_tasks` plus the geo task).  Kept
#: in sync by ``tests/test_service.py::test_analysis_names_match_study``.
ANALYSIS_NAMES = (
    "popularity",
    "owners",
    "table2",
    "table3",
    "crawled_popularity",
    "porn_attribution",
    "regular_attribution",
    "cookie_stats",
    "cookie_sync",
    "fingerprinting",
    "https",
    "malware",
    "geography",
    "banners:ES",
    "banners:US",
)


class JobCancelled(Exception):
    """Raised inside a runner when its job's cancel flag is set."""


@dataclass(frozen=True)
class JobSpec:
    """What to measure: universe + vantage points + analysis selection.

    ``countries`` are the vantage points for the geography analysis
    (ignored unless ``geo``); an empty ``analyses`` tuple means the full
    study task list — exactly what ``repro study --store`` evaluates, so
    a default job leaves the store able to serve every table.

    ``epoch`` > 0 measures the universe evolved that many epochs past
    the seed one; the run lands in a sibling store (see
    :func:`epoch_store_path`) so the main store stays pinned to one
    universe.  ``delta`` (requires ``epoch`` > 0) splices
    provably-unchanged sites out of the previous epoch's store instead
    of re-rendering them; if that store is absent the job falls back to
    a full crawl.  ``churn`` is the per-epoch fraction of sites whose
    content changes.
    """

    seed: int = 20191021
    scale: float = 0.1
    countries: Tuple[str, ...] = ()
    geo: bool = False
    analyses: Tuple[str, ...] = ()
    epoch: int = 0
    churn: float = 0.1
    delta: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.analyses) - set(ANALYSIS_NAMES)
        if unknown:
            raise ValueError(f"unknown analyses: {sorted(unknown)}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if self.delta and self.epoch < 1:
            raise ValueError("delta requires epoch >= 1 (there is no "
                             "prior epoch to splice from)")

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed, "scale": self.scale,
            "countries": list(self.countries), "geo": self.geo,
            "analyses": list(self.analyses),
            "epoch": self.epoch, "churn": self.churn, "delta": self.delta,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        raw = json.loads(text)
        return cls(
            seed=int(raw["seed"]), scale=float(raw["scale"]),
            countries=tuple(raw.get("countries") or ()),
            geo=bool(raw.get("geo", False)),
            analyses=tuple(raw.get("analyses") or ()),
            epoch=int(raw.get("epoch", 0)),
            churn=float(raw.get("churn", 0.1)),
            delta=bool(raw.get("delta", False)),
        )


@dataclass
class Job:
    """One submitted job: journal row + live event log + cancel flag."""

    id: str
    spec: JobSpec
    state: str = JobState.SUBMITTED
    error: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    events: EventLog = field(default_factory=EventLog)
    cancel_requested: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "state": self.state,
            "spec": json.loads(self.spec.to_json()),
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
        }


def epoch_store_path(store_path: str, epoch: int) -> str:
    """Sibling store for an evolved epoch: ``<store>-e<N>``.

    One store holds one universe, and every epoch is a distinct
    universe, so epoch jobs write next to the main store instead of
    into it.  Epoch 0 is the main store itself.
    """
    if epoch <= 0:
        return store_path
    return f"{store_path}-e{epoch}"


def journal_path(store_path: str) -> str:
    """Where the job journal lives: next to the shard files."""
    if os.path.isdir(store_path):
        return os.path.join(store_path, "jobs.sqlite")
    return store_path + ".jobs"


_JOURNAL_DDL = """
CREATE TABLE IF NOT EXISTS service_jobs (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    spec_json    TEXT NOT NULL,
    state        TEXT NOT NULL,
    error        TEXT NOT NULL DEFAULT '',
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL
)
"""


class JobJournal:
    """The durable face of the queue: one SQLite table of job rows.

    Holds no business logic — :class:`JobManager` owns transitions; the
    journal just makes them crash-safe.  Single connection, serialized
    by a lock (journal traffic is a few rows per job).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        with self._conn:
            self._conn.execute(_JOURNAL_DDL)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def create(self, spec: JobSpec, submitted_at: float) -> str:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO service_jobs (spec_json, state, submitted_at)"
                " VALUES (?, ?, ?)",
                (spec.to_json(), JobState.SUBMITTED, submitted_at),
            )
            return str(cursor.lastrowid)

    def update(self, job: Job) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE service_jobs SET state=?, error=?, started_at=?,"
                " finished_at=? WHERE id=?",
                (job.state, job.error, job.started_at, job.finished_at,
                 int(job.id)),
            )

    def rows(self) -> List[Job]:
        """Every journaled job, in submission order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, spec_json, state, error, submitted_at,"
                " started_at, finished_at FROM service_jobs ORDER BY id"
            ).fetchall()
        return [
            Job(id=str(row[0]), spec=JobSpec.from_json(row[1]),
                state=row[2], error=row[3], submitted_at=row[4],
                started_at=row[5], finished_at=row[6])
            for row in rows
        ]


def execute_job(job: Job, store_path: str, *,
                store_shards: Optional[int] = None) -> None:
    """Run one job's study against the shared store, publishing events.

    Raises :class:`JobCancelled` when the job's cancel flag is seen at a
    checkpoint boundary (the just-finished site is already durable) or
    between analyses; any other exception marks the job failed.
    """
    from ..study import Study
    from ..webgen.builder import build_universe
    from ..webgen.config import UniverseConfig

    spec = job.spec
    publish = job.events.publish

    def progress(event: str, **fields) -> None:
        publish(event, fields)
        if event in ("site_finished", "run_finished") \
                and job.cancel_requested.is_set():
            raise JobCancelled(job.id)

    config = UniverseConfig(seed=spec.seed, scale=spec.scale,
                            epoch=spec.epoch, churn=spec.churn)
    target_path = epoch_store_path(store_path, spec.epoch)
    baseline = None
    if spec.delta:
        candidate = epoch_store_path(store_path, spec.epoch - 1)
        if os.path.exists(candidate):
            baseline = candidate
        else:
            # Graceful degradation, surfaced on the event stream: the
            # job still runs, it just pays for a full crawl.
            publish("delta_baseline_missing", {"path": candidate})
    # Every epoch job shares the base store's aggregate cache
    # (aggregate_cache=True resolves next to the store, and the -eN
    # epoch suffix is stripped): full-epoch jobs warm it, delta-epoch
    # jobs re-analyze only the churn.  Tables stay byte-identical
    # whichever partials are served from the cache, so the service's
    # served-vs-CLI identity checks keep holding.
    study = Study(build_universe(config, lazy=True), store=target_path,
                  store_shards=store_shards, parallelism=1,
                  baseline_store=baseline, aggregate_cache=True,
                  progress=progress)
    tasks = study._analysis_tasks(geo=spec.geo,
                                  countries=spec.countries or None)
    if spec.analyses:
        wanted = set(spec.analyses)
        tasks = [(name, thunk) for name, thunk in tasks if name in wanted]
    for name, thunk in tasks:
        if job.cancel_requested.is_set():
            raise JobCancelled(job.id)
        publish("analysis_started", {"name": name})
        thunk()
        publish("analysis_finished", {"name": name})


class JobManager:
    """The queue: journaled submissions drained by a thread worker pool.

    Construction recovers the journal (queued and interrupted jobs are
    re-enqueued in submission order; completed ones get their terminal
    event republished so late subscribers still see a closed stream);
    :meth:`start` spins up the workers.
    """

    def __init__(self, store_path: str, *, workers: int = 1,
                 store_shards: Optional[int] = None,
                 runner: Optional[Callable[[Job], None]] = None) -> None:
        self.store_path = str(store_path)
        self.store_shards = store_shards
        self.workers = max(1, int(workers))
        self._runner = runner or (lambda job: execute_job(
            job, self.store_path, store_shards=self.store_shards))
        self.journal = JobJournal(journal_path(self.store_path))
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._recover()

    # -- lifecycle ------------------------------------------------------

    def _recover(self) -> None:
        for job in self.journal.rows():
            if job.state in (JobState.SUBMITTED, JobState.RUNNING):
                recovered = job.state == JobState.RUNNING
                job.state = JobState.SUBMITTED
                job.started_at = None
                self.journal.update(job)
                job.events.publish("job_submitted", {
                    "id": job.id, "recovered": recovered,
                })
                self._jobs[job.id] = job
                self._queue.put(job.id)
            else:
                # The event history died with the old process; republish
                # the terminal event so a subscriber's stream still ends.
                job.events.publish(f"job_{job.state}", {
                    "id": job.id, "recovered": True,
                    **({"error": job.error} if job.error else {}),
                })
                self._jobs[job.id] = job

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._work, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, *, wait: bool = True) -> None:
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []
        self.journal.close()

    # -- client surface -------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        submitted_at = time.time()
        job_id = self.journal.create(spec, submitted_at)
        job = Job(id=job_id, spec=spec, submitted_at=submitted_at)
        with self._lock:
            self._jobs[job_id] = job
        job.events.publish("job_submitted", {"id": job_id})
        self._queue.put(job_id)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._jobs[job_id]

    def list(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: int(j.id))

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs cancel immediately.

        Running jobs cancel cooperatively at the next checkpoint
        boundary.  Cancelling a terminal job raises ``ValueError``.
        """
        job = self.get(job_id)
        with self._lock:
            if job.state in JobState.TERMINAL:
                raise ValueError(f"job {job_id} is already {job.state}")
            job.cancel_requested.set()
            if job.state == JobState.SUBMITTED:
                self._finish(job, JobState.CANCELLED)
                return job
        return job

    # -- worker side ----------------------------------------------------

    def _finish(self, job: Job, state: str, error: str = "") -> None:
        """Terminal transition: journal row, then the terminal event."""
        job.state = state
        job.error = error
        job.finished_at = time.time()
        self.journal.update(job)
        payload = {"id": job.id}
        if error:
            payload["error"] = error
        job.events.publish(f"job_{state}", payload)

    def _work(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            with self._lock:
                if job.state != JobState.SUBMITTED:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_at = time.time()
            self.journal.update(job)
            job.events.publish("job_started", {"id": job.id})
            try:
                self._runner(job)
            except JobCancelled:
                self._finish(job, JobState.CANCELLED)
            except Exception as exc:  # noqa: BLE001 — job isolation
                self._finish(job, JobState.FAILED,
                             error=f"{type(exc).__name__}: {exc}")
            else:
                # A cancel flag that landed after the last checkpoint is
                # moot: the work completed and is durable, so "done" wins.
                self._finish(job, JobState.DONE)
