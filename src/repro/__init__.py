"""repro — reproduction of "Tales from the Porn: A Comprehensive Privacy
Analysis of the Web Porn Ecosystem" (IMC 2019).

The public API centers on three layers:

* :func:`repro.webgen.build_universe` — the synthetic web (substitute for
  the live crawl substrate);
* :class:`repro.crawler.OpenWPMCrawler` / :class:`repro.crawler.SeleniumCrawler`
  — the paper's two crawlers;
* :class:`repro.Study` — the full Section 3-7 pipeline with every table
  and figure as a method.
"""

from .study import Study
from .webgen.builder import build_universe
from .webgen.config import CalibrationTargets, UniverseConfig

__version__ = "1.0.0"

__all__ = [
    "Study",
    "build_universe",
    "CalibrationTargets",
    "UniverseConfig",
    "__version__",
]
