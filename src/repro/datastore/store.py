"""The persistent crawl datastore (our OpenWPM SQLite equivalent).

:class:`CrawlStore` persists whole :class:`~repro.browser.events.CrawlLog`
sessions as they happen: the crawler calls the store's *checkpointer*
after every landing-page visit, which appends that site's event rows and
flips its completion flag in a single transaction.  A killed crawl
therefore loses at most the site it was on, and :func:`stored_crawl`
resumes it at per-site granularity.

Store layouts
-------------

*v1* is one SQLite file in WAL mode — the original layout, still the
default.  *v2* is a directory of ``shard-NNNN.sqlite`` files, each with
the identical v1 schema, where a site-visit's rows live in the shard
``sha256(site_domain) % N`` of the *visited* site (all of a visit's
requests/cookies/JS calls route with the visit, so one checkpoint is
still one transaction in one file, and shard-local WAL writers never
contend).  Every shard carries a copy of the run manifest row for each
run (with ``run_sites`` restricted to its own domains, at their *global*
positions); ``find_run``/``run_manifests`` fan results back in, and
readers merge shards by global position, so both layouts present the
same facade.  ``repro store reshard`` converts v1 files to v2
directories (see :mod:`repro.datastore.shards`).

Why resume is bit-identical
---------------------------

A resumed session rebuilds the browser with the stored partial log (so
global ``seq`` numbering continues where it stopped) but a *fresh*
cookie jar.  That is safe because nothing the log records depends on
jar state carried across sites: the synthetic servers never read request
cookies (``Universe.fetch`` is a pure function of URL, referrer and
client context), ``CookieJar.store_from_response`` reports every parsed
cookie regardless of what the jar already holds, and minted
``document.cookie`` identifiers derive from (script host, cookie name,
client IP) only.  The per-site event stream is thus a pure function of
(universe, client, site), which ``tests/test_datastore.py`` asserts by
diffing an aborted-and-resumed crawl against an uninterrupted one.

The same property is why *trim mode* works: a checkpointer built with
``trim=True`` asks the crawler to drop the in-memory event lists after
each site is on disk (positions continue from persistent counters), so
crawl RSS is bounded by one site's events regardless of corpus size.

It is also the purity contract behind **delta crawls**
(:mod:`repro.datastore.delta`): since a site's event slice is a pure
function of (universe content, client context), a slice stored for a
*previous epoch* can be spliced verbatim into a new run whenever the
site's content hash is unchanged — only the global ``seq`` values and
row positions are rewritten to the new run's counters.  The splice path
(:meth:`RunWriter.splice`) shares its position counters and timer with
the live-checkpoint path, so a run that mixes spliced and freshly
crawled sites lays out rows exactly as an uninterrupted full crawl
would.

Concurrency: worker processes and threads each open their own
:class:`CrawlStore` on the same path; WAL plus a busy timeout serializes
writers, and every checkpoint is one short transaction.  Cursor reads
(:meth:`CrawlStore.iter_visits` et al.) open their own read connections,
so long scans never block a writer.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union,
)

from ..browser.events import CrawlLog
from ..net.geo import VantagePoint
from ..webgen.config import UniverseConfig
from .schema import SCHEMA_VERSION, ensure_schema, shard_stamp, stamp_shard
from .serialize import (
    COOKIE_COLUMNS,
    JSCALL_COLUMNS,
    REQUEST_COLUMNS,
    VISIT_COLUMNS,
    config_from_json,
    config_to_json,
    cookie_from_row,
    cookie_to_row,
    domains_hash,
    jscall_from_row,
    jscall_to_row,
    request_from_row,
    request_to_row,
    run_key,
    vantage_to_json,
    visit_from_row,
    visit_to_row,
)

__all__ = [
    "CrawlStore",
    "MissingRunError",
    "RunManifest",
    "RunRef",
    "RunState",
    "RunWriter",
    "ShardInfo",
    "StoredLogView",
    "shard_of_domain",
    "stored_crawl",
]

SHARD_FILE_FORMAT = "shard-{index:04d}.sqlite"

#: Event-table name -> serialized column list, for the raw-row readers.
_EVENT_COLUMNS = {
    "visits": VISIT_COLUMNS,
    "requests": REQUEST_COLUMNS,
    "cookies": COOKIE_COLUMNS,
    "js_calls": JSCALL_COLUMNS,
}


def shard_of_domain(domain: str, shard_count: int) -> int:
    """The shard that owns ``domain``'s visits: ``sha256(domain) % N``."""
    if shard_count <= 1:
        return 0
    digest = hashlib.sha256(domain.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


class MissingRunError(RuntimeError):
    """A store-only consumer asked for a crawl the store does not hold."""


@dataclass(frozen=True)
class RunRef:
    """Layout-independent run identity (v2 stores have no global rowid)."""

    run_key: str
    domains_hash: str


#: What the read/write APIs accept as "which run": the v1 integer rowid
#: or a :class:`RunRef`.  ``RunState.run_id`` is always the right value
#: to pass back in.
RunId = Union[int, RunRef]


@dataclass(frozen=True)
class RunState:
    """Where one run stands: which sites are already on disk."""

    run_id: RunId
    domains: Tuple[str, ...]
    completed: Tuple[str, ...]
    seq: int
    finished: bool

    @property
    def complete(self) -> bool:
        return len(self.completed) == len(self.domains)

    @property
    def remaining(self) -> Tuple[str, ...]:
        done = set(self.completed)
        return tuple(d for d in self.domains if d not in done)


@dataclass(frozen=True)
class RunManifest:
    """One manifest row for ``repro store info``.

    ``run_id`` is the layout-appropriate :data:`RunId` — the SQLite
    rowid on a v1 file, a :class:`RunRef` on a shard directory — so a
    manifest can always be passed back into ``load_log`` / ``iter_*``.
    """

    run_id: "RunId"
    run_key: str
    kind: str
    country_code: str
    client_ip: str
    total_sites: int
    completed_sites: int
    visits: int
    requests: int
    cookies: int
    js_calls: int
    elapsed: float
    started_at: float
    finished_at: Optional[float]
    stats: Optional[Dict]

    @property
    def complete(self) -> bool:
        return self.completed_sites == self.total_sites

    @property
    def sites_per_second(self) -> float:
        return self.completed_sites / self.elapsed if self.elapsed else 0.0


@dataclass(frozen=True)
class ShardInfo:
    """Size and row counts of one shard file (``store info --shards``)."""

    index: int
    path: str
    size_bytes: int
    runs: int
    visits: int


class CrawlStore:
    """One crawl datastore: a v1 SQLite file or a v2 shard directory."""

    def __init__(self, path: str, *, timeout: float = 30.0,
                 shards: Optional[int] = None) -> None:
        self.path = str(path)
        self._timeout = timeout
        self._lock = threading.RLock()
        #: Lifetime I/O counters for this handle: ``opens`` counts SQLite
        #: connections established (shared facade + per-cursor read
        #: connections), ``scans`` counts event-cursor range scans.  The
        #: trend CLI prints these per epoch under ``--stats`` to prove
        #: each store is opened once and scanned per analysis, not per
        #: rendered section.
        self.io_stats: Dict[str, int] = {"opens": 0, "scans": 0}
        creating = False

        if os.path.isdir(self.path):
            existing = sorted(
                name for name in os.listdir(self.path)
                if name.startswith("shard-") and name.endswith(".sqlite")
            )
            if not existing:
                raise ValueError(f"{self.path} is a directory with no shards")
            count = len(existing)
            if shards is not None and shards != count:
                raise ValueError(
                    f"store {self.path} has {count} shards, not {shards}"
                )
            self.shard_count = count
            self._shard_paths = [os.path.join(self.path, n) for n in existing]
        elif shards is not None and shards > 1 and not os.path.exists(self.path):
            os.makedirs(self.path, exist_ok=True)
            self.shard_count = shards
            self._shard_paths = [
                os.path.join(self.path, SHARD_FILE_FORMAT.format(index=i))
                for i in range(shards)
            ]
            creating = True
        else:
            if shards is not None and shards > 1:
                raise ValueError(
                    f"{self.path} is a v1 single-file store; use"
                    " 'repro store reshard' to convert it"
                )
            self.shard_count = 1
            self._shard_paths = [self.path]

        self._connections: List[Optional[sqlite3.Connection]] = (
            [None] * self.shard_count
        )
        # Opening shard 0 eagerly validates the store (schema version,
        # shard stamp); the remaining shards open on first touch — except
        # at creation, where every shard file is written up front so the
        # directory is self-describing (reopen detects the shard count by
        # listing files) even before any row reaches the higher shards.
        for index in range(self.shard_count if creating else 1):
            self._conn(index)

    @property
    def sharded(self) -> bool:
        return self.shard_count > 1

    # -- lifecycle ------------------------------------------------------

    def _conn(self, index: int) -> sqlite3.Connection:
        with self._lock:
            connection = self._connections[index]
            if connection is not None:
                return connection
            connection = self._open(self._shard_paths[index])
            fresh = not connection.execute(
                "SELECT 1 FROM sqlite_master WHERE type='table' AND name='meta'"
            ).fetchone()
            ensure_schema(connection)
            if self.sharded:
                if fresh:
                    stamp_shard(connection, index, self.shard_count)
                else:
                    stamp = shard_stamp(connection)
                    if stamp != (index, self.shard_count):
                        raise ValueError(
                            f"{self._shard_paths[index]} is stamped "
                            f"{stamp}, expected ({index}, {self.shard_count})"
                        )
            self._connections[index] = connection
            return connection

    def _open(self, path: str) -> sqlite3.Connection:
        self.io_stats["opens"] += 1
        connection = sqlite3.connect(
            path, timeout=self._timeout, check_same_thread=False,
            isolation_level=None,  # autocommit; transactions are explicit
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(f"PRAGMA busy_timeout={int(self._timeout * 1000)}")
        return connection

    def _read_conn(self, index: int) -> sqlite3.Connection:
        """A private connection for one cursor scan.

        Cursors outlive any facade lock scope, so they never share the
        writer connection; WAL lets them read while checkpoints commit.
        """
        self._conn(index)  # ensure the shard file exists with a schema
        self.io_stats["opens"] += 1
        connection = sqlite3.connect(
            self._shard_paths[index], timeout=self._timeout,
            check_same_thread=False,
        )
        connection.execute(f"PRAGMA busy_timeout={int(self._timeout * 1000)}")
        return connection

    def close(self) -> None:
        with self._lock:
            for connection in self._connections:
                if connection is not None:
                    connection.close()
            self._connections = [None] * self.shard_count

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def _txn(self, index: int = 0):
        """One serialized write transaction on one shard."""
        with self._lock:
            connection = self._conn(index)
            connection.execute("BEGIN IMMEDIATE")
            try:
                yield connection
            except BaseException:
                connection.execute("ROLLBACK")
                raise
            connection.execute("COMMIT")

    # -- store-level metadata -------------------------------------------

    def schema_version(self) -> int:
        return SCHEMA_VERSION

    def stored_config(self) -> Optional[UniverseConfig]:
        """The universe configuration every run in this store used."""
        with self._lock:
            row = self._conn(0).execute(
                "SELECT value FROM meta WHERE key='config_json'"
            ).fetchone()
        return config_from_json(row[0]) if row else None

    def _check_config(self, config: UniverseConfig) -> str:
        """Pin the store to one universe; reject mixing configurations."""
        text = config_to_json(config)
        for index in range(self.shard_count):
            with self._txn(index) as conn:
                row = conn.execute(
                    "SELECT value FROM meta WHERE key='config_json'"
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO meta (key, value) VALUES (?, ?)",
                        ("config_json", text),
                    )
                elif row[0] != text:
                    raise ValueError(
                        "store was created for a different UniverseConfig; "
                        "use one store file per universe"
                    )
        return text

    # -- run identity ---------------------------------------------------

    def _resolve(self, run: RunId) -> List[Tuple[int, int]]:
        """``(shard_index, local_run_id)`` for every shard holding the run."""
        if isinstance(run, int):
            if self.sharded:
                raise ValueError(
                    "sharded stores address runs by RunRef, not rowid"
                )
            return [(0, run)]
        found: List[Tuple[int, int]] = []
        with self._lock:
            for index in range(self.shard_count):
                row = self._conn(index).execute(
                    "SELECT id FROM runs WHERE run_key=? AND domains_hash=?",
                    (run.run_key, run.domains_hash),
                ).fetchone()
                if row is not None:
                    found.append((index, row[0]))
        if not found:
            raise MissingRunError(f"no run {run} in {self.path}")
        return found

    def _local_id(self, run: RunId, index: int) -> Optional[int]:
        for shard_index, local_id in self._resolve(run):
            if shard_index == index:
                return local_id
        return None

    # -- run lifecycle --------------------------------------------------

    def open_run(
        self,
        config: UniverseConfig,
        vantage: VantagePoint,
        kind: str,
        domains: Sequence[str],
        *,
        epoch: str = "crawl",
        keep_html: bool = True,
    ) -> RunState:
        """Find or create the manifest row(s) for one logical crawl.

        In a sharded store every shard gets a manifest row (so fan-in
        readers need no side channel), with ``run_sites`` restricted to
        the shard's own domains at their global positions.
        """
        config_json = self._check_config(config)
        key = run_key(config, vantage, kind, epoch=epoch, keep_html=keep_html)
        dh = domains_hash(domains)
        by_shard: Dict[int, List[Tuple[int, str]]] = {
            index: [] for index in range(self.shard_count)
        }
        for position, domain in enumerate(domains):
            by_shard[shard_of_domain(domain, self.shard_count)].append(
                (position, domain)
            )
        started = time.time()
        for index in range(self.shard_count):
            with self._txn(index) as conn:
                row = conn.execute(
                    "SELECT id FROM runs WHERE run_key=? AND domains_hash=?",
                    (key, dh),
                ).fetchone()
                if row is not None:
                    continue
                cursor = conn.execute(
                    "INSERT INTO runs (run_key, kind, country_code, client_ip,"
                    " config_json, vantage_json, domains_hash, total_sites,"
                    " started_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key, kind, vantage.country_code, vantage.client_ip,
                     config_json, vantage_to_json(vantage), dh,
                     len(by_shard[index]), started),
                )
                local_id = cursor.lastrowid
                conn.executemany(
                    "INSERT INTO run_sites (run_id, position, domain)"
                    " VALUES (?, ?, ?)",
                    [(local_id, position, domain)
                     for position, domain in by_shard[index]],
                )
        return self._run_state(key, dh, domains)

    def _run_state(self, key: str, dh: str,
                   domains: Sequence[str]) -> RunState:
        ref = RunRef(key, dh)
        seq = 0
        finished = True
        completed_positions: List[Tuple[int, str]] = []
        with self._lock:
            for index, local_id in self._resolve(ref):
                conn = self._conn(index)
                row = conn.execute(
                    "SELECT seq, finished_at FROM runs WHERE id=?",
                    (local_id,),
                ).fetchone()
                seq = max(seq, row[0])
                finished = finished and row[1] is not None
                completed_positions.extend(conn.execute(
                    "SELECT position, domain FROM run_sites"
                    " WHERE run_id=? AND completed=1", (local_id,),
                ))
        completed_positions.sort()
        run_id: RunId = ref
        if not self.sharded:
            run_id = self._resolve(ref)[0][1]
        return RunState(
            run_id=run_id, domains=tuple(domains),
            completed=tuple(d for _, d in completed_positions),
            seq=seq, finished=finished,
        )

    def find_run(
        self,
        config: UniverseConfig,
        vantage: VantagePoint,
        kind: str,
        domains: Sequence[str],
        *,
        epoch: str = "crawl",
        keep_html: bool = True,
    ) -> Optional[RunState]:
        """The run's state if it exists, without creating anything."""
        key = run_key(config, vantage, kind, epoch=epoch, keep_html=keep_html)
        dh = domains_hash(domains)
        with self._lock:
            row = self._conn(0).execute(
                "SELECT id FROM runs WHERE run_key=? AND domains_hash=?",
                (key, dh),
            ).fetchone()
        if row is None:
            return None
        return self._run_state(key, dh, domains)

    def run_writer(self, run: RunId, *, trim: bool = False) -> "RunWriter":
        """The per-site writer for one run (checkpoints and splices)."""
        return RunWriter(self, run, trim=trim)

    def checkpointer(self, run: RunId, *, trim: bool = False) -> Callable:
        """A per-site checkpoint callback for ``OpenWPMCrawler.crawl``.

        Each invocation appends one visited site's event rows and marks
        the site complete in a single transaction *on that site's shard*
        — the atomic unit a kill can never tear.  Event positions come
        from persistent counters seeded with the rows already stored, so
        they are identical whether the in-memory log is kept (hydrated
        resume) or dropped after every site (``trim=True``; the returned
        callback's value tells the crawler to clear its event lists).
        """
        return self.run_writer(run, trim=trim).checkpoint

    def run_site_counts(
        self, run: RunId
    ) -> List[Tuple[int, str, int, int, int, int]]:
        """``(position, domain, completed, requests, cookies, js_calls)``
        for every site of a run, fanned in across shards and sorted by
        global position.  The delta-crawl layer prefix-sums these counts
        to locate each completed site's event-row slice.
        """
        rows: List[Tuple[int, str, int, int, int, int]] = []
        with self._lock:
            for index, local_id in self._resolve(run):
                rows.extend(self._conn(index).execute(
                    "SELECT position, domain, completed, requests, cookies,"
                    " js_calls FROM run_sites WHERE run_id=?",
                    (local_id,),
                ))
        rows.sort()
        return rows

    def site_event_rows(self, run: RunId, domain: str, table: str,
                        lo: int, hi: int) -> List[tuple]:
        """Raw serialized rows ``[lo, hi)`` of one event table.

        Rows come back exactly as stored (without the run_id/position
        prefix) so a splice can re-insert them into another run verbatim
        — decoding and re-encoding would only risk drift.  All of a
        site's rows live in its own shard, so this is one range scan.
        """
        columns = _EVENT_COLUMNS.get(table)
        if columns is None:
            raise ValueError(f"unknown event table {table!r}")
        index = shard_of_domain(domain, self.shard_count)
        local_id = self._local_id(run, index)
        if local_id is None:
            raise MissingRunError(f"no run {run} in shard {index}")
        with self._lock:
            return self._conn(index).execute(
                f"SELECT {', '.join(columns)} FROM {table}"
                " WHERE run_id=? AND position>=? AND position<?"
                " ORDER BY position",
                (local_id, lo, hi),
            ).fetchall()

    def event_rows_in_range(self, run: RunId, table: str,
                            lo: int, hi: int) -> List[tuple]:
        """``(position, *columns)`` rows in ``[lo, hi)``, across shards.

        The delta layer reads a contiguous splice group in one ranged
        scan per table instead of four queries per site; the leading
        position lets the caller partition rows back to their sites.
        """
        columns = _EVENT_COLUMNS.get(table)
        if columns is None:
            raise ValueError(f"unknown event table {table!r}")
        rows: List[tuple] = []
        with self._lock:
            for index, local_id in self._resolve(run):
                rows.extend(self._conn(index).execute(
                    f"SELECT position, {', '.join(columns)} FROM {table}"
                    " WHERE run_id=? AND position>=? AND position<?",
                    (local_id, lo, hi),
                ))
        rows.sort(key=lambda row: row[0])
        return rows

    def finish_run(self, run: RunId,
                   stats: Optional[Dict] = None) -> None:
        """Stamp a run finished; refuses while sites are still pending."""
        handles = self._resolve(run)
        pending = 0
        with self._lock:
            for index, local_id in handles:
                pending += self._conn(index).execute(
                    "SELECT COUNT(*) FROM run_sites"
                    " WHERE run_id=? AND completed=0", (local_id,),
                ).fetchone()[0]
            if pending:
                raise RuntimeError(
                    f"run {run} still has {pending} pending sites"
                )
            stamp = time.time()
            stats_json = json.dumps(stats, sort_keys=True) if stats else None
            for index, local_id in handles:
                with self._txn(index) as conn:
                    conn.execute(
                        "UPDATE runs SET finished_at=COALESCE(finished_at, ?),"
                        " stats_json=COALESCE(?, stats_json) WHERE id=?",
                        (stamp, stats_json if index == 0 else None, local_id),
                    )

    # -- reading --------------------------------------------------------

    def _run_header(self, run: RunId) -> Tuple[str, str, int]:
        """``(country_code, client_ip, seq)`` with seq fanned in as max."""
        handles = self._resolve(run)
        country = client_ip = ""
        seq = 0
        with self._lock:
            for index, local_id in handles:
                row = self._conn(index).execute(
                    "SELECT country_code, client_ip, seq FROM runs WHERE id=?",
                    (local_id,),
                ).fetchone()
                country, client_ip = row[0], row[1]
                seq = max(seq, row[2])
        return country, client_ip, seq

    def _count_rows(self, handles: List[Tuple[int, int]],
                    table: str) -> int:
        total = 0
        with self._lock:
            for index, local_id in handles:
                total += self._conn(index).execute(
                    f"SELECT COUNT(*) FROM {table} WHERE run_id=?",
                    (local_id,),
                ).fetchone()[0]
        return total

    def count_events(self, run: RunId, table: str) -> int:
        """Total stored rows of one event table for a run."""
        if table not in ("visits", "requests", "cookies", "js_calls"):
            raise ValueError(f"unknown event table {table!r}")
        return self._count_rows(self._resolve(run), table)

    def count_successful_visits(self, run: RunId) -> int:
        """How many stored visits succeeded (Table 2's denominators)."""
        total = 0
        with self._lock:
            for index, local_id in self._resolve(run):
                total += self._conn(index).execute(
                    "SELECT COUNT(*) FROM visits"
                    " WHERE run_id=? AND success=1", (local_id,),
                ).fetchone()[0]
        return total

    def _iter_rows(self, run: RunId, table: str,
                   columns: Sequence[str], batch: int) -> Iterator[tuple]:
        """Rows of one event table in global position order.

        Bounded memory: each shard scan advances via ``fetchmany`` on a
        private read connection, and the fan-in is a ``heapq.merge`` on
        the leading position column — at most one batch per shard is
        resident.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.io_stats["scans"] += 1
        handles = self._resolve(run)
        select = (
            f"SELECT position, {', '.join(columns)} FROM {table}"
            " WHERE run_id=? ORDER BY position"
        )

        def shard_rows(index: int, local_id: int) -> Iterator[tuple]:
            connection = self._read_conn(index)
            try:
                cursor = connection.execute(select, (local_id,))
                while True:
                    rows = cursor.fetchmany(batch)
                    if not rows:
                        return
                    yield from rows
            finally:
                connection.close()

        streams = [shard_rows(index, local_id) for index, local_id in handles]
        if len(streams) == 1:
            yield from (row[1:] for row in streams[0])
        else:
            yield from (
                row[1:] for row in heapq.merge(*streams, key=lambda r: r[0])
            )

    def iter_visits(self, run: RunId, *, batch: int = 1024):
        """Stored :class:`PageVisit` records in visit order."""
        for row in self._iter_rows(run, "visits", VISIT_COLUMNS, batch):
            yield visit_from_row(row)

    def iter_requests(self, run: RunId, *, batch: int = 1024):
        """Stored :class:`RequestRecord` records in observation order."""
        for row in self._iter_rows(run, "requests", REQUEST_COLUMNS, batch):
            yield request_from_row(row)

    def iter_cookies(self, run: RunId, *, batch: int = 1024):
        """Stored :class:`CookieRecord` records in observation order."""
        for row in self._iter_rows(run, "cookies", COOKIE_COLUMNS, batch):
            yield cookie_from_row(row)

    def iter_js_calls(self, run: RunId, *, batch: int = 1024):
        """Stored :class:`JSCall` records in observation order."""
        for row in self._iter_rows(run, "js_calls", JSCALL_COLUMNS, batch):
            yield jscall_from_row(row)

    def log_view(self, run: RunId, *, batch: int = 1024) -> "StoredLogView":
        """A re-iterable, cursor-backed stand-in for a hydrated log."""
        return StoredLogView(self, run, batch=batch)

    def load_log(self, run: RunId) -> CrawlLog:
        """Reconstruct the (possibly partial) crawl log of a run.

        Rows stream through the batched cursors — nothing is ever
        ``fetchall``-ed — but the returned log is fully hydrated; use
        :meth:`log_view` for bounded-memory consumption.
        """
        country, client_ip, seq = self._run_header(run)
        log = CrawlLog(country_code=country, client_ip=client_ip)
        log.visits = list(self.iter_visits(run))
        log.requests = list(self.iter_requests(run))
        log.cookies = list(self.iter_cookies(run))
        log.js_calls = list(self.iter_js_calls(run))
        log._seq = seq
        return log

    def run_manifests(self) -> List[RunManifest]:
        """Every run with completion, per-table counts, and timings.

        Sharded stores fan per-shard manifest rows back into one row per
        logical run (counts summed, ``finished`` only when every shard
        is stamped).  Per-table tallies are ``COUNT(*)`` index-range
        counts — never Python-side cursor iteration — so ``repro store
        info -v`` stays milliseconds on stores holding millions of
        event rows.
        """
        query = """
            SELECT r.id, r.run_key, r.kind, r.country_code, r.client_ip,
                   r.total_sites,
                   (SELECT COUNT(*) FROM run_sites s
                     WHERE s.run_id = r.id AND s.completed = 1),
                   (SELECT COUNT(*) FROM visits v WHERE v.run_id = r.id),
                   (SELECT COUNT(*) FROM requests q WHERE q.run_id = r.id),
                   (SELECT COUNT(*) FROM cookies c WHERE c.run_id = r.id),
                   (SELECT COUNT(*) FROM js_calls j WHERE j.run_id = r.id),
                   r.elapsed, r.started_at, r.finished_at, r.stats_json,
                   r.domains_hash
              FROM runs r ORDER BY r.id
        """
        merged: Dict[Tuple[str, str], List] = {}
        order: List[Tuple[str, str]] = []
        with self._lock:
            for index in range(self.shard_count):
                for row in self._conn(index).execute(query):
                    group = (row[1], row[15])
                    if group not in merged:
                        merged[group] = [
                            row[0], row[1], row[2], row[3], row[4],
                            row[5], row[6], row[7], row[8], row[9],
                            row[10], row[11], row[12], row[13],
                            json.loads(row[14]) if row[14] else None,
                        ]
                        order.append(group)
                        continue
                    entry = merged[group]
                    for slot, value in zip(range(5, 11), row[5:11]):
                        entry[slot] += value
                    entry[11] += row[11]
                    entry[12] = min(entry[12], row[12])
                    entry[13] = (
                        None if entry[13] is None or row[13] is None
                        else max(entry[13], row[13])
                    )
                    if entry[14] is None and row[14]:
                        entry[14] = json.loads(row[14])
        manifests: List[RunManifest] = []
        for group in order:
            entry = merged[group]
            manifests.append(RunManifest(
                run_id=(RunRef(group[0], group[1]) if self.sharded
                        else entry[0]),
                run_key=entry[1], kind=entry[2],
                country_code=entry[3], client_ip=entry[4],
                total_sites=entry[5], completed_sites=entry[6],
                visits=entry[7], requests=entry[8], cookies=entry[9],
                js_calls=entry[10], elapsed=entry[11],
                started_at=entry[12], finished_at=entry[13],
                stats=entry[14],
            ))
        return manifests

    def shard_infos(self) -> List[ShardInfo]:
        """Per-shard file size and row counts (one entry for v1 files)."""
        infos: List[ShardInfo] = []
        with self._lock:
            for index in range(self.shard_count):
                conn = self._conn(index)
                runs = conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
                visits = conn.execute(
                    "SELECT COUNT(*) FROM visits"
                ).fetchone()[0]
                path = self._shard_paths[index]
                infos.append(ShardInfo(
                    index=index, path=path,
                    size_bytes=os.path.getsize(path),
                    runs=runs, visits=visits,
                ))
        return infos

    # -- artifacts ------------------------------------------------------

    def put_artifact(self, key: str, payload: bytes) -> None:
        """Store an opaque crawl product (e.g. the inspection pass)."""
        with self._txn(0) as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts VALUES (?, ?, ?)",
                (key, payload, time.time()),
            )

    def get_artifact(self, key: str) -> Optional[bytes]:
        with self._lock:
            row = self._conn(0).execute(
                "SELECT payload FROM artifacts WHERE artifact_key=?", (key,),
            ).fetchone()
        return bytes(row[0]) if row else None


class RunWriter:
    """Per-site writer for one run: live checkpoints and delta splices.

    Both paths share the same position counters and wall-clock timer, so
    a run that mixes spliced slices with real visits lays out rows (and
    accumulates elapsed time) exactly as an uninterrupted full crawl
    would.  :meth:`checkpoint` is the callback handed to
    ``OpenWPMCrawler`` (see :meth:`CrawlStore.checkpointer`);
    :meth:`splice` is the delta-crawl fast path that re-inserts a prior
    run's raw rows without rendering the site
    (:func:`repro.datastore.delta.delta_crawl`).
    """

    def __init__(self, store: CrawlStore, run: RunId, *,
                 trim: bool = False) -> None:
        self._store = store
        self._trim = trim
        handles = store._resolve(run)
        self._site_shard: Dict[str, Tuple[int, int, int]] = {}
        with store._lock:
            for index, local_id in handles:
                for domain, position in store._conn(index).execute(
                    "SELECT domain, position FROM run_sites WHERE run_id=?",
                    (local_id,),
                ):
                    self._site_shard[domain] = (index, local_id, position)
        self._counters = {
            table: store._count_rows(handles, table)
            for table in ("visits", "requests", "cookies", "js_calls")
        }
        self._last = time.perf_counter()

    def checkpoint(self, domain: str, log: CrawlLog,
                   marks: Tuple[int, int, int, int]) -> bool:
        """Persist one freshly visited site's event rows (see
        :meth:`CrawlStore.checkpointer`)."""
        now = time.perf_counter()
        site_elapsed, self._last = now - self._last, now
        v0, r0, c0, j0 = marks
        index, local_id, position = self._site_shard[domain]
        counters = self._counters
        vp, rp = counters["visits"], counters["requests"]
        cp, jp = counters["cookies"], counters["js_calls"]
        with self._store._txn(index) as conn:
            conn.executemany(
                "INSERT INTO visits VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(local_id, vp + i) + visit_to_row(v)
                 for i, v in enumerate(log.visits[v0:])],
            )
            conn.executemany(
                "INSERT INTO requests VALUES"
                " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(local_id, rp + i) + request_to_row(r)
                 for i, r in enumerate(log.requests[r0:])],
            )
            conn.executemany(
                "INSERT INTO cookies VALUES"
                " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(local_id, cp + i) + cookie_to_row(c)
                 for i, c in enumerate(log.cookies[c0:])],
            )
            conn.executemany(
                "INSERT INTO js_calls VALUES (?, ?, ?, ?, ?, ?)",
                [(local_id, jp + i) + jscall_to_row(c)
                 for i, c in enumerate(log.js_calls[j0:])],
            )
            conn.execute(
                "UPDATE run_sites SET completed=1, elapsed=?, requests=?,"
                " cookies=?, js_calls=? WHERE run_id=? AND position=?",
                (site_elapsed, len(log.requests) - r0,
                 len(log.cookies) - c0, len(log.js_calls) - j0,
                 local_id, position),
            )
            conn.execute(
                "UPDATE runs SET seq=?, elapsed=elapsed+? WHERE id=?",
                (log._seq, site_elapsed, local_id),
            )
        counters["visits"] = vp + len(log.visits) - v0
        counters["requests"] = rp + len(log.requests) - r0
        counters["cookies"] = cp + len(log.cookies) - c0
        counters["js_calls"] = jp + len(log.js_calls) - j0
        return self._trim

    def _insert_spliced(self, conn: sqlite3.Connection, local_id: int,
                        position: int, rows: Dict[str, List[tuple]],
                        site_elapsed: float) -> None:
        """Insert one site's raw rows inside an open transaction."""
        counters = self._counters
        vp, rp = counters["visits"], counters["requests"]
        cp, jp = counters["cookies"], counters["js_calls"]
        conn.executemany(
            "INSERT INTO visits VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(local_id, vp + i) + tuple(row)
             for i, row in enumerate(rows["visits"])],
        )
        conn.executemany(
            "INSERT INTO requests VALUES"
            " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(local_id, rp + i) + tuple(row)
             for i, row in enumerate(rows["requests"])],
        )
        conn.executemany(
            "INSERT INTO cookies VALUES"
            " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(local_id, cp + i) + tuple(row)
             for i, row in enumerate(rows["cookies"])],
        )
        conn.executemany(
            "INSERT INTO js_calls VALUES (?, ?, ?, ?, ?, ?)",
            [(local_id, jp + i) + tuple(row)
             for i, row in enumerate(rows["js_calls"])],
        )
        conn.execute(
            "UPDATE run_sites SET completed=1, elapsed=?, requests=?,"
            " cookies=?, js_calls=? WHERE run_id=? AND position=?",
            (site_elapsed, len(rows["requests"]), len(rows["cookies"]),
             len(rows["js_calls"]), local_id, position),
        )
        counters["visits"] = vp + len(rows["visits"])
        counters["requests"] = rp + len(rows["requests"])
        counters["cookies"] = cp + len(rows["cookies"])
        counters["js_calls"] = jp + len(rows["js_calls"])

    def splice(self, domain: str, rows: Dict[str, List[tuple]], *,
               seq_end: int) -> None:
        """Insert one site's pre-rewritten raw rows without a visit.

        ``rows`` maps each event table to serialized tuples exactly as
        :meth:`CrawlStore.site_event_rows` returned them, with ``seq``
        columns already rebased to this run's counter.  Positions are
        assigned from the shared counters, so the spliced site lands in
        the store byte-identically to a real visit.
        """
        now = time.perf_counter()
        site_elapsed, self._last = now - self._last, now
        index, local_id, position = self._site_shard[domain]
        with self._store._txn(index) as conn:
            self._insert_spliced(conn, local_id, position, rows,
                                 site_elapsed)
            conn.execute(
                "UPDATE runs SET seq=?, elapsed=elapsed+? WHERE id=?",
                (seq_end, site_elapsed, local_id),
            )

    def splice_many(self,
                    items: List[Tuple[str, Dict[str, List[tuple]], int]],
                    ) -> None:
        """Splice a contiguous group of ``(domain, rows, seq_end)`` sites.

        On a single-file store the whole group commits in one
        transaction — per-site commit overhead is the dominant splice
        cost, and coarsening crash granularity is safe because spliced
        sites are nearly free to redo on resume.  On a sharded store
        each site still commits alone: a site's rows and completion flag
        must land atomically in its own shard, and committing shards
        independently could tear the completed *prefix* that global row
        positions rely on.
        """
        if not items:
            return
        if self._store.shard_count > 1:
            for domain, rows, seq_end in items:
                self.splice(domain, rows, seq_end=seq_end)
            return
        now = time.perf_counter()
        batch_elapsed, self._last = now - self._last, now
        site_elapsed = batch_elapsed / len(items)
        counters = self._counters
        inserts: Dict[str, List[tuple]] = {
            "visits": [], "requests": [], "cookies": [], "js_calls": [],
        }
        site_updates: List[tuple] = []
        local_id = None
        for domain, rows, _ in items:
            _, local_id, position = self._site_shard[domain]
            for table, batch in inserts.items():
                base = counters[table]
                batch.extend(
                    (local_id, base + i) + tuple(row)
                    for i, row in enumerate(rows[table])
                )
                counters[table] = base + len(rows[table])
            site_updates.append((
                site_elapsed, len(rows["requests"]), len(rows["cookies"]),
                len(rows["js_calls"]), local_id, position,
            ))
        with self._store._txn(0) as conn:
            conn.executemany(
                "INSERT INTO visits VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                inserts["visits"],
            )
            conn.executemany(
                "INSERT INTO requests VALUES"
                " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                inserts["requests"],
            )
            conn.executemany(
                "INSERT INTO cookies VALUES"
                " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                inserts["cookies"],
            )
            conn.executemany(
                "INSERT INTO js_calls VALUES (?, ?, ?, ?, ?, ?)",
                inserts["js_calls"],
            )
            conn.executemany(
                "UPDATE run_sites SET completed=1, elapsed=?, requests=?,"
                " cookies=?, js_calls=? WHERE run_id=? AND position=?",
                site_updates,
            )
            conn.execute(
                "UPDATE runs SET seq=?, elapsed=elapsed+? WHERE id=?",
                (items[-1][2], batch_elapsed, local_id),
            )


class StoredLogView:
    """A read-only, re-iterable view of one stored run.

    Quacks like :class:`~repro.browser.events.CrawlLog` for analyses
    that only *iterate* — each attribute access returns a fresh
    bounded-memory cursor, so ``for r in view.requests`` twice scans the
    store twice instead of holding rows.  Analyses that need random
    access still hydrate via :meth:`CrawlStore.load_log`.
    """

    def __init__(self, store: CrawlStore, run: RunId, *,
                 batch: int = 1024) -> None:
        self._store = store
        self._run = run
        self._batch = batch
        country, client_ip, _ = store._run_header(run)
        self.country_code = country
        self.client_ip = client_ip

    @property
    def visits(self):
        return self._store.iter_visits(self._run, batch=self._batch)

    @property
    def requests(self):
        return self._store.iter_requests(self._run, batch=self._batch)

    @property
    def cookies(self):
        return self._store.iter_cookies(self._run, batch=self._batch)

    @property
    def js_calls(self):
        return self._store.iter_js_calls(self._run, batch=self._batch)

    def successful_visits(self):
        return (v for v in self.visits if v.success)

    def successful_visit_count(self) -> int:
        return self._store.count_successful_visits(self._run)


# ----------------------------------------------------------------------
# The crawl-through-the-store entry point
# ----------------------------------------------------------------------

#: In-process serialization of same-run crawls.  The service's worker
#: pool may execute two jobs that need the same logical run (same
#: run_key + domains_hash) concurrently; without a lock both would
#: resume the run and race to insert the same row positions.  The loser
#: of this lock finds the run complete and loads it instead.  Keyed by
#: (absolute store path, run_key, domains_hash); cross-*process* writers
#: are already serialized per checkpoint by WAL, and distinct runs never
#: contend.
_RUN_LOCKS: Dict[Tuple[str, str, str], threading.Lock] = {}
_RUN_LOCKS_GUARD = threading.Lock()


def _run_lock(store_path: str, key: str, dh: str) -> threading.Lock:
    with _RUN_LOCKS_GUARD:
        return _RUN_LOCKS.setdefault(
            (os.path.abspath(store_path), key, dh), threading.Lock()
        )


def _cache_snapshot(stats) -> Tuple[int, int, int]:
    return (stats.hits, stats.misses, stats.evictions)


def _cache_delta(stats, before: Tuple[int, int, int]) -> Dict[str, int]:
    hits, misses, evictions = before
    return {
        "hits": stats.hits - hits,
        "misses": stats.misses - misses,
        "evictions": stats.evictions - evictions,
    }


def stored_crawl(
    store: CrawlStore,
    universe,
    vantage: VantagePoint,
    kind: str,
    domains: Sequence[str],
    *,
    epoch: str = "crawl",
    keep_html: bool = True,
    allow_crawl: bool = True,
    hydrate: bool = True,
    baseline: Optional["CrawlStore"] = None,
    progress=None,
) -> Optional[CrawlLog]:
    """Load, resume, or run one crawl through the store.

    Fully stored runs are loaded without touching a browser; partially
    stored runs resume with the remaining sites appended to the stored
    partial log (bit-identical to an uninterrupted session — see the
    module docstring); fresh runs crawl from scratch, checkpointing after
    every site.  ``allow_crawl=False`` turns a miss into
    :class:`MissingRunError` (the ``repro report`` contract: render from
    the store, never crawl).

    ``hydrate=False`` is the streaming mode: the crawl runs with trim
    checkpointing (in-memory event lists dropped once each site is on
    disk) and the function returns ``None`` — consumers read the rows
    back through the store's cursors.  Peak memory is then bounded by
    one site's events instead of the whole run.

    ``baseline`` turns the crawl into a **delta crawl**: when the
    baseline store holds the matching run for a *previous universe
    epoch*, sites whose content hash is unchanged are spliced from the
    baseline's stored rows instead of being rendered
    (:mod:`repro.datastore.delta`).  The result is byte-identical to a
    full crawl by construction; when preconditions fail the delta layer
    degrades to a normal crawl.

    ``progress(event, **fields)`` observes the crawl: ``run_started``
    fires once up front (with ``completed`` telling how many sites the
    store already held — 0 for a fresh run, ``total`` for a pure load),
    the crawler's per-site ``site_started``/``site_finished`` hooks fire
    for every *remaining* site, and ``run_finished`` fires once the run
    manifest is stamped.  Concurrent callers targeting the same logical
    run serialize on an in-process lock; the second caller finds the
    rows stored and degrades to a load.
    """
    from ..crawler.openwpm import OpenWPMCrawler
    from ..html.parser import parse_cache_stats

    domains = list(domains)
    key = run_key(universe.config, vantage, kind, epoch=epoch,
                  keep_html=keep_html)
    with _run_lock(store.path, key, domains_hash(domains)):
        state = store.open_run(universe.config, vantage, kind, domains,
                               epoch=epoch, keep_html=keep_html)
        remaining = state.remaining
        if progress is not None:
            progress("run_started", kind=kind,
                     country=vantage.country_code, total=len(domains),
                     completed=len(state.completed))
        if not remaining:
            if not state.finished:
                store.finish_run(state.run_id)
            if progress is not None:
                progress("run_finished", kind=kind,
                         country=vantage.country_code, total=len(domains))
            return store.load_log(state.run_id) if hydrate else None
        if not allow_crawl:
            raise MissingRunError(
                f"store {store.path} holds "
                f"{len(state.completed)}/{len(domains)} "
                f"sites for {kind} from {vantage.country_code}; re-run with "
                "--store to complete it"
            )
        if hydrate:
            partial = store.load_log(state.run_id)
        else:
            # Trim mode resumes with an empty log that only carries the seq
            # counter forward; stored rows are never re-materialized.
            partial = CrawlLog(country_code=vantage.country_code,
                               client_ip=vantage.client_ip)
            partial._seq = state.seq
        fetch_before = _cache_snapshot(universe.fetch_cache.stats)
        parse_before = _cache_snapshot(parse_cache_stats())
        delta_stats = None
        log = None
        if baseline is not None:
            from .delta import delta_crawl
            outcome = delta_crawl(
                store, universe, vantage, kind, domains, state, baseline,
                partial, epoch=epoch, keep_html=keep_html, hydrate=hydrate,
                progress=progress,
            )
            if outcome is not None:
                log, delta_stats = outcome
        if delta_stats is None:
            crawler = OpenWPMCrawler(universe, vantage, epoch=epoch,
                                     keep_html=keep_html)
            log = crawler.crawl(
                remaining, log=partial,
                checkpoint=store.checkpointer(state.run_id,
                                              trim=not hydrate),
                progress=progress,
            )
        stats = {
            "fetch_cache": _cache_delta(universe.fetch_cache.stats,
                                        fetch_before),
            "parse_cache": _cache_delta(parse_cache_stats(), parse_before),
            "resumed_from_site": len(state.completed),
        }
        if delta_stats is not None:
            stats["delta"] = delta_stats
        store.finish_run(state.run_id, stats=stats)
        if progress is not None:
            progress("run_finished", kind=kind,
                     country=vantage.country_code, total=len(domains))
        return log if hydrate else None
