"""Tests for the measurement service (``repro serve``).

Covers the four service layers: the journaled job queue (submit,
recover-on-restart), the worker pool with cooperative cancellation at
checkpoint boundaries, the multi-subscriber event log / SSE framing,
and the HTTP result endpoints' byte-identity with ``repro report``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    ANALYSIS_NAMES,
    EventLog,
    Job,
    JobCancelled,
    JobManager,
    JobSpec,
    JobState,
    ReproServer,
    TERMINAL_KINDS,
)
from repro.service.jobs import JobJournal, execute_job, journal_path
from repro.service.sse import HEARTBEAT_FRAME, format_event, parse_stream

SEED = 3
SCALE = 0.02


# -- events + SSE framing -----------------------------------------------


class TestEventLog:
    def test_publish_assigns_dense_sequence(self):
        log = EventLog()
        first = log.publish("job_submitted", {"id": "1"})
        second = log.publish("site_started", {"domain": "x.com"})
        assert (first.seq, second.seq) == (0, 1)
        assert len(log) == 2
        assert not log.finished

    def test_subscribe_replays_then_ends_at_terminal(self):
        log = EventLog()
        log.publish("job_submitted", {})
        log.publish("job_done", {})
        kinds = [event.kind for event in log.subscribe()]
        assert kinds == ["job_submitted", "job_done"]
        assert log.finished

    def test_subscribe_from_seq_skips_history(self):
        log = EventLog()
        for kind in ("job_submitted", "job_started", "job_done"):
            log.publish(kind, {})
        kinds = [event.kind for event in log.subscribe(from_seq=2)]
        assert kinds == ["job_done"]

    def test_two_subscribers_see_identical_sequences(self):
        log = EventLog()
        seen = [[], []]

        def consume(index):
            for event in log.subscribe():
                seen[index].append((event.seq, event.kind))

        threads = [threading.Thread(target=consume, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for kind in ("job_submitted", "job_started", "site_started",
                     "site_finished", "job_done"):
            log.publish(kind, {})
        for thread in threads:
            thread.join(timeout=10)
        assert seen[0] == seen[1]
        assert [kind for _, kind in seen[0]][-1] == "job_done"

    def test_heartbeat_yields_none_when_idle(self):
        log = EventLog()
        stream = log.subscribe(heartbeat=0.01)
        assert next(stream) is None
        log.publish("job_done", {})
        assert next(stream).kind == "job_done"


class TestSSE:
    def test_format_round_trips_through_parse(self):
        events = [
            (0, "job_submitted", {"id": "1"}),
            (1, "site_started", {"domain": "a.com", "index": 0}),
            (2, "job_done", {"id": "1"}),
        ]
        frames = b"".join(
            format_event(type("E", (), {"seq": s, "kind": k, "payload": p}))
            for s, k, p in events
        )
        assert list(parse_stream([frames])) == events

    def test_payload_is_sorted_compact_json(self):
        frame = format_event(
            type("E", (), {"seq": 7, "kind": "x", "payload": {"b": 1, "a": 2}})
        )
        assert b'data: {"a":2,"b":1}\n' in frame
        assert frame.startswith(b"id: 7\nevent: x\n")

    def test_parse_ignores_heartbeat_comments(self):
        frame = format_event(
            type("E", (), {"seq": 0, "kind": "job_done", "payload": {}})
        )
        parsed = list(parse_stream([HEARTBEAT_FRAME, frame]))
        assert parsed == [(0, "job_done", {})]


# -- job model + journal ------------------------------------------------


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(seed=7, scale=0.04, countries=("ES", "US"),
                       geo=True, analyses=("table2",))
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_rejects_unknown_analyses(self):
        with pytest.raises(ValueError, match="unknown analyses"):
            JobSpec(analyses=("table9",))

    def test_analysis_names_match_study(self):
        """ANALYSIS_NAMES mirrors Study._analysis_tasks exactly."""
        from repro import Study, UniverseConfig
        from repro.webgen import build_universe

        study = Study(build_universe(UniverseConfig(seed=SEED, scale=SCALE),
                                     lazy=True))
        tasks = study._analysis_tasks(geo=True, countries=("ES",))
        assert tuple(name for name, _ in tasks) == ANALYSIS_NAMES


class TestJournal:
    def test_journal_path_for_directory_store(self, tmp_path):
        assert journal_path(str(tmp_path)).endswith("jobs.sqlite")
        assert journal_path(str(tmp_path / "crawl.db")).endswith(".jobs")

    def test_rows_survive_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        job_id = journal.create(JobSpec(seed=1, scale=0.02), 123.0)
        journal.close()

        reopened = JobJournal(path)
        rows = reopened.rows()
        reopened.close()
        assert [job.id for job in rows] == [job_id]
        assert rows[0].spec.seed == 1
        assert rows[0].state == JobState.SUBMITTED


# -- the manager: lifecycle, cancellation, recovery ---------------------


def _drain(job, timeout=120):
    """Block until the job's stream closes; return the event list."""
    events = []
    for event in job.events.subscribe(heartbeat=timeout):
        assert event is not None, "job made no progress before timeout"
        events.append(event)
    return events


class TestJobManager:
    def _manager(self, tmp_path, runner):
        return JobManager(str(tmp_path / "store"), workers=1, runner=runner)

    def test_lifecycle_submit_events_done(self, tmp_path):
        manager = self._manager(
            tmp_path, lambda job: job.events.publish("analysis_finished",
                                                     {"name": "x"}))
        manager.start()
        try:
            job = manager.submit(JobSpec(seed=1, scale=0.02))
            kinds = [event.kind for event in _drain(job)]
        finally:
            manager.stop()
        assert kinds == ["job_submitted", "job_started",
                         "analysis_finished", "job_done"]
        assert job.state == JobState.DONE
        assert manager.get(job.id) is job

    def test_failure_records_error(self, tmp_path):
        def boom(job):
            raise RuntimeError("crawler exploded")

        manager = self._manager(tmp_path, boom)
        manager.start()
        try:
            job = manager.submit(JobSpec())
            events = _drain(job)
        finally:
            manager.stop()
        assert job.state == JobState.FAILED
        assert job.error == "RuntimeError: crawler exploded"
        assert events[-1].kind == "job_failed"
        assert events[-1].payload["error"] == job.error

    def test_cancel_queued_job_never_runs(self, tmp_path):
        ran = []
        manager = self._manager(tmp_path, lambda job: ran.append(job.id))
        try:
            job = manager.submit(JobSpec())
            manager.cancel(job.id)
            assert job.state == JobState.CANCELLED
            manager.start()
            events = _drain(job)
        finally:
            manager.stop()
        assert ran == []
        assert events[-1].kind == "job_cancelled"

    def test_cancel_terminal_job_raises(self, tmp_path):
        manager = self._manager(tmp_path, lambda job: None)
        manager.start()
        try:
            job = manager.submit(JobSpec())
            _drain(job)
            with pytest.raises(ValueError, match="already done"):
                manager.cancel(job.id)
        finally:
            manager.stop()

    def test_restart_recovers_queued_job(self, tmp_path):
        """A journaled submitted job survives a dead server."""
        first = self._manager(tmp_path, lambda job: None)
        spec = JobSpec(seed=1, scale=0.02, analyses=("popularity",))
        job_id = first.submit(spec).id  # never started
        first.stop()

        ran = []
        second = self._manager(tmp_path, lambda job: ran.append(job.spec))
        recovered = second.get(job_id)
        assert recovered.state == JobState.SUBMITTED
        second.start()
        try:
            events = _drain(recovered)
        finally:
            second.stop()
        assert ran == [spec]
        assert recovered.state == JobState.DONE
        assert events[0].payload == {"id": job_id, "recovered": False}

    def test_restart_requeues_interrupted_running_job(self, tmp_path):
        first = self._manager(tmp_path, lambda job: None)
        job = first.submit(JobSpec())
        job.state = JobState.RUNNING  # simulate dying mid-run
        first.journal.update(job)
        first.stop()

        second = self._manager(tmp_path, lambda job: None)
        recovered = second.get(job.id)
        assert recovered.state == JobState.SUBMITTED
        assert recovered.events.snapshot()[0].payload["recovered"] is True
        second.start()
        try:
            _drain(recovered)
        finally:
            second.stop()
        assert recovered.state == JobState.DONE

    def test_restart_republishes_terminal_event(self, tmp_path):
        first = self._manager(tmp_path, lambda job: None)
        first.start()
        job = first.submit(JobSpec())
        _drain(job)
        first.stop()

        second = self._manager(tmp_path, lambda job: None)
        recovered = second.get(job.id)
        second.stop()
        assert recovered.state == JobState.DONE
        kinds = [event.kind for event in recovered.events.snapshot()]
        assert kinds == ["job_done"]
        assert recovered.events.finished


class TestCancellationResumesFromCheckpoints:
    def test_cancel_mid_crawl_then_resubmit_resumes(self, tmp_path):
        """Cancellation fires at a checkpoint boundary; the checkpointed
        sites survive in the store and a resubmitted job resumes there."""
        store = str(tmp_path / "store")
        spec = JobSpec(seed=SEED, scale=SCALE, analyses=("table2",))

        cancelled = Job(id="1", spec=spec)
        finished_sites = []
        publish = cancelled.events.publish

        def arming_publish(kind, payload=None):
            event = publish(kind, payload)
            if kind == "site_finished":
                finished_sites.append(payload["domain"])
                if len(finished_sites) == 5:
                    cancelled.cancel_requested.set()
            return event

        cancelled.events.publish = arming_publish
        with pytest.raises(JobCancelled):
            execute_job(cancelled, store, store_shards=2)
        assert len(finished_sites) == 5  # stopped at the boundary

        resumed = Job(id="2", spec=spec)
        execute_job(resumed, store, store_shards=2)
        run_started = [event for event in resumed.events.snapshot()
                       if event.kind == "run_started"]
        # The first crawl run picks up exactly the five durable sites.
        assert run_started[0].payload["completed"] == 5
        restarted = [event.payload["domain"]
                     for event in resumed.events.snapshot()
                     if event.kind == "site_started"]
        assert not set(finished_sites) & set(restarted)


# -- the HTTP server end-to-end -----------------------------------------


def _get(url):
    with urllib.request.urlopen(url) as resp:
        return resp.read()


def _post_json(url, document):
    request = urllib.request.Request(
        url, method="POST", data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as resp:
        return json.loads(resp.read())


@pytest.fixture(scope="class")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("serve") / "store"
    instance = ReproServer(str(store), port=0, workers=1, store_shards=2,
                           heartbeat=60.0)
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture(scope="class")
def done_job(server):
    """One full default job run to completion (shared by the class)."""
    job = _post_json(server.url + "/jobs",
                     {"seed": SEED, "scale": SCALE})
    streams = [[], []]

    def stream(index):
        with urllib.request.urlopen(
                server.url + f"/jobs/{job['id']}/events") as resp:
            for chunk in resp:
                streams[index].append(chunk)

    threads = [threading.Thread(target=stream, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    return job, streams


class TestServerEndToEnd:
    def test_concurrent_subscribers_see_identical_streams(self, done_job):
        _, streams = done_job
        first, second = (b"".join(chunks) for chunks in streams)
        assert first == second
        events = list(parse_stream([first]))
        assert events[0][1] == "job_submitted"
        assert events[-1][1] == "job_done"
        kinds = {kind for _, kind, _ in events}
        assert {"job_started", "run_started", "site_started",
                "site_finished", "run_finished", "analysis_started",
                "analysis_finished"} <= kinds
        seqs = [seq for seq, _, _ in events]
        assert seqs == list(range(len(seqs)))

    def test_job_endpoint_reports_done(self, server, done_job):
        job, _ = done_job
        fetched = json.loads(_get(server.url + f"/jobs/{job['id']}"))
        assert fetched["state"] == "done"
        listed = json.loads(_get(server.url + "/jobs"))
        assert [entry["id"] for entry in listed["jobs"]] == [job["id"]]

    def test_events_resume_from_seq(self, server, done_job):
        job, streams = done_job
        total = len(list(parse_stream([b"".join(streams[0])])))
        tail = _get(server.url + f"/jobs/{job['id']}/events?from={total - 2}")
        events = list(parse_stream([tail]))
        assert [kind for _, kind, _ in events][-1] == "job_done"
        assert len(events) == 2

    def test_served_sections_byte_identical_to_cli_report(
            self, server, done_job, capsys):
        from repro.__main__ import main
        from repro.reporting import FIGURE_SECTIONS, section_names

        job, _ = done_job
        assert main(["report", "--store", server.store.path]) == 0
        expected = capsys.readouterr().out

        parts = []
        for name in section_names(geo=False):
            family = "figures" if name in FIGURE_SECTIONS else "tables"
            url = server.url + f"/jobs/{job['id']}/{family}/{name}"
            text = _get(url).decode("utf-8")
            assert text.endswith("\n")
            if name in FIGURE_SECTIONS:
                # Figures are served headerless; reattach the header the
                # report prints (exercised separately below).
                continue
            parts.append(text[:-1])
        for part in parts:
            assert part in expected
        report = _get(server.url + f"/jobs/{job['id']}/report").decode()
        assert report == expected

    def test_served_figures_match_report_chunks(self, server, done_job):
        job, _ = done_job
        report = _get(server.url + f"/jobs/{job['id']}/report").decode()
        for name in ("figure3", "figure4"):
            ascii_art = _get(
                server.url + f"/jobs/{job['id']}/figures/{name}").decode()
            assert ascii_art.rstrip("\n") in report

    def test_store_info_lists_runs(self, server, done_job):
        info = json.loads(_get(server.url + "/store/info"))
        assert info["config"] == {"seed": SEED, "scale": SCALE}
        assert info["shards"] == 2
        kinds = {(run["kind"], run["country"]) for run in info["runs"]}
        assert ("openwpm:porn", "ES") in kinds
        assert all(run["complete"] for run in info["runs"])

    def test_submit_conflicting_config_is_409(self, server, done_job):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(server.url + "/jobs", {"seed": SEED + 1,
                                              "scale": SCALE})
        assert excinfo.value.code == 409

    def test_submit_unknown_field_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(server.url + "/jobs", {"sites": 5})
        assert excinfo.value.code == 400

    def test_unknown_table_is_404(self, server, done_job):
        job, _ = done_job
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + f"/jobs/{job['id']}/tables/table9")
        assert excinfo.value.code == 404

    def test_results_before_done_are_409(self, server, done_job):
        # Inject a job that will never run so the state is deterministic.
        pending = Job(id="999", spec=JobSpec(seed=SEED, scale=SCALE))
        server.manager._jobs["999"] = pending
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/jobs/999/tables/table2")
            assert excinfo.value.code == 409
        finally:
            del server.manager._jobs["999"]

    def test_terminal_kinds_cover_job_states(self):
        assert TERMINAL_KINDS == {f"job_{state}"
                                  for state in JobState.TERMINAL}
