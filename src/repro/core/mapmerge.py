"""Map/merge decomposition of the per-site analyses.

Every analysis here exists twice in the codebase: the monolithic
reference (``label_parties``, ``ATSClassifier.classify_log``,
``analyze_cookies``, ``analyze_https``, ``analyze_banners``,
``detect_cookie_sync``, ``analyze_fingerprinting``,
``analyze_malware``) scans one
whole crawl log, and the pair in this module splits the same computation
into ``map(one site's rows) -> partial`` plus ``merge(partials in log
site order) -> result``.  The monolithic forms stay the source of truth;
``tests/test_incremental.py`` asserts ``merge(map(...))`` equal to them
object-for-object and byte-for-byte through the rendered report.

Byte-identity is stronger than value-equality: several consumers break
ranking ties by *insertion order* (``build_figure3`` via the order
organizations first appear while walking ``third_party_direct``,
Table 4 via ``per_domain_sites`` first-touch order), and CPython
set/dict iteration order depends on insertion history.  So partials do
not store bare sets — they store the **operation sequence** the
monolithic code would have executed for that site (first-touch ordered
tuples, record ordinals for interleavings), and every merge replays
those operations in log order.  The merged containers then have the
same insertion history as the monolithic ones, hence the same iteration
order, hence identical rendered bytes.

Partials are plain tuples/dicts of primitives: picklable, versioned via
:data:`ANALYSIS_VERSIONS` (bump a version whenever a map function's
output or semantics change — the aggregate cache keys on it), and small
(no HTML, no raw rows).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..js.api import JSCall
from ..net.url import registrable_domain
from .ats import ATSClassifier, ATSResult
from .compliance.banners import BannerObservation, BannerReport, detect_banner
from .cookie_analysis import (
    HUGE_LENGTH,
    MIN_ID_LENGTH,
    CookieStats,
    TopCookieDomain,
    _dedupe,
    decode_cookie_value,
)
from .cookie_sync import (
    MIN_VALUE_LENGTH,
    SyncEvent,
    SyncReport,
    _url_tokens,
)
from .fingerprinting import FingerprintingReport, analyze_fingerprinting
from .https_analysis import HTTPSReport, HTTPSTierRow
from .malware import DETECTION_THRESHOLD, MalwareReport, analyze_malware
from .partylabel import PartyLabels, _is_direct, _is_first_party
from .popularity import PopularityReport

__all__ = [
    "ANALYSIS_VERSIONS",
    "map_labels",
    "merge_labels",
    "map_ats",
    "merge_ats",
    "map_cookies",
    "merge_cookies",
    "map_https",
    "merge_https",
    "map_banners",
    "merge_banners",
    "map_sync",
    "merge_sync",
    "map_jsapi",
    "merge_fingerprinting",
    "map_visits",
    "merge_malware",
]

#: Version of each map function's partial format *and* semantics.  Part
#: of the aggregate-cache key: bumping one orphans every cached partial
#: of that analysis, forcing a clean recompute.
ANALYSIS_VERSIONS: Dict[str, int] = {
    "labels": 1,
    "ats": 1,
    "cookies": 1,
    "https": 1,
    "banners": 1,
    "sync": 1,
    "jsapi": 1,
    "visits": 1,
    # §3 per-candidate sanitize verdicts (cached by
    # repro.datastore.incremental.cached_sanitize).
    "sanitize": 1,
}


# ----------------------------------------------------------------------
# Party labeling (reference: partylabel.label_parties)
# ----------------------------------------------------------------------

def map_labels(requests, *, cert_lookup=None,
               levenshtein_threshold: float = 0.7) -> dict:
    """Per-site half of :func:`~repro.core.partylabel.label_parties`.

    Labeling is fully per-(page, fqdn): the ``decided`` memo never
    crosses sites, so the partial is simply the ordered sequence of
    first set-insertions the monolithic loop would perform for this
    site's records — ``(record ordinal, target set, page, fqdn)``.
    """
    decided: Dict[Tuple[str, str], bool] = {}
    events: List[Tuple[int, str, str, str]] = []
    seen: Set[Tuple[str, str, str]] = set()
    for idx, record in enumerate(requests):
        if record.failed or record.resource_type == "document":
            continue
        page = record.page_domain
        fqdn = record.fqdn
        key = (page, fqdn)
        first = decided.get(key)
        if first is None:
            first = _is_first_party(page, fqdn, cert_lookup,
                                    levenshtein_threshold)
            decided[key] = first
        if first:
            if registrable_domain(fqdn) != registrable_domain(page):
                event = ("first", page, fqdn)
                if event not in seen:
                    seen.add(event)
                    events.append((idx,) + event)
            continue
        if _is_direct(record):
            event = ("direct", page, fqdn)
        else:
            event = ("dynamic", page, fqdn)
        if event not in seen:
            seen.add(event)
            events.append((idx,) + event)
    return {"events": tuple(events)}


def merge_labels(partials: Sequence[dict]) -> PartyLabels:
    """Replay every site's labeling insertions in log order."""
    labels = PartyLabels()
    target = {
        "first": labels.first_party,
        "direct": labels.third_party_direct,
        "dynamic": labels.third_party_dynamic,
    }
    for partial in partials:
        for _idx, kind, page, fqdn in partial["events"]:
            target[kind].setdefault(page, set()).add(fqdn)
    # Same post-pass as the monolithic labeler; identical insertion
    # histories make the set difference land identically too.
    for page, direct in labels.third_party_direct.items():
        dynamic = labels.third_party_dynamic.get(page)
        if dynamic:
            dynamic -= direct
    return labels


# ----------------------------------------------------------------------
# ATS classification (reference: ATSClassifier.classify_log)
# ----------------------------------------------------------------------

def map_ats(requests, classifier: ATSClassifier) -> dict:
    """Per-site half of :meth:`~repro.core.ats.ATSClassifier.classify_log`.

    The monolithic loop carries one piece of cross-site state: once an
    FQDN has a strict (full-URL) match anywhere, every later record of
    it — on any site — short-circuits into ``per_page`` without rule
    evaluation.  Everything else is per-record and pure, so the partial
    keeps, per FQDN in first-encounter order, exactly what the replay
    needs under *any* entry state: the first record ordinal, the first
    strict-match ordinal (rules evaluated per record, memoized in the
    classifier), whether any non-strict record preceded the strict one
    (those are the records that can take the relaxed ``elif``), the
    registrable domain, and the pure per-FQDN relaxed verdict.

    The ``third_party_fqdns`` filter is *not* applied here — it derives
    from the merged labels of the whole log, so it belongs to the merge.
    """
    order: List[str] = []
    info: Dict[str, list] = {}
    for idx, record in enumerate(requests):
        if record.failed or record.resource_type == "document":
            continue
        fqdn = record.fqdn
        entry = info.get(fqdn)
        if entry is None:
            entry = [record.page_domain, idx, None, False]
            info[fqdn] = entry
            order.append(fqdn)
        if entry[2] is not None:
            continue  # first-branch no-op once strict-matched
        if classifier.matches_url(record.url,
                                  first_party_host=record.page_domain,
                                  resource_type=record.resource_type):
            entry[2] = idx
        else:
            entry[3] = True
    entries = tuple(
        (fqdn, info[fqdn][0], info[fqdn][1], info[fqdn][2], info[fqdn][3],
         registrable_domain(fqdn), classifier.matches_domain(fqdn))
        for fqdn in order
    )
    return {"entries": entries}


def merge_ats(partials: Sequence[dict], *,
              third_party_fqdns: Optional[Set[str]] = None) -> ATSResult:
    """Replay the classification with the global FQDN set threaded through."""
    result = ATSResult()
    for partial in partials:
        events: List[Tuple[int, str, str, str, str]] = []
        for (fqdn, page, first_idx, strict_idx, nonstrict_before,
             base, domain_match) in partial["entries"]:
            if third_party_fqdns is not None and \
                    fqdn not in third_party_fqdns:
                continue
            if fqdn in result.ats_fqdns:
                # Known ATS on site entry: first record lands in per_page.
                events.append((first_idx, "seen", page, fqdn, base))
                continue
            if strict_idx is not None:
                if domain_match and nonstrict_before:
                    events.append((first_idx, "relaxed", page, fqdn, base))
                events.append((strict_idx, "strict", page, fqdn, base))
            elif domain_match and nonstrict_before:
                events.append((first_idx, "relaxed", page, fqdn, base))
        events.sort(key=lambda event: event[0])
        for _idx, kind, page, fqdn, base in events:
            if kind == "relaxed":
                result.ats_domains_relaxed.add(base)
            else:
                if kind == "strict":
                    result.ats_fqdns.add(fqdn)
                result.per_page.setdefault(page, set()).add(fqdn)
    # Relaxed matches subsume strict ones at the domain level (identical
    # trailing pass; ats_fqdns has the same insertion history, so the
    # iteration — and the relaxed set's — match the reference).
    for fqdn in result.ats_fqdns:
        result.ats_domains_relaxed.add(registrable_domain(fqdn))
    return result


# ----------------------------------------------------------------------
# Cookie analysis (reference: cookie_analysis.analyze_cookies)
# ----------------------------------------------------------------------

def map_cookies(visits, cookies, *, client_ip: str) -> dict:
    """Per-site half of :func:`~repro.core.cookie_analysis.analyze_cookies`.

    The dedupe key starts with the page domain, so global dedupe equals
    per-site dedupe.  Scalars sum; every ordered collection records the
    site-local first-touch order so the merge can rebuild the global
    dicts/sets with the reference insertion history (Table 4 ranks by
    ``-len(sites)`` with ties falling back to first-touch order).
    """
    partial = {
        "visited": 0,
        "total": 0, "id": 0, "huge": 0, "first": 0, "third": 0,
        "ip": 0, "geo": 0, "geo_isp": 0,
        "pages_with_cookies": [], "pages_with_tp": [], "geo_pages": [],
        "tp_bases": [],
        # base -> [id-cookie count, page]  (first-touch ordered)
        "per_domain": {},
        # base -> third-party IP-cookie count (order irrelevant: counts)
        "per_domain_ip": {},
        # base -> IP-cookie count, any party  (first-touch ordered)
        "ip_domains": {},
        # (name, value, page) in first-touch order
        "popular": [],
        "popular_seen": None,  # dropped before return
    }
    partial["visited"] = sum(1 for visit in visits if visit.success)
    pages_with_cookies: Set[str] = set()
    pages_with_tp: Set[str] = set()
    geo_pages: Set[str] = set()
    tp_bases: Set[str] = set()
    popular_seen: Set[Tuple[str, str, str]] = set()
    for cookie in _dedupe(cookies):
        partial["total"] += 1
        if cookie.page_domain not in pages_with_cookies:
            pages_with_cookies.add(cookie.page_domain)
            partial["pages_with_cookies"].append(cookie.page_domain)
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        partial["id"] += 1
        if len(cookie.value) > HUGE_LENGTH:
            partial["huge"] += 1
        base = registrable_domain(cookie.domain)
        third_party = base != registrable_domain(cookie.page_domain)
        if third_party:
            partial["third"] += 1
            if base not in tp_bases:
                tp_bases.add(base)
                partial["tp_bases"].append(base)
            if cookie.page_domain not in pages_with_tp:
                pages_with_tp.add(cookie.page_domain)
                partial["pages_with_tp"].append(cookie.page_domain)
            entry = partial["per_domain"].get(base)
            if entry is None:
                partial["per_domain"][base] = [1, cookie.page_domain]
            else:
                entry[0] += 1
        else:
            partial["first"] += 1

        popular_key = (cookie.name, cookie.value, cookie.page_domain)
        if popular_key not in popular_seen:
            popular_seen.add(popular_key)
            partial["popular"].append(popular_key)

        decodings = decode_cookie_value(cookie.value)
        has_ip = client_ip and any(client_ip in text for text in decodings)
        if has_ip:
            partial["ip"] += 1
            partial["ip_domains"][base] = \
                partial["ip_domains"].get(base, 0) + 1
            if third_party:
                partial["per_domain_ip"][base] = \
                    partial["per_domain_ip"].get(base, 0) + 1
        for text in decodings:
            if _geo_match(text):
                partial["geo"] += 1
                if cookie.page_domain not in geo_pages:
                    geo_pages.add(cookie.page_domain)
                    partial["geo_pages"].append(cookie.page_domain)
                if _isp_match(text):
                    partial["geo_isp"] += 1
                break
    del partial["popular_seen"]
    partial["pages_with_cookies"] = tuple(partial["pages_with_cookies"])
    partial["pages_with_tp"] = tuple(partial["pages_with_tp"])
    partial["geo_pages"] = tuple(partial["geo_pages"])
    partial["tp_bases"] = tuple(partial["tp_bases"])
    partial["popular"] = tuple(partial["popular"])
    return partial


def _geo_match(text: str) -> bool:
    from .cookie_analysis import _GEO_RE
    return _GEO_RE.search(text) is not None


def _isp_match(text: str) -> bool:
    from .cookie_analysis import _ISP_RE
    return _ISP_RE.search(text) is not None


def merge_cookies(partials: Sequence[dict], *,
                  ats_domains: Optional[Set[str]] = None,
                  regular_web_domains: Optional[Set[str]] = None,
                  top_n: int = 5) -> CookieStats:
    stats = CookieStats()
    per_domain_cookies: Dict[str, int] = {}
    per_domain_sites: Dict[str, Set[str]] = {}
    per_domain_ip: Dict[str, int] = {}
    popular: Dict[Tuple[str, str], Set[str]] = {}
    for partial in partials:
        stats.sites_visited += partial["visited"]
        stats.total_cookies += partial["total"]
        stats.id_cookies += partial["id"]
        stats.huge_id_cookies += partial["huge"]
        stats.first_party_id_cookies += partial["first"]
        stats.third_party_id_cookies += partial["third"]
        stats.ip_cookies += partial["ip"]
        stats.geo_cookies += partial["geo"]
        stats.geo_cookies_with_isp += partial["geo_isp"]
        stats.sites_with_cookies += len(partial["pages_with_cookies"])
        stats.sites_with_third_party_cookies += len(partial["pages_with_tp"])
        for base in partial["tp_bases"]:
            stats.third_party_cookie_domains.add(base)
        for base, (count, page) in partial["per_domain"].items():
            per_domain_cookies[base] = \
                per_domain_cookies.get(base, 0) + count
            per_domain_sites.setdefault(base, set()).add(page)
        for base, count in partial["ip_domains"].items():
            stats.ip_cookie_domains[base] = \
                stats.ip_cookie_domains.get(base, 0) + count
        for base, count in partial["per_domain_ip"].items():
            per_domain_ip[base] = per_domain_ip.get(base, 0) + count
        for name, value, page in partial["popular"]:
            popular.setdefault((name, value), set()).add(page)
        for page in partial["geo_pages"]:
            stats.geo_cookie_sites.add(page)
    stats.popular_cookies = {
        key: len(sites) for key, sites in popular.items()
    }
    ranked = sorted(per_domain_sites.items(), key=lambda item: -len(item[1]))
    for domain, sites in ranked[:top_n]:
        count = per_domain_cookies.get(domain, 0)
        stats.top_domains.append(
            TopCookieDomain(
                domain=domain,
                site_fraction=len(sites) / stats.sites_visited
                if stats.sites_visited else 0.0,
                site_count=len(sites),
                cookie_count=count,
                is_ats=bool(ats_domains) and domain in ats_domains,
                in_regular_web=bool(regular_web_domains)
                and domain in regular_web_domains,
                ip_cookie_fraction=per_domain_ip.get(domain, 0) / count
                if count else 0.0,
            )
        )
    return stats


# ----------------------------------------------------------------------
# HTTPS adoption (reference: https_analysis.analyze_https)
# ----------------------------------------------------------------------

def map_https(visits, requests, cookies, *, client_ip: str,
              labels_partial: dict) -> dict:
    """Per-site half of :func:`~repro.core.https_analysis.analyze_https`.

    The reference consults the global labels only through
    ``third_party_direct.get(page)`` — a per-page set, so the site's own
    labels partial supplies it exactly.  Tier assignment needs the
    crawled-popularity report of the *whole* run, so it stays in the
    merge: the partial keeps per-page facts (page scheme, per-service
    HTTPS OR in first-record order, the plain-HTTP flags, the cleartext
    ID-cookie verdict).
    """
    direct: Dict[str, Set[str]] = {}
    for _idx, kind, page, fqdn in labels_partial["events"]:
        if kind == "direct":
            direct.setdefault(page, set()).add(fqdn)

    page_https: List[Tuple[str, bool]] = []
    for visit in visits:
        if visit.success:
            page_https.append((visit.site_domain, visit.https))

    services: Dict[str, Dict[str, bool]] = {}
    http_tp: List[str] = []
    http_tp_seen: Set[str] = set()
    for record in requests:
        if record.failed or record.resource_type == "document":
            continue
        page = record.page_domain
        if record.fqdn not in direct.get(page, ()):
            continue
        secure = record.scheme == "https"
        page_services = services.setdefault(page, {})
        page_services[record.fqdn] = \
            (page_services.get(record.fqdn) or False) or secure
        if record.scheme == "http" and page not in http_tp_seen:
            http_tp_seen.add(page)
            http_tp.append(page)

    http_domains_per_page: Dict[str, Set[str]] = {}
    for record in requests:
        if record.scheme == "http" and not record.failed:
            http_domains_per_page.setdefault(record.page_domain, set()).add(
                registrable_domain(record.fqdn)
            )
    cleartext: List[str] = []
    cleartext_seen: Set[str] = set()
    for cookie in cookies:
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        bases = http_domains_per_page.get(cookie.page_domain)
        if not bases or registrable_domain(cookie.domain) not in bases:
            continue
        decodings = decode_cookie_value(cookie.value)
        sensitive = (client_ip and
                     any(client_ip in text for text in decodings)) \
            or any("lat%3d" in text.lower() or "lat=" in text.lower()
                   for text in decodings)
        if sensitive and cookie.page_domain not in cleartext_seen:
            cleartext_seen.add(cookie.page_domain)
            cleartext.append(cookie.page_domain)

    return {
        "page_https": tuple(page_https),
        "services": {page: tuple(entries.items())
                     for page, entries in services.items()},
        "http_tp": tuple(http_tp),
        "cleartext": tuple(cleartext),
    }


def merge_https(partials: Sequence[dict], *,
                popularity: PopularityReport) -> HTTPSReport:
    from ..webgen.config import TIER_NAMES

    report = HTTPSReport()
    tier_of_page: Dict[str, int] = {s.domain: s.tier
                                    for s in popularity.sites}

    page_https: Dict[str, bool] = {}
    for partial in partials:
        for page, https in partial["page_https"]:
            page_https[page] = https
    report.sites_visited = len(page_https)

    service_scheme: Dict[int, Dict[str, bool]] = {0: {}, 1: {}, 2: {}, 3: {}}
    page_has_http_third_party: Dict[str, bool] = {}
    for partial in partials:
        for page, entries in partial["services"].items():
            tier = tier_of_page.get(page)
            if tier is not None:
                tier_services = service_scheme[tier]
                for fqdn, secure in entries:
                    tier_services[fqdn] = \
                        (tier_services.get(fqdn) or False) or secure
        for page in partial["http_tp"]:
            page_has_http_third_party[page] = True

    tier_sites: Dict[int, List[str]] = {0: [], 1: [], 2: [], 3: []}
    for page, https in page_https.items():
        tier = tier_of_page.get(page)
        if tier is not None:
            tier_sites[tier].append(page)

    for tier in range(4):
        sites = tier_sites[tier]
        https_sites = sum(1 for page in sites if page_https[page])
        services = service_scheme[tier]
        https_services = sum(1 for secure in services.values() if secure)
        report.rows.append(
            HTTPSTierRow(
                interval=TIER_NAMES[tier],
                site_count=len(sites),
                site_https_fraction=https_sites / len(sites)
                if sites else 0.0,
                service_count=len(services),
                service_https_fraction=https_services / len(services)
                if services else 0.0,
            )
        )

    for page, https in page_https.items():
        if not https or page_has_http_third_party.get(page):
            report.not_fully_https_sites.add(page)
    for partial in partials:
        for page in partial["cleartext"]:
            report.cleartext_cookie_sites.add(page)
    return report


# ----------------------------------------------------------------------
# Banner detection (reference: compliance.banners.analyze_banners)
# ----------------------------------------------------------------------

def map_banners(visits) -> dict:
    """Per-site half of :func:`~repro.core.compliance.banners.analyze_banners`.

    Detection is a pure function of one page's markup; the partial keeps
    only the verdicts (never the HTML).
    """
    observations: List[Tuple[str, str, str]] = []
    visited = 0
    for visit in visits:
        if not visit.success:
            continue
        visited += 1
        if not visit.html:
            continue
        observation = detect_banner(visit.html, visit.site_domain)
        if observation is not None:
            observations.append((observation.site_domain,
                                 observation.banner_type, observation.text))
    return {"observations": tuple(observations), "visited": visited}


def merge_banners(partials: Sequence[dict], *,
                  corpus_size: Optional[int] = None) -> BannerReport:
    report = BannerReport()
    visited = 0
    for partial in partials:
        visited += partial["visited"]
        for site_domain, banner_type, text in partial["observations"]:
            report.observations.append(
                BannerObservation(site_domain=site_domain,
                                  banner_type=banner_type, text=text)
            )
    report.sites_checked = corpus_size if corpus_size else visited
    return report


# ----------------------------------------------------------------------
# Cookie synchronization (reference: cookie_sync.detect_cookie_sync)
# ----------------------------------------------------------------------

def map_sync(cookies, requests) -> dict:
    """Per-site half of :func:`~repro.core.cookie_sync.detect_cookie_sync`.

    Syncing is inherently cross-site (one site's cookie value can show
    up in another site's request URL), so the partial is not a verdict —
    it is the site's *contribution to the global event stream*: every
    long-enough cookie value and every token-bearing request URL, each
    with its global ``seq``.  URL tokenization (the expensive part) runs
    here; token-less requests are no-ops in the detector and are dropped.
    """
    cookie_events = tuple(
        (cookie.seq, cookie.value, registrable_domain(cookie.domain),
         cookie.name)
        for cookie in cookies
        if len(cookie.value) >= MIN_VALUE_LENGTH
    )
    request_events = []
    for record in requests:
        tokens = _url_tokens(record.url)
        if tokens:
            request_events.append(
                (record.seq, registrable_domain(record.fqdn),
                 record.page_domain, tuple(tokens))
            )
    return {"cookies": cookie_events, "requests": tuple(request_events)}


def merge_sync(partials: Sequence[dict]) -> SyncReport:
    """Replay the global seq-ordered scan over every site's events.

    Sequence numbers are unique across cookies and requests (each event
    draws one from the crawl-wide counter), so sorting the concatenated
    per-site events by ``seq`` reconstructs exactly the event list the
    monolithic detector builds — and the replayed scan then appends to
    ``events`` / ``pair_counts`` / ``sites`` in the same order.
    """
    events: List[Tuple[int, int, tuple]] = []
    for partial in partials:
        for seq, value, origin, name in partial["cookies"]:
            events.append((seq, 0, (value, origin, name)))
    for partial in partials:
        for seq, destination, page, tokens in partial["requests"]:
            events.append((seq, 1, (destination, page, tokens)))
    events.sort(key=lambda item: item[0])

    report = SyncReport()
    value_owner: Dict[str, Tuple[str, str, int]] = {}
    for seq, kind, payload in events:
        if kind == 0:
            value, origin, name = payload
            if value not in value_owner:
                value_owner[value] = (origin, name, seq)
            continue
        destination, page, tokens = payload
        for token in tokens:
            owner = value_owner.get(token)
            if owner is None:
                continue
            origin_domain, cookie_name, _ = owner
            if origin_domain == destination:
                continue
            report.events.append(SyncEvent(
                page_domain=page,
                origin_domain=origin_domain,
                destination=destination,
                cookie_name=cookie_name,
                value=token,
            ))
            pair = (origin_domain, destination)
            report.pair_counts[pair] = report.pair_counts.get(pair, 0) + 1
            report.sites.add(page)
    return report


# ----------------------------------------------------------------------
# JS-call-driven analyses (references: analyze_fingerprinting,
# analyze_malware) — the partial is the site's instrumented call rows.
# ----------------------------------------------------------------------

def map_jsapi(js_calls) -> dict:
    """A site's instrumented JS calls as primitive tuples.

    Fingerprinting classification is per-(script, execution site) but a
    script's row groups calls from *all* its sites, so the per-site
    partial cannot pre-judge — it carries the raw call facts and the
    merge rebuilds the global stream.  Calls are small (api name + a
    scalar args dict); HTML and network rows never enter the partial.
    """
    return {
        "calls": tuple(
            (call.script_url, call.document_host, call.api, dict(call.args))
            for call in js_calls
        ),
    }


def _replay_calls(partials: Sequence[dict]) -> List[JSCall]:
    """Concatenate per-site calls in log site order = global log order."""
    return [
        JSCall(script_url=script_url, document_host=document_host,
               api=api, args=args)
        for partial in partials
        for script_url, document_host, api, args in partial["calls"]
    ]


def merge_fingerprinting(partials: Sequence[dict], *,
                         url_blocklisted=None) -> FingerprintingReport:
    """Rebuild the call stream and run the monolithic analyzer on it.

    The store interleaves nothing — a run's rows are per-site spans in
    run position order — so concatenating the partials in that same
    order *is* the monolithic input, and delegating to
    :func:`~repro.core.fingerprinting.analyze_fingerprinting` makes
    drift impossible.
    """
    return analyze_fingerprinting(_replay_calls(partials),
                                  url_blocklisted=url_blocklisted)


# ----------------------------------------------------------------------
# Malware (reference: malware.analyze_malware)
# ----------------------------------------------------------------------

def map_visits(visits) -> dict:
    """The site's successful-visit domains, in visit order."""
    return {
        "visited": tuple(
            visit.site_domain for visit in visits if visit.success
        ),
    }


class _ReplayVisit:
    __slots__ = ("site_domain",)

    def __init__(self, site_domain: str) -> None:
        self.site_domain = site_domain


class _ReplayLog:
    """Just enough of a crawl log for :func:`analyze_malware`."""

    def __init__(self, visited: List[str], js_calls: List[JSCall]) -> None:
        self._visited = visited
        self.js_calls = js_calls

    def successful_visits(self):
        return (_ReplayVisit(domain) for domain in self._visited)


def merge_malware(visit_partials: Sequence[dict],
                  jsapi_partials: Sequence[dict], *,
                  labels: PartyLabels, scanner,
                  threshold: int = DETECTION_THRESHOLD) -> MalwareReport:
    """Feed the replayed visit/call streams to the monolithic analyzer."""
    visited = [
        domain
        for partial in visit_partials
        for domain in partial["visited"]
    ]
    log = _ReplayLog(visited, _replay_calls(jsapi_partials))
    return analyze_malware(log, labels, scanner, threshold=threshold)
