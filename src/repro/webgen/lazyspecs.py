"""Streaming site generation: packed spec rows decoded on demand.

Eager universe construction materializes one :class:`PornSiteSpec` /
:class:`RegularSiteSpec` dataclass per domain, which makes ``Universe``
memory O(corpus) — at scale 10 that is ~170k spec objects plus their
certificates and policy texts, most of which a crawl worker never looks
at twice.  This module keeps the *builder* untouched (site attributes
are sampled from globally coupled RNG streams, so per-domain derivation
must happen once, in order) but stores the finished attributes as
compact ``marshal``-packed rows instead of live dataclasses:

``porn_spec_to_row`` / ``porn_spec_from_row``
    Lossless codecs between a spec dataclass and a tuple of primitives.
    ``from_row(to_row(spec)) == spec`` exactly: every field is either
    carried verbatim or stored as a sorted tuple standing in for a
    frozenset (set equality is order-blind).  Parity with the eager
    path is therefore structural, not statistical.

:class:`LazySpecMap`
    A read-only :class:`~collections.abc.Mapping` from domain to spec
    that unpacks rows on access and keeps a small LRU of hot specs.
    Iteration (``items()`` / ``values()``) stream-decodes without
    touching the LRU so a full scan does not evict the working set.

:class:`LazyPolicyTexts`
    Policy pages rendered on first read.  ``PolicyGenerator.render`` is
    a pure function of (spec, domain, company, third-party list), so
    deferring it changes no bytes.

:class:`LazyCertificates`
    Site and CDN leaf certificates derived from the spec on access;
    only the (small) third-party service certificates stay eager.
"""

from __future__ import annotations

import marshal
import threading
from collections import OrderedDict
from collections.abc import Mapping
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..net.tls import Certificate
from .policytext import PolicyGenerator, PolicySpec
from .rank import RankTrajectory
from .sites import (
    PornSiteSpec,
    RegularSiteSpec,
    age_gate_from_row,
    age_gate_to_row,
    banner_from_row,
    banner_to_row,
)

__all__ = [
    "LazyCertificates",
    "LazyPolicyTexts",
    "LazySpecMap",
    "pack_porn_spec",
    "pack_regular_spec",
    "policy_to_row",
    "policy_from_row",
    "porn_spec_from_packed",
    "porn_spec_from_row",
    "porn_spec_to_row",
    "regular_spec_from_packed",
    "regular_spec_from_row",
    "regular_spec_to_row",
    "trajectory_to_row",
    "trajectory_from_row",
]


# ----------------------------------------------------------------------
# Nested codecs
# ----------------------------------------------------------------------

def trajectory_to_row(trajectory: RankTrajectory) -> tuple:
    return (
        trajectory.best_rank,
        trajectory.sigma,
        trajectory.observed_best,
        trajectory.observed_median,
        trajectory.observed_worst,
        trajectory.days_present,
        trajectory.days_total,
    )


def trajectory_from_row(row: tuple) -> RankTrajectory:
    return RankTrajectory(*row)


def policy_to_row(spec: PolicySpec) -> tuple:
    return (
        spec.template_id,
        spec.target_length,
        spec.mentions_gdpr,
        spec.discloses_cookies,
        spec.discloses_data_types,
        spec.discloses_third_parties,
        spec.full_third_party_list,
        spec.link_broken,
    )


def policy_from_row(row: tuple) -> PolicySpec:
    return PolicySpec(*row)


def _opt(value: Any, encode: Callable[[Any], tuple]) -> Optional[tuple]:
    return None if value is None else encode(value)


def _opt_decode(row: Optional[tuple], decode: Callable[[tuple], Any]) -> Any:
    return None if row is None else decode(row)


# ----------------------------------------------------------------------
# Spec codecs
# ----------------------------------------------------------------------

def porn_spec_to_row(spec: PornSiteSpec) -> tuple:
    return (
        spec.domain,
        trajectory_to_row(spec.trajectory),
        spec.language,
        spec.content_category,
        spec.owner,
        spec.cert_org,
        spec.discovered_by,
        spec.has_adult_keyword,
        spec.responsive,
        spec.crawl_flaky,
        spec.https,
        tuple(spec.extra_first_party_hosts),
        tuple(spec.embedded_services),
        tuple(spec.regional_services),
        spec.first_party_cookies,
        spec.first_party_id_cookie,
        spec.passes_id_to,
        spec.first_party_canvas_fp,
        _opt(spec.policy, policy_to_row),
        _opt(spec.banner, banner_to_row),
        _opt(spec.age_gate, age_gate_to_row),
        spec.rta_label,
        spec.subscription,
        spec.scanner_hits,
        tuple(sorted(spec.blocked_countries)),
    )


def porn_spec_from_row(row: tuple) -> PornSiteSpec:
    return PornSiteSpec(
        domain=row[0],
        trajectory=trajectory_from_row(row[1]),
        language=row[2],
        content_category=row[3],
        owner=row[4],
        cert_org=row[5],
        discovered_by=row[6],
        has_adult_keyword=row[7],
        responsive=row[8],
        crawl_flaky=row[9],
        https=row[10],
        extra_first_party_hosts=row[11],
        embedded_services=row[12],
        regional_services=row[13],
        first_party_cookies=row[14],
        first_party_id_cookie=row[15],
        passes_id_to=row[16],
        first_party_canvas_fp=row[17],
        policy=_opt_decode(row[18], policy_from_row),
        banner=_opt_decode(row[19], banner_from_row),
        age_gate=_opt_decode(row[20], age_gate_from_row),
        rta_label=row[21],
        subscription=row[22],
        scanner_hits=row[23],
        blocked_countries=frozenset(row[24]),
    )


def regular_spec_to_row(spec: RegularSiteSpec) -> tuple:
    return (
        spec.domain,
        trajectory_to_row(spec.trajectory),
        spec.category,
        spec.https,
        spec.cert_org,
        tuple(spec.extra_first_party_hosts),
        tuple(spec.embedded_services),
        spec.first_party_cookies,
        spec.responsive,
        spec.has_adult_keyword,
        spec.in_reference_corpus,
    )


def regular_spec_from_row(row: tuple) -> RegularSiteSpec:
    return RegularSiteSpec(
        domain=row[0],
        trajectory=trajectory_from_row(row[1]),
        category=row[2],
        https=row[3],
        cert_org=row[4],
        extra_first_party_hosts=row[5],
        embedded_services=row[6],
        first_party_cookies=row[7],
        responsive=row[8],
        has_adult_keyword=row[9],
        in_reference_corpus=row[10],
    )


def pack_porn_spec(spec: PornSiteSpec) -> bytes:
    """Spec -> compact bytes (marshal avoids per-element object headers)."""
    return marshal.dumps(porn_spec_to_row(spec))


def porn_spec_from_packed(blob: bytes) -> PornSiteSpec:
    return porn_spec_from_row(marshal.loads(blob))


def pack_regular_spec(spec: RegularSiteSpec) -> bytes:
    return marshal.dumps(regular_spec_to_row(spec))


def regular_spec_from_packed(blob: bytes) -> RegularSiteSpec:
    return regular_spec_from_row(marshal.loads(blob))


# ----------------------------------------------------------------------
# Lazy containers
# ----------------------------------------------------------------------

class LazySpecMap(Mapping):
    """Read-only domain -> spec mapping over packed rows with an LRU.

    Point lookups (``map[domain]`` / ``map.get``) go through the LRU so
    the specs a crawl is actively serving stay decoded; full scans
    (``items()`` / ``values()``) stream transient decodes and leave the
    LRU alone.
    """

    def __init__(
        self,
        packed: Dict[str, bytes],
        decode: Callable[[bytes], Any],
        *,
        hot_size: int = 1024,
    ) -> None:
        self._packed = packed
        self._decode = decode
        self._hot_size = hot_size
        self._hot: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __getitem__(self, domain: str) -> Any:
        with self._lock:
            spec = self._hot.get(domain)
            if spec is not None:
                self._hot.move_to_end(domain)
                return spec
        spec = self._decode(self._packed[domain])
        with self._lock:
            self._hot[domain] = spec
            self._hot.move_to_end(domain)
            while len(self._hot) > self._hot_size:
                self._hot.popitem(last=False)
        return spec

    def __contains__(self, domain: object) -> bool:
        return domain in self._packed

    def __iter__(self) -> Iterator[str]:
        return iter(self._packed)

    def __len__(self) -> int:
        return len(self._packed)

    def items(self):  # type: ignore[override]
        decode = self._decode
        for domain, blob in self._packed.items():
            yield domain, decode(blob)

    def values(self):  # type: ignore[override]
        for _, spec in self.items():
            yield spec


class LazyPolicyTexts(Mapping):
    """Domain -> rendered privacy-policy text, rendered on first read.

    Holds one packed ``(policy_row, company, third_parties)`` plan per
    site that publishes a reachable policy; the text itself (up to 240k
    characters per site) is produced on demand.  Rendering is pure, so
    lazily produced text is byte-identical to the eager version.
    """

    def __init__(
        self,
        plans: Dict[str, bytes],
        generator: PolicyGenerator,
        *,
        hot_size: int = 128,
    ) -> None:
        self._plans = plans
        self._generator = generator
        self._hot_size = hot_size
        self._hot: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()

    def __getitem__(self, domain: str) -> str:
        with self._lock:
            text = self._hot.get(domain)
            if text is not None:
                self._hot.move_to_end(domain)
                return text
        policy_row, company, third_parties = marshal.loads(self._plans[domain])
        text = self._generator.render(
            policy_from_row(policy_row),
            site_domain=domain,
            company=company,
            third_parties=third_parties,
        )
        with self._lock:
            self._hot[domain] = text
            self._hot.move_to_end(domain)
            while len(self._hot) > self._hot_size:
                self._hot.popitem(last=False)
        return text

    def __contains__(self, domain: object) -> bool:
        return domain in self._plans

    def __iter__(self) -> Iterator[str]:
        return iter(self._plans)

    def __len__(self) -> int:
        return len(self._plans)


class LazyCertificates(Mapping):
    """Host -> leaf certificate, deriving site/CDN certs from specs.

    Mirrors ``_Builder._build_certificates`` exactly: third-party
    service certificates are eager (``base``); porn/regular site and
    own-CDN certificates are a pure function of the site spec and are
    built on access.
    """

    def __init__(
        self,
        base: Dict[str, Certificate],
        porn_sites: Mapping,
        regular_sites: Mapping,
        site_cdns: Dict[str, str],
    ) -> None:
        self._base = base
        self._porn = porn_sites
        self._regular = regular_sites
        self._site_cdns = site_cdns

    def __getitem__(self, domain: str) -> Certificate:
        cert = self._base.get(domain)
        if cert is not None:
            return cert
        site = self._porn.get(domain)
        if site is not None:
            if not site.https:
                raise KeyError(domain)
            return Certificate(
                subject_cn=domain,
                subject_o=site.cert_org,
                san=frozenset({domain, f"*.{domain}"}),
            )
        site = self._regular.get(domain)
        if site is not None:
            if not site.https:
                raise KeyError(domain)
            return Certificate(
                subject_cn=domain, subject_o=None,
                san=frozenset({domain, f"*.{domain}"}),
            )
        owner_domain = self._site_cdns.get(domain)
        if owner_domain is not None:
            owner = self._porn.get(owner_domain) or self._regular.get(owner_domain)
            if owner is not None and owner.https:
                # SAN bridging: the CDN certificate also covers the parent.
                return Certificate(
                    subject_cn=domain,
                    subject_o=getattr(owner, "cert_org", None),
                    san=frozenset({domain, f"*.{domain}", owner_domain}),
                )
        raise KeyError(domain)

    def __contains__(self, domain: object) -> bool:
        try:
            self[domain]  # type: ignore[index]
        except KeyError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        seen = set(self._base)
        yield from self._base
        for maps in (self._porn, self._regular):
            for domain, site in maps.items():
                if site.https and domain not in seen:
                    seen.add(domain)
                    yield domain
        for cdn_domain, owner_domain in self._site_cdns.items():
            if cdn_domain in seen:
                continue
            owner = self._porn.get(owner_domain) or self._regular.get(owner_domain)
            if owner is not None and owner.https:
                seen.add(cdn_domain)
                yield cdn_domain

    def __len__(self) -> int:
        return sum(1 for _ in self)
