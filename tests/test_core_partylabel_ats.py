"""Tests for §4.2(1)-(2): party labeling and ATS classification."""

import pytest

from repro.browser.events import CrawlLog, RequestRecord
from repro.core.ats import ATSClassifier
from repro.core.partylabel import label_parties
from repro.net.url import registrable_domain


def make_request(url, page, *, referrer=None, rtype="script", seq=0,
                 status=200):
    from repro.net.url import parse_url

    parsed = parse_url(url)
    return RequestRecord(
        url=url, fqdn=parsed.host, scheme=parsed.scheme, page_domain=page,
        resource_type=rtype, initiator=None, referrer=referrer, seq=seq,
        status=status,
    )


class TestPartyLabelUnit:
    def test_same_registrable_is_first_party(self):
        log = CrawlLog()
        log.requests.append(
            make_request("https://cdn.site.com/a.js", "site.com",
                         referrer="https://site.com/")
        )
        labels = label_parties(log)
        assert not labels.all_third_party_fqdns
        # Same registrable domain: not even listed as extra first-party.
        assert not labels.all_first_party_fqdns

    def test_levenshtein_first_party(self):
        log = CrawlLog()
        log.requests.append(
            make_request("https://static.bigporntube99-cdn.com/l.png",
                         "bigporntube99.com",
                         referrer="https://bigporntube99.com/", rtype="image")
        )
        labels = label_parties(log)
        assert "static.bigporntube99-cdn.com" in labels.all_first_party_fqdns

    def test_unrelated_domain_is_third_party(self):
        log = CrawlLog()
        log.requests.append(
            make_request("https://ads.exoclick.com/a.js", "site.com",
                         referrer="https://site.com/")
        )
        labels = label_parties(log)
        assert "ads.exoclick.com" in labels.all_third_party_fqdns

    def test_direct_vs_dynamic_split(self):
        log = CrawlLog()
        log.requests.append(
            make_request("https://adnet.com/frame.html", "site.com",
                         referrer="https://site.com/", rtype="sub_frame")
        )
        log.requests.append(
            make_request("https://bidder.com/bid.js", "site.com",
                         referrer="https://adnet.com/frame.html")
        )
        labels = label_parties(log)
        assert "adnet.com" in labels.third_party_direct["site.com"]
        assert "bidder.com" in labels.third_party_dynamic["site.com"]
        assert "bidder.com" not in labels.all_third_party_fqdns

    def test_failed_requests_ignored(self):
        log = CrawlLog()
        record = make_request("https://dead.com/x.js", "site.com",
                              referrer="https://site.com/")
        record.failed = True
        log.requests.append(record)
        assert not label_parties(log).all_third_party_fqdns

    def test_threshold_parameter(self):
        log = CrawlLog()
        log.requests.append(
            make_request("https://abcd1.com/x.js", "abcd2.com",
                         referrer="https://abcd2.com/")
        )
        strict = label_parties(log, levenshtein_threshold=0.95)
        loose = label_parties(log, levenshtein_threshold=0.5)
        assert "abcd1.com" in strict.all_third_party_fqdns
        assert "abcd1.com" in loose.all_first_party_fqdns


class TestPartyLabelIntegration:
    def test_ground_truth_recovery(self, universe, study):
        """Labeled third parties match the generator's embed ground truth."""
        labels = study.porn_labels()
        sample = sorted(labels.third_party_direct)[:30]
        for page in sample:
            spec = universe.porn_sites.get(page)
            if spec is None:
                continue
            truth = set(spec.embedded_services)
            for fqdn in labels.third_party_direct[page]:
                base = registrable_domain(fqdn)
                assert base in truth or base in universe.services

    def test_own_cdn_labeled_first_party(self, universe, study):
        labels = study.porn_labels()
        cdn_bases = set(universe.site_cdns)
        found = {
            registrable_domain(f) for f in labels.all_first_party_fqdns
        }
        assert found & cdn_bases


class TestATS:
    @pytest.fixture(scope="class")
    def classifier(self, universe):
        return ATSClassifier.from_texts(universe.easylist_text,
                                        universe.easyprivacy_text)

    def test_named_ats_matched(self, classifier):
        assert classifier.matches_url("https://ads.exoclick.com/ad/banner-x.js")

    def test_path_only_rules(self, classifier):
        # ero-advertising's ad paths are listed...
        assert classifier.matches_url("https://ero-advertising.com/ad/banner-1.js")
        # ...but its fingerprinting script escapes full-URL matching (§5.1.3).
        assert not classifier.matches_url("https://ero-advertising.com/fp/fp-3.js")
        # The relaxed domain method still flags the domain as an ATS.
        assert classifier.matches_domain("ero-advertising.com")

    def test_unlisted_tracker_escapes(self, classifier):
        assert not classifier.matches_url("https://xcvgdf.party/fp/fp-0.js")
        assert not classifier.matches_domain("xcvgdf.party")

    def test_classify_log_counts(self, study):
        result = study.porn_ats()
        assert result.fqdn_count > 0
        assert result.ats_domains_relaxed >= set()
        for page, fqdns in list(result.per_page.items())[:5]:
            assert fqdns <= study.porn_labels().third_parties_of(page) | fqdns

    def test_porn_ats_exceed_regular_ats(self, study):
        table = study.table2()
        assert table.porn_ats > table.regular_ats
        assert table.porn_ats_fraction > table.regular_ats_fraction

    def test_majority_of_porn_ats_absent_from_regular_web(self, study):
        # The paper's 84% headline.
        table = study.table2()
        assert table.porn_only_ats_fraction > 0.5
