"""Longitudinal Alexa-style rank trajectories (Figure 1 substrate).

The paper tracks every corpus site across the Alexa top-1M throughout 2018
and reports, per site, the best rank, the median rank, and the percentage
of days the site was indexed at all.  16% of porn sites were present every
day; 16 sites never left the top-1K.

A site's daily rank is modeled as ``best * exp(sigma * h)`` with ``h``
half-normal: the year's minimum is then (almost exactly) the configured
best rank, volatility is a single per-site parameter, and days where the
rank exceeds 1,000,000 are "absent from the published list" — exactly the
censoring a top-1M crawl suffers from (Scheitle et al., IMC'18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["RankTrajectory", "RankModel", "TOP_LIST_SIZE", "tier_of_rank"]

TOP_LIST_SIZE = 1_000_000

#: Tier boundaries by best rank (Table 3 / Table 6 intervals).
_TIER_BOUNDS = (1_000, 10_000, 100_000)


def tier_of_rank(best_rank: int) -> int:
    """Map a best rank to its popularity tier index (0..3)."""
    for tier, bound in enumerate(_TIER_BOUNDS):
        if best_rank <= bound:
            return tier
    return 3


@dataclass(frozen=True)
class RankTrajectory:
    """Summary of one site's year in the rank list."""

    best_rank: int            # true minimum over the year
    sigma: float              # volatility parameter
    observed_best: int        # min rank over days present in the top-1M
    observed_median: int      # median over present days (0 if never present)
    observed_worst: int       # max rank over present days (0 if never present)
    days_present: int
    days_total: int

    @property
    def presence_fraction(self) -> float:
        return self.days_present / self.days_total if self.days_total else 0.0

    @property
    def always_present(self) -> bool:
        return self.days_present == self.days_total

    @property
    def always_top_1k(self) -> bool:
        """Never left the top-1,000 all year (Fig. 1: just 16 sites)."""
        return self.always_present and 0 < self.observed_worst <= 1_000

    @property
    def ever_present(self) -> bool:
        return self.days_present > 0

    @property
    def tier(self) -> int:
        """Popularity tier by observed best rank (3 when never observed)."""
        if not self.ever_present:
            return 3
        return tier_of_rank(self.observed_best)


class RankModel:
    """Samples rank trajectories per popularity tier.

    Besides rank volatility, the model includes *list dropout*: days where
    a site is missing from the published top-1M regardless of its true
    traffic — the churn Scheitle et al. measured in commercial top lists.
    ``DROPOUT_FREE`` is the per-tier probability that a site never suffers
    dropout; it calibrates Fig. 1's "always present" population (16%).
    """

    #: (best-rank low, best-rank high, sigma low, sigma high) per tier.
    TIER_PARAMS: Tuple[Tuple[int, int, float, float], ...] = (
        (30, 1_000, 0.50, 1.00),
        (1_001, 10_000, 0.30, 1.00),
        (10_001, 100_000, 0.30, 1.20),
        (100_001, 4_000_000, 0.40, 1.60),
    )

    #: Probability of zero list-dropout days, per tier.
    DROPOUT_FREE: Tuple[float, ...] = (0.95, 0.85, 0.17, 0.02)

    def __init__(self, rng: np.random.Generator, *, days: int = 365) -> None:
        if days < 1:
            raise ValueError("days must be positive")
        self._rng = rng
        self.days = days

    def _sample_best(self, low: int, high: int) -> int:
        """Log-uniform best rank within a tier's range."""
        log_rank = self._rng.uniform(np.log(low), np.log(high + 1))
        return int(np.exp(log_rank))

    def daily_series(self, best_rank: int, sigma: float) -> np.ndarray:
        """A full year of daily ranks (values above 1M mean "not listed")."""
        half_normal = np.abs(self._rng.standard_normal(self.days))
        series = best_rank * np.exp(sigma * half_normal)
        return np.maximum(series.astype(np.int64), 1)

    def sample_dropout(self, tier: int) -> float:
        """The fraction of days this site is missing from the list."""
        if self._rng.random() < self.DROPOUT_FREE[tier]:
            return 0.0
        return float(self._rng.uniform(0.01, 0.6))

    def sample(self, tier: int, *, best_rank: Optional[int] = None) -> RankTrajectory:
        """Sample one trajectory for a site in ``tier``.

        ``best_rank`` can be pinned (used for Table 1's flagship sites with
        published ranks); it must fall inside the tier's range.
        """
        low, high, sigma_low, sigma_high = self.TIER_PARAMS[tier]
        if best_rank is None:
            best_rank = self._sample_best(low, high)
        sigma = float(self._rng.uniform(sigma_low, sigma_high))
        series = self.daily_series(best_rank, sigma)
        dropout = self.sample_dropout(tier)
        if dropout > 0.0:
            absent = self._rng.random(self.days) < dropout
            # Ensure the best day survives so the site keeps its tier.
            absent[int(np.argmin(series))] = False
            series = series.copy()
            series[absent] = TOP_LIST_SIZE + 1
        return summarize_series(series, best_rank=best_rank, sigma=sigma)


def summarize_series(
    series: np.ndarray, *, best_rank: Optional[int] = None, sigma: float = 0.0
) -> RankTrajectory:
    """Reduce a daily rank series to a :class:`RankTrajectory`."""
    present = series <= TOP_LIST_SIZE
    days_present = int(present.sum())
    if days_present:
        visible = series[present]
        observed_best = int(visible.min())
        observed_median = int(np.median(visible))
        observed_worst = int(visible.max())
    else:
        observed_best = 0
        observed_median = 0
        observed_worst = 0
    return RankTrajectory(
        best_rank=int(best_rank if best_rank is not None else series.min()),
        sigma=sigma,
        observed_best=observed_best,
        observed_median=observed_median,
        observed_worst=observed_worst,
        days_present=days_present,
        days_total=int(series.size),
    )
