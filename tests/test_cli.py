"""Tests for the ``python -m repro`` command-line interface."""

import re

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["corpus"])
        assert args.scale == 0.1
        assert args.seed == 20191021

    def test_crawl_options(self):
        args = build_parser().parse_args(
            ["crawl", "--country", "RU", "--sites", "5", "--scale", "0.02"]
        )
        assert args.country == "RU"
        assert args.sites == 5

    def test_invalid_country_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--country", "BR"])

    def test_store_flag(self):
        args = build_parser().parse_args(
            ["study", "--store", "/tmp/crawl.db"]
        )
        assert args.store == "/tmp/crawl.db"

    def test_report_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_store_info_args(self):
        args = build_parser().parse_args(["store", "info", "x.db", "-v"])
        assert args.path == "x.db"
        assert args.verbose


class TestCommands:
    def test_corpus_command(self, capsys):
        assert main(["corpus", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "sanitized corpus:" in out
        assert "always in the top-1M" in out

    def test_crawl_command(self, capsys):
        assert main(["crawl", "--scale", "0.02", "--seed", "3",
                     "--sites", "8"]) == 0
        out = capsys.readouterr().out
        assert "/8 sites from ES" in out
        assert "third-party domains" in out

    def test_study_command(self, capsys):
        assert main(["study", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 2", "Table 4", "Figure 4", "Table 5",
                       "§5.3 malware", "Table 6", "Table 8"):
            assert marker in out

    def test_crawl_stats_prints_progress_counts(self, capsys):
        assert main(["crawl", "--scale", "0.02", "--seed", "3",
                     "--sites", "4", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "progress events: 4 sites started, 4 finished" in out

    def test_crawl_since_stats_reports_spliced_sites(self, tmp_path,
                                                     capsys):
        e0 = str(tmp_path / "e0.db")
        assert main(["crawl", "--scale", "0.02", "--seed", "3",
                     "--sites", "6", "--store", e0]) == 0
        capsys.readouterr()
        e1 = str(tmp_path / "e1.db")
        assert main(["crawl", "--scale", "0.02", "--seed", "3",
                     "--sites", "6", "--epoch", "1", "--churn", "0.05",
                     "--store", e1, "--since", e0, "--stats"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"(\d+) spliced", out)
        assert match and int(match.group(1)) > 0


class TestProcessConventions:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip() != "repro unknown"

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import __main__ as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_corpus", interrupted)
        parser = cli.build_parser()
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        parser.parse_args(["corpus"])  # sanity: still parses
        assert main(["corpus"]) == 130
        assert "interrupted" in capsys.readouterr().err
