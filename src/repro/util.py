"""Shared deterministic utilities.

Everything in the universe must be reproducible from a single seed, and
server-side values (cookie identifiers, minted subdomains) must be stable
functions of their context — not of call order.  ``stable_hash`` and
``rng_for`` provide order-independent determinism.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Union

import numpy as np

__all__ = ["stable_hash", "rng_for", "token_for"]

_B36_ALPHABET = "0123456789abcdefghijklmnopqrstuvwxyz"

_SEP = "\x1f"


def stable_hash(*parts: Union[str, int]) -> int:
    """A 64-bit hash of the parts, stable across processes and runs.

    Python's built-in ``hash`` is randomized per process for strings; this
    one is not, which is what makes server-side minting reproducible.
    """
    digest = hashlib.sha256(_SEP.join(map(str, parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rng_for(seed: int, *keys: Union[str, int]) -> np.random.Generator:
    """A generator deterministically derived from ``seed`` and context keys."""
    return np.random.default_rng([seed & 0xFFFFFFFF, stable_hash(*keys) & 0xFFFFFFFF])


@lru_cache(maxsize=32_768)
def token_for(length: int, *parts: Union[str, int]) -> str:
    """A deterministic base-36 token of ``length`` characters.

    Each sha256 digest yields up to twelve-odd base-36 digits, so the
    parts are joined *once* and one digest is taken per ~12 characters —
    the same digest sequence (and therefore the same token) the original
    per-counter ``stable_hash`` loop produced.  Cookie values and minted
    hostnames recur heavily within a crawl (same site, same client), so
    the whole function sits behind an ``lru_cache``.  Recurrence is
    almost entirely *within* a visit (a site's cookies are re-sent on
    each of its requests, then never seen again), so a modest LRU keeps
    the hit rate while bounding resident tokens on large crawls.
    """
    if length <= 0:
        return ""
    suffix = (_SEP + _SEP.join(map(str, parts))).encode() if parts else b""
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    chars = []
    counter = 0
    while len(chars) < length:
        value = from_bytes(sha256(b"%d%s" % (counter, suffix)).digest()[:8], "big")
        while value and len(chars) < length:
            value, digit = divmod(value, 36)
            chars.append(_B36_ALPHABET[digit])
        counter += 1
    return "".join(chars[:length])
