"""Section 4.2(2) — ATS classification via EasyList / EasyPrivacy.

The lists are rule-based over full URLs (``bbc.co.uk`` is clean while
``bbc.co.uk/analytics`` is blocked), so classification matches every
observed request URL; the paper also applies a relaxed base-domain match
to count ATS *organizations*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..blocklists.easylist import FilterList, MatchContext
from ..browser.events import CrawlLog
from ..net.url import URLError, parse_url, registrable_domain

__all__ = ["ATSClassifier", "ATSResult"]


@dataclass
class ATSResult:
    """Which observed third parties the blocklists recognize as ATS."""

    #: FQDNs with at least one full-URL rule match.
    ats_fqdns: Set[str] = field(default_factory=set)
    #: Registrable domains matched by the relaxed base-domain method.
    ats_domains_relaxed: Set[str] = field(default_factory=set)
    #: page -> ATS FQDNs embedded there.
    per_page: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def fqdn_count(self) -> int:
        return len(self.ats_fqdns)


class ATSClassifier:
    """Joint EasyList + EasyPrivacy classifier."""

    def __init__(self, easylist: FilterList, easyprivacy: FilterList) -> None:
        self.easylist = easylist
        self.easyprivacy = easyprivacy
        #: Match memo keyed on everything rule evaluation can read:
        #: the URL, the first-party host, and the resource type.  A crawl
        #: asks about the same (ad pixel, page) pair once per vantage
        #: point and analysis stage, so hits dominate.
        self._memo: Dict[tuple, bool] = {}

    @classmethod
    def from_texts(cls, easylist_text: str, easyprivacy_text: str) -> "ATSClassifier":
        return cls(FilterList.from_text(easylist_text),
                   FilterList.from_text(easyprivacy_text))

    def matches_url(self, url: str, *, first_party_host: str = "",
                    resource_type: str = "script") -> bool:
        """Full-URL match against both lists (the strict method)."""
        key = (url, first_party_host, resource_type)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        try:
            parsed = parse_url(url)
        except URLError:
            self._memo[key] = False
            return False
        context = MatchContext(first_party_host=first_party_host,
                               resource_type=resource_type)
        result = self.easylist.matches(parsed, context) or \
            self.easyprivacy.matches(parsed, context)
        self._memo[key] = result
        return result

    def matches_domain(self, host: str) -> bool:
        """Relaxed base-FQDN match (the organization-level method)."""
        return self.easylist.matches_domain(host) or \
            self.easyprivacy.matches_domain(host)

    def classify_log(
        self,
        log: CrawlLog,
        *,
        third_party_fqdns: Optional[Set[str]] = None,
    ) -> ATSResult:
        """Classify every (page, request) in a crawl log.

        ``third_party_fqdns`` restricts classification to labeled third
        parties (pass :attr:`PartyLabels.all_third_party_fqdns`).
        """
        result = ATSResult()
        for record in log.requests:
            if record.failed or record.resource_type == "document":
                continue
            if third_party_fqdns is not None and \
                    record.fqdn not in third_party_fqdns:
                continue
            if record.fqdn in result.ats_fqdns:
                result.per_page.setdefault(record.page_domain, set()).add(record.fqdn)
                continue
            if self.matches_url(record.url, first_party_host=record.page_domain,
                                resource_type=record.resource_type):
                result.ats_fqdns.add(record.fqdn)
                result.per_page.setdefault(record.page_domain, set()).add(record.fqdn)
            elif self.matches_domain(record.fqdn):
                result.ats_domains_relaxed.add(registrable_domain(record.fqdn))
        # Relaxed matches subsume strict ones at the domain level.
        for fqdn in result.ats_fqdns:
            result.ats_domains_relaxed.add(registrable_domain(fqdn))
        return result
