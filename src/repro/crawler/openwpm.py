"""The OpenWPM-style measurement crawler (§3.1).

One browser session is reused for the entire crawl — the paper keeps the
session alive to capture cookie synchronization — and only landing pages
are visited (a deliberate lower bound on tracking).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..browser.browser import Browser
from ..browser.events import CrawlLog
from ..net.geo import VantagePoint
from ..webgen.universe import ClientContext, Universe
from .vpn import client_for

__all__ = ["OpenWPMCrawler"]


class OpenWPMCrawler:
    """Crawls landing pages with full instrumentation from one vantage point."""

    def __init__(
        self,
        universe: Universe,
        vantage: VantagePoint,
        *,
        epoch: str = "crawl",
        keep_html: bool = True,
    ) -> None:
        self.universe = universe
        self.vantage = vantage
        self.client: ClientContext = client_for(vantage, epoch=epoch)
        self.keep_html = keep_html

    def crawl(self, domains: Iterable[str],
              *, log: Optional[CrawlLog] = None) -> CrawlLog:
        """Visit each domain's landing page once, in order.

        A single cookie jar spans the whole crawl; pass an existing ``log``
        to append (used when crawling the porn and regular corpora in the
        same session).
        """
        browser = Browser(self.universe, self.client, log=log,
                          keep_html=self.keep_html)
        for domain in domains:
            browser.visit(domain)
        return browser.log
