"""Section 4.2 — the porn third-party ecosystem versus the regular web.

Produces Table 2 (first/third-party/ATS counts and intersections),
Table 3 (third-party presence per popularity tier, with per-tier unique
domains and the all-tier core), and Figure 3 (top organizations by
prevalence in each ecosystem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..net.url import registrable_domain
from ..webgen.config import TIER_NAMES
from .ats import ATSResult
from .attribution import AttributionResult
from .partylabel import PartyLabels
from .popularity import PopularityReport

__all__ = [
    "Table2",
    "TierRow",
    "Table3",
    "OrganizationPrevalence",
    "build_table2",
    "build_table3",
    "build_figure3",
]


@dataclass(frozen=True)
class Table2:
    """Table 2: domain counts per ecosystem."""

    porn_corpus: int
    regular_corpus: int
    porn_first_party: int
    regular_first_party: int
    porn_third_party: int
    regular_third_party: int
    fqdn_intersection: int
    porn_ats: int
    regular_ats: int
    ats_intersection: int

    @property
    def porn_ats_fraction(self) -> float:
        return self.porn_ats / self.porn_third_party if self.porn_third_party else 0.0

    @property
    def regular_ats_fraction(self) -> float:
        return self.regular_ats / self.regular_third_party \
            if self.regular_third_party else 0.0

    @property
    def porn_only_ats_fraction(self) -> float:
        """Fraction of porn ATSes absent from the regular web (the 84%)."""
        if not self.porn_ats:
            return 0.0
        return 1.0 - self.ats_intersection / self.porn_ats


def build_table2(
    *,
    porn_labels: PartyLabels,
    regular_labels: PartyLabels,
    porn_ats: ATSResult,
    regular_ats: ATSResult,
    porn_visited: int,
    regular_visited: int,
) -> Table2:
    porn_third = porn_labels.all_third_party_fqdns
    regular_third = regular_labels.all_third_party_fqdns
    porn_ats_set = porn_ats.ats_fqdns & porn_third
    regular_ats_set = regular_ats.ats_fqdns & regular_third
    # Intersections are computed at the registrable-domain level: the same
    # service often serves different hostnames to the two ecosystems.
    porn_bases = {registrable_domain(f) for f in porn_third}
    regular_bases = {registrable_domain(f) for f in regular_third}
    porn_ats_bases = {registrable_domain(f) for f in porn_ats_set}
    regular_ats_bases = {registrable_domain(f) for f in regular_ats_set}
    return Table2(
        porn_corpus=porn_visited,
        regular_corpus=regular_visited,
        porn_first_party=len(porn_labels.all_first_party_fqdns),
        regular_first_party=len(regular_labels.all_first_party_fqdns),
        porn_third_party=len(porn_third),
        regular_third_party=len(regular_third),
        fqdn_intersection=len(porn_bases & regular_bases),
        porn_ats=len(porn_ats_set),
        regular_ats=len(regular_ats_set),
        ats_intersection=len(porn_ats_bases & regular_ats_bases),
    )


@dataclass(frozen=True)
class TierRow:
    """One Table 3 row."""

    interval: str
    site_count: int
    third_party_total: int
    third_party_unique: int


@dataclass
class Table3:
    rows: List[TierRow]
    all_tier_domains: Set[str]

    @property
    def all_tier_fraction(self) -> float:
        total = len({d for row_set in self._tier_sets for d in row_set})
        return len(self.all_tier_domains) / total if total else 0.0

    _tier_sets: List[Set[str]] = field(default_factory=list)


def build_table3(
    porn_labels: PartyLabels, popularity: PopularityReport
) -> Table3:
    tier_of_page: Dict[str, int] = {
        site.domain: site.tier for site in popularity.sites
    }
    tier_fqdns: List[Set[str]] = [set(), set(), set(), set()]
    tier_sites: List[int] = [0, 0, 0, 0]
    for site in popularity.sites:
        tier_sites[site.tier] += 1
    for page, fqdns in porn_labels.third_party_direct.items():
        tier = tier_of_page.get(page)
        if tier is None:
            continue
        tier_fqdns[tier] |= fqdns
    rows = []
    for tier in range(4):
        others: Set[str] = set()
        for other_tier in range(4):
            if other_tier != tier:
                others |= tier_fqdns[other_tier]
        rows.append(
            TierRow(
                interval=TIER_NAMES[tier],
                site_count=tier_sites[tier],
                third_party_total=len(tier_fqdns[tier]),
                third_party_unique=len(tier_fqdns[tier] - others),
            )
        )
    all_tier = tier_fqdns[0] & tier_fqdns[1] & tier_fqdns[2] & tier_fqdns[3]
    table = Table3(rows=rows, all_tier_domains=all_tier)
    table._tier_sets = tier_fqdns
    return table


@dataclass(frozen=True)
class OrganizationPrevalence:
    """One Figure 3 bar: an organization's reach in each ecosystem."""

    organization: str
    porn_fraction: float
    regular_fraction: float
    porn_sites: int
    regular_sites: int


def _org_site_counts(
    labels: PartyLabels, attribution: AttributionResult
) -> Dict[str, Set[str]]:
    sites_of_org: Dict[str, Set[str]] = {}
    for page, fqdns in labels.third_party_direct.items():
        for fqdn in fqdns:
            organization = attribution.organization_of.get(fqdn)
            if organization is not None:
                sites_of_org.setdefault(organization, set()).add(page)
    return sites_of_org


def build_figure3(
    *,
    porn_labels: PartyLabels,
    regular_labels: PartyLabels,
    porn_attribution: AttributionResult,
    regular_attribution: AttributionResult,
    porn_visited: int,
    regular_visited: int,
    top_n: int = 19,
) -> List[OrganizationPrevalence]:
    """Most prevalent third-party organizations in the porn ecosystem."""
    porn_orgs = _org_site_counts(porn_labels, porn_attribution)
    regular_orgs = _org_site_counts(regular_labels, regular_attribution)
    ranked = sorted(porn_orgs.items(), key=lambda item: -len(item[1]))[:top_n]
    bars = []
    for organization, porn_pages in ranked:
        regular_pages = regular_orgs.get(organization, set())
        bars.append(
            OrganizationPrevalence(
                organization=organization,
                porn_fraction=len(porn_pages) / porn_visited if porn_visited else 0.0,
                regular_fraction=(
                    len(regular_pages) / regular_visited if regular_visited else 0.0
                ),
                porn_sites=len(porn_pages),
                regular_sites=len(regular_pages),
            )
        )
    return bars
