"""The instrumented browser (our OpenWPM-equivalent page loader).

Loading a page means: fetch the document (HTTPS first, downgrading to
HTTP when unsupported, as in §5.2), parse it, fetch every referenced
resource in DOM order, follow redirect chains (cookie syncing lives
there), execute scripts against the instrumented JS APIs, and recurse one
level into iframes (where RTB bidders load dynamically).

The browser keeps a single :class:`~repro.net.cookies.CookieJar` for its
whole lifetime; the paper deliberately reuses one session across the
entire crawl to observe cookie synchronization.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..html.dom import Element
from ..html.parser import parse_html_cached
from ..js.runtime import execute_script
from ..net.cookies import CookieJar
from ..net.http import Headers, Request, Response
from ..net.url import URL, URLError, parse_url, registrable_domain
from ..util import token_for
from ..webgen.universe import ClientContext, FetchError, Universe
from .events import CookieRecord, CrawlLog, PageVisit, RequestRecord

__all__ = ["Browser", "MAX_REDIRECTS"]

MAX_REDIRECTS = 4

_RESOURCE_TAGS = (
    ("script", "src", "script"),
    ("img", "src", "image"),
    ("iframe", "src", "sub_frame"),
    ("link", "href", "stylesheet"),
)

#: Render-manifest kinds in fetch order, mapped to request resource types.
#: The order mirrors ``_RESOURCE_TAGS`` so manifest-driven loads fetch in
#: exactly the sequence the parse-driven path always used.
_MANIFEST_KINDS = (
    ("script", "script"),
    ("img", "image"),
    ("iframe", "sub_frame"),
    ("link", "stylesheet"),
)


class Browser:
    """An instrumented browser bound to one vantage point."""

    def __init__(
        self,
        universe: Universe,
        client: ClientContext,
        *,
        log: Optional[CrawlLog] = None,
        keep_html: bool = True,
        request_filter=None,
        use_manifest: bool = True,
    ) -> None:
        """``request_filter(url_str, page_domain, resource_type) -> bool``
        simulates a content blocker: when it returns True the request is
        cancelled before hitting the network (the paper's §10 proposes
        studying exactly this — ad-blocker effectiveness on this ecosystem).

        ``use_manifest`` consumes the server's render manifest instead of
        re-parsing HTML; set it False to force the historical parse-driven
        subresource extraction (the two produce bit-identical crawl logs —
        see ``tests/test_manifest_parity.py``).
        """
        self.universe = universe
        self.client = client
        self.jar = CookieJar()
        self.log = log if log is not None else CrawlLog(
            country_code=client.country_code, client_ip=client.client_ip
        )
        self.keep_html = keep_html
        self.request_filter = request_filter
        self.use_manifest = use_manifest
        self.blocked_requests = 0

    # ------------------------------------------------------------------
    # Low-level fetching
    # ------------------------------------------------------------------

    def _fetch_once(
        self,
        url: URL,
        *,
        page_domain: str,
        resource_type: str,
        initiator: Optional[str],
        referrer: Optional[str],
    ) -> Tuple[RequestRecord, Optional[Response]]:
        if self.request_filter is not None and resource_type != "document" \
                and self.request_filter(str(url), page_domain, resource_type):
            self.blocked_requests += 1
            record = RequestRecord(
                url=str(url), fqdn=url.host, scheme=url.scheme,
                page_domain=page_domain, resource_type=resource_type,
                initiator=initiator, referrer=referrer,
                seq=self.log.next_seq(), failed=True, error="BLOCKED",
            )
            return record, None
        record = RequestRecord(
            url=str(url),
            fqdn=url.host,
            scheme=url.scheme,
            page_domain=page_domain,
            resource_type=resource_type,
            initiator=initiator,
            referrer=referrer,
            seq=self.log.next_seq(),
        )
        self.log.requests.append(record)

        if self.universe.dns.try_resolve(url.host) is None:
            record.failed = True
            record.error = "NXDOMAIN"
            return record, None

        headers = Headers()
        if referrer:
            headers.set("Referer", referrer)
        cookie_header = self.jar.cookie_header_for(url)
        if cookie_header:
            headers.set("Cookie", cookie_header)
        request = Request(url, headers=headers, initiator=initiator,
                          resource_type=resource_type)
        try:
            response = self.universe.fetch(request, self.client)
        except FetchError as exc:
            record.failed = True
            record.error = type(exc).__name__
            return record, None

        record.status = response.status
        if response.is_redirect and response.location:
            record.redirect_location = response.location
        self._store_cookies(response, url, page_domain)
        return record, response

    def _store_cookies(self, response: Response, url: URL, page_domain: str) -> None:
        stored = self.jar.store_from_response(response.set_cookie_headers, url.host)
        for cookie in stored:
            self.log.cookies.append(
                CookieRecord(
                    page_domain=page_domain,
                    set_by_host=url.host,
                    domain=cookie.domain,
                    name=cookie.name,
                    value=cookie.value,
                    session=cookie.session,
                    secure=cookie.secure,
                    over_https=url.is_secure,
                    seq=self.log.next_seq(),
                )
            )

    def fetch(
        self,
        url: URL,
        *,
        page_domain: str,
        resource_type: str,
        initiator: Optional[str] = None,
        referrer: Optional[str] = None,
    ) -> Optional[Response]:
        """Fetch a URL, following redirects; returns the final response.

        Redirect hops carry the *redirecting* URL as referrer/initiator:
        that is the signal the paper's inclusion-chain analysis uses to
        prune third parties "not directly called by the publisher".
        """
        response: Optional[Response] = None
        current = url
        hop_initiator = initiator
        hop_referrer = referrer
        for _ in range(MAX_REDIRECTS + 1):
            record, response = self._fetch_once(
                current,
                page_domain=page_domain,
                resource_type=resource_type,
                initiator=hop_initiator,
                referrer=hop_referrer,
            )
            if response is None or not response.is_redirect:
                return response
            location = response.location
            if not location:
                return response
            try:
                next_url = parse_url(location)
            except URLError:
                return response
            hop_initiator = str(current)
            hop_referrer = str(current)
            current = next_url
        return response

    # ------------------------------------------------------------------
    # Page loading
    # ------------------------------------------------------------------

    def visit(self, site_domain: str, *, path: str = "/") -> PageVisit:
        """Load a site's landing page with all subresources.

        Tries HTTPS first and downgrades to HTTP when the server does not
        support TLS (mirroring the paper's §5.2 measurement method).
        """
        response = None
        final_url: Optional[URL] = None
        for scheme in ("https", "http"):
            candidate = parse_url(f"{scheme}://{site_domain}{path}")
            record, response = self._fetch_once(
                candidate,
                page_domain=site_domain,
                resource_type="document",
                initiator=None,
                referrer=None,
            )
            if response is not None:
                final_url = candidate
                break
            if record.error != "TLSUnsupportedError":
                # Dead site / timeout / NXDOMAIN / no route / geo-excluded:
                # the failure is scheme-independent, downgrading won't help.
                break

        if response is None or final_url is None:
            visit = PageVisit(site_domain, f"https://{site_domain}{path}",
                              success=False,
                              failure_reason=(record.error or "unreachable"))
            self.log.visits.append(visit)
            return visit

        visit = PageVisit(
            site_domain,
            str(final_url),
            success=response.ok,
            status=response.status,
            https=final_url.is_secure,
            html=response.body if self.keep_html else "",
        )
        self.log.visits.append(visit)
        if not response.ok or "text/html" not in response.content_type:
            return visit

        self._load_page(response, page_url=final_url,
                        page_domain=site_domain, depth=0)
        return visit

    def _resource_entries(self, response: Response) -> List[Tuple[str, str]]:
        """The ordered ``(resource_type, url)`` fetch list of an HTML response.

        Prefers the server's render manifest (no parsing at all); falls
        back to the one-pass DOM extraction when the response carries none
        or the browser was built with ``use_manifest=False``.
        """
        if self.use_manifest and response.manifest is not None:
            manifest = response.manifest
            return [
                (resource_type, url)
                for kind, resource_type in _MANIFEST_KINDS
                for entry_kind, url in manifest
                if entry_kind == kind
            ]
        # The tree is only iterated (never mutated), so the shared
        # content-hash parse cache is safe here.
        return self._extract_entries(parse_html_cached(response.body))

    @staticmethod
    def _extract_entries(document: Element) -> List[Tuple[str, str]]:
        """One DOM traversal, bucketed by tag.

        The historical code walked the full tree once per resource tag;
        bucketing keeps the identical fetch order (tags in
        ``_RESOURCE_TAGS`` order, DOM pre-order within a tag) at a quarter
        of the traversal cost.
        """
        buckets: dict = {tag: [] for tag, _, _ in _RESOURCE_TAGS}
        for element in document.iter():
            bucket = buckets.get(element.tag)
            if bucket is not None:
                bucket.append(element)
        entries: List[Tuple[str, str]] = []
        for tag, attr, resource_type in _RESOURCE_TAGS:
            for element in buckets[tag]:
                raw = element.get(attr)
                if not raw or raw.startswith("/"):
                    continue  # same-document relative assets are not logged
                entries.append((resource_type, raw))
        return entries

    def _load_page(
        self, page_response: Response, *, page_url: URL, page_domain: str,
        depth: int
    ) -> None:
        page_url_text = str(page_url)
        for resource_type, raw in self._resource_entries(page_response):
            try:
                url = parse_url(raw)
            except URLError:
                continue
            response = self.fetch(
                url,
                page_domain=page_domain,
                resource_type=resource_type,
                initiator=page_url_text if depth else None,
                referrer=page_url_text,
            )
            if response is None or not response.ok:
                continue
            if resource_type == "script":
                self._execute_script(url, page_domain=page_domain,
                                     page_url_text=page_url_text)
            elif resource_type == "sub_frame" and depth < 1:
                self._load_page(response, page_url=url,
                                page_domain=page_domain, depth=depth + 1)

    def _apply_document_cookie(
        self, script_url: URL, page_domain: str, directive
    ) -> None:
        """Materialize a ``document.cookie`` write as a first-party cookie.

        Analytics snippets (the ``_ga`` pattern) store their identifier on
        the *page's* domain; an empty value means the script mints a fresh
        per-browser identifier, which we derive deterministically from the
        script host and client.
        """
        name, value = directive
        if not value:
            value = token_for(26, script_url.host, name, self.client.client_ip)
        header = f"{name}={value}; Path=/; Max-Age=63072000"
        stored = self.jar.store_from_response([header], page_domain)
        for cookie in stored:
            self.log.cookies.append(
                CookieRecord(
                    page_domain=page_domain,
                    set_by_host=page_domain,
                    domain=cookie.domain,
                    name=cookie.name,
                    value=cookie.value,
                    session=cookie.session,
                    secure=cookie.secure,
                    over_https=True,
                    seq=self.log.next_seq(),
                )
            )

    def _execute_script(
        self, script_url: URL, *, page_domain: str, page_url_text: str
    ) -> None:
        behavior = self.universe.script_behavior(script_url)
        if behavior is None:
            return
        calls, follow_ups = execute_script(
            str(script_url), behavior, document_host=page_domain
        )
        self.log.js_calls.extend(calls)
        if behavior.sets_document_cookie is not None:
            self._apply_document_cookie(script_url, page_domain,
                                        behavior.sets_document_cookie)
        for follow_up in follow_ups:
            try:
                url = parse_url(follow_up)
            except URLError:
                continue
            self.fetch(
                url,
                page_domain=page_domain,
                resource_type="xhr",
                initiator=str(script_url),
                referrer=page_url_text,
            )
