"""Deterministic construction of the synthetic universe.

The builder turns a :class:`~repro.webgen.config.UniverseConfig` into a
fully populated :class:`~repro.webgen.universe.Universe`: every porn site,
regular site, and third-party service, with ground-truth attributes drawn
from distributions calibrated to the paper's published statistics.

The construction follows the "service -> sites" direction for third-party
placement so that the *distinct-domain* counts of Tables 2, 3, and 7 are
direct generation targets rather than emergent accidents.
"""

from __future__ import annotations

import dataclasses
import marshal
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..blocklists.disconnect import DisconnectEntry, DisconnectList
from ..net.tls import Certificate
from ..net.whois import WhoisRegistry
from ..util import rng_for, stable_hash
from .config import CalibrationTargets, UniverseConfig
from .lazyspecs import (
    LazyCertificates,
    LazyPolicyTexts,
    LazySpecMap,
    pack_porn_spec,
    pack_regular_spec,
    policy_to_row,
    porn_spec_from_packed,
    regular_spec_from_packed,
)
from .names import NameFactory
from .organizations import TailOrgAllocator, operators_from_targets
from .policytext import PolicyGenerator, PolicySpec, TEMPLATE_COUNT
from .rank import RankModel, RankTrajectory, tier_of_rank
from .sites import (
    AgeGateSpec,
    BannerSpec,
    DISCOVERY_AGGREGATOR,
    DISCOVERY_ALEXA_CATEGORY,
    DISCOVERY_KEYWORD,
    PornSiteSpec,
    RegularSiteSpec,
)
from .thirdparty import (
    CATEGORY_ADS,
    CATEGORY_ANALYTICS,
    CATEGORY_CDN,
    CATEGORY_CONTENT,
    CATEGORY_SOCIAL,
    NAMED_SERVICES,
    ThirdPartyService,
)
from .universe import Universe

__all__ = ["build_universe"]

_LANGUAGES = ("en", "es", "fr", "pt", "ru", "it", "de", "ro")
_LANGUAGE_WEIGHTS = (0.70, 0.06, 0.05, 0.04, 0.05, 0.03, 0.04, 0.03)

#: Flaky (crawl-time failure) sites per tier: Table 6 minus Table 3 counts.
_FLAKY_PER_TIER = (2, 16, 218, 261)

_CONTENT_CATEGORIES = ("tube", "tube", "tube", "gallery", "cams", "proxy", "premium")

#: Geo-targeted malicious services: country sets solving §6.2's per-country
#: malicious-domain counts given 13 always-on services (see DESIGN.md).
_GEO_MALWARE_SETS: Tuple[frozenset, ...] = (
    frozenset({"US", "UK", "IN"}),
    frozenset({"US", "UK", "IN"}),
    frozenset({"US", "UK", "ES", "IN"}),
    frozenset({"US", "UK", "ES", "SG"}),
    frozenset({"IN", "RU", "SG"}),
    frozenset({"IN", "RU", "SG"}),
    frozenset({"ES", "IN"}),
)

_NON_ES_COUNTRIES = ("US", "UK", "IN", "SG")


class _Builder:
    def __init__(self, config: UniverseConfig) -> None:
        self.config = config
        self.targets = config.targets
        seed = config.seed
        self.rng_names = rng_for(seed, "names")
        self.rng_sites = rng_for(seed, "sites")
        self.rng_services = rng_for(seed, "services")
        self.rng_rank = rng_for(seed, "rank")
        self.rng_policy = rng_for(seed, "policy")
        self.names = NameFactory(self.rng_names)
        self.rank_model = RankModel(self.rng_rank, days=config.rank_days)
        self.policy_gen = PolicyGenerator(self.rng_policy)
        self.org_allocator = TailOrgAllocator(rng_for(seed, "orgs"))

        # Outputs under construction.
        self.porn_attrs: Dict[str, dict] = {}       # domain -> PornSiteSpec kwargs
        self.regular_attrs: Dict[str, dict] = {}    # domain -> RegularSiteSpec kwargs
        self.services: Dict[str, ThirdPartyService] = {}
        self.site_embeds: Dict[str, List[str]] = {}
        self.site_cdns: Dict[str, str] = {}
        self.dynamic_cdn_sites: Set[str] = set()
        self.rtb_bidders: List[str] = []
        self.policy_texts: Dict[str, str] = {}
        self.full_list_site: Optional[str] = None
        self.sites_by_tier: List[List[str]] = [[], [], [], []]
        self.crawlable_by_tier: List[List[str]] = [[], [], [], []]
        self.cookie_free_sites: Set[str] = set()

    def scaled(self, count: int, *, minimum: int = 1) -> int:
        return self.config.scaled(count, minimum=minimum)

    # ------------------------------------------------------------------
    # Porn corpus
    # ------------------------------------------------------------------

    def build_porn_sites(self) -> None:
        targets = self.targets
        crawlable_counts = [self.scaled(c) for c in targets.tier_site_counts]
        flaky_counts = [self.scaled(c, minimum=0) for c in _FLAKY_PER_TIER]

        operators = operators_from_targets(targets)
        # Flagship sites first: pinned domains and published best ranks.
        flagship_slots: List[Tuple[str, Optional[str], Optional[int]]] = []
        for operator in operators:
            cluster_size = max(1, round(operator.site_count * self.config.scale))
            flagship_slots.append(
                (operator.name, operator.flagship_domain, operator.flagship_best_rank)
            )
            for _ in range(cluster_size - 1):
                flagship_slots.append((operator.name, None, None))

        total_sites = sum(crawlable_counts) + sum(flaky_counts)
        non_keyword_budget = self.scaled(
            targets.from_aggregators + targets.from_alexa_category
        )

        # Build the per-tier site list: operator sites claim slots first.
        slots: List[Tuple[int, bool]] = []  # (tier, flaky)
        for tier in range(4):
            slots.extend((tier, False) for _ in range(crawlable_counts[tier]))
            slots.extend((tier, True) for _ in range(flaky_counts[tier]))
        order = self.rng_sites.permutation(len(slots))
        slots = [slots[i] for i in order]

        owner_by_index: Dict[int, Tuple[str, Optional[str], Optional[int]]] = {}
        taken: Set[int] = set()
        for owner_name, flagship_domain, flagship_rank in flagship_slots:
            if flagship_rank is not None:
                wanted_tier = tier_of_rank(flagship_rank)
            else:
                wanted_tier = int(
                    self.rng_sites.choice(4, p=(0.03, 0.17, 0.50, 0.30))
                )
            index = self._claim_slot(slots, taken, wanted_tier, flaky=False)
            if index is None:
                continue
            owner_by_index[index] = (owner_name, flagship_domain, flagship_rank)
            taken.add(index)

        non_keyword_left = non_keyword_budget
        for index, (tier, flaky) in enumerate(slots):
            owner_info = owner_by_index.get(index)
            owner = owner_info[0] if owner_info else None
            pinned_domain = owner_info[1] if owner_info else None
            pinned_rank = owner_info[2] if owner_info else None

            if pinned_domain is not None:
                domain = self.names.reserve(pinned_domain)
                has_keyword = any(k in domain for k in
                                  ("porn", "tube", "sex", "gay", "lesbian",
                                   "mature", "xxx"))
            else:
                # Reserve the non-keyword budget for aggregator discovery.
                use_keyword = non_keyword_left <= 0 or self.rng_sites.random() > (
                    non_keyword_left / max(total_sites - index, 1)
                )
                domain = self.names.porn_domain(with_keyword=use_keyword)
                has_keyword = use_keyword
            if not has_keyword:
                non_keyword_left -= 1

            trajectory = self._porn_trajectory(tier, pinned_rank)
            language = _LANGUAGES[
                int(self.rng_sites.choice(len(_LANGUAGES), p=_LANGUAGE_WEIGHTS))
            ]
            https = self.rng_sites.random() < targets.tier_https_site_fraction[tier]
            self.porn_attrs[domain] = {
                "domain": domain,
                "trajectory": trajectory,
                "language": language,
                "content_category": _CONTENT_CATEGORIES[
                    int(self.rng_sites.integers(0, len(_CONTENT_CATEGORIES)))
                ],
                "owner": owner,
                "cert_org": None,
                "discovered_by": DISCOVERY_KEYWORD if has_keyword else DISCOVERY_AGGREGATOR,
                "has_adult_keyword": has_keyword,
                "responsive": True,
                "crawl_flaky": flaky,
                "https": https,
                "embedded_services": (),
                "first_party_cookies": 0,
                "first_party_id_cookie": True,
                "passes_id_to": None,
                "first_party_canvas_fp": False,
                "policy": None,
                "banner": None,
                "age_gate": None,
                "rta_label": self.rng_sites.random() < 0.05,
                "subscription": None,
                "scanner_hits": 0,
                "blocked_countries": frozenset(),
            }
            if owner is not None:
                operator = next(op for op in operators if op.name == owner)
                if https:
                    self.porn_attrs[domain]["cert_org"] = operator.legal_name
            self.sites_by_tier[tier].append(domain)
            if not flaky:
                self.crawlable_by_tier[tier].append(domain)
            self.site_embeds[domain] = []

        self._assign_cookie_profiles()
        self._assign_compliance()
        self._assign_unresponsive_candidates()

    def _claim_slot(
        self, slots: List[Tuple[int, bool]], taken: Set[int], tier: int, *, flaky: bool
    ) -> Optional[int]:
        for index, (slot_tier, slot_flaky) in enumerate(slots):
            if index in taken:
                continue
            if slot_tier == tier and slot_flaky == flaky:
                return index
        # Fall back to any free crawlable slot.
        for index, (_, slot_flaky) in enumerate(slots):
            if index not in taken and not slot_flaky:
                return index
        return None

    def _porn_trajectory(self, tier: int, pinned_rank: Optional[int]) -> RankTrajectory:
        if pinned_rank is not None and tier_of_rank(pinned_rank) == tier:
            trajectory = self.rank_model.sample(tier, best_rank=pinned_rank)
        else:
            trajectory = self.rank_model.sample(tier)
        # Keyword discovery requires at least one day in the top-1M; resample
        # tier-3 outliers that never made the list.
        attempts = 0
        while not trajectory.ever_present and attempts < 8:
            trajectory = self.rank_model.sample(tier)
            attempts += 1
        if not trajectory.ever_present:
            trajectory = self.rank_model.sample(tier, best_rank=900_000)
        return trajectory

    def _assign_cookie_profiles(self) -> None:
        """Pick which sites stay free of third-party cookies (28%) and of
        any cookies at all (8%), then sample first-party cookie counts."""
        domains = list(self.porn_attrs)
        self.rng_sites.shuffle(domains)
        n = len(domains)
        free_count = round(n * (1.0 - self.targets.sites_with_third_party_cookies_fraction))
        no_cookie_count = round(n * (1.0 - self.targets.sites_with_cookies_fraction))
        # Weight the cookie-free set toward the unpopular tiers.
        ranked = sorted(domains, key=lambda d: (
            -self.porn_attrs[d]["trajectory"].tier, stable_hash(d, "free")
        ))
        self.cookie_free_sites = set(ranked[:free_count])
        for domain in ranked[:no_cookie_count]:
            self.porn_attrs[domain]["first_party_cookies"] = 0
            self.porn_attrs[domain]["first_party_id_cookie"] = False
        for domain in domains:
            if domain in self.cookie_free_sites and \
                    not self.porn_attrs[domain]["first_party_id_cookie"]:
                continue
            count = 1 + int(self.rng_sites.poisson(2.4))
            self.porn_attrs[domain]["first_party_cookies"] = min(count, 6)

    def _assign_compliance(self) -> None:
        targets = self.targets
        domains = list(self.porn_attrs)

        # --- Cookie banners (Table 8): decompose EU/US fractions into
        # globally shown banners plus geo-fenced extras.
        eu = targets.banner_fractions_eu
        us = targets.banner_fractions_us
        plan: List[Tuple[str, bool, bool, float]] = []
        for banner_type in ("no_option", "confirmation", "binary", "other"):
            shared = min(eu[banner_type], us[banner_type])
            plan.append((banner_type, False, False, shared))
            if eu[banner_type] > shared:
                plan.append((banner_type, True, False, eu[banner_type] - shared))
            if us[banner_type] > shared:
                plan.append((banner_type, False, True, us[banner_type] - shared))
        shuffled = list(domains)
        self.rng_sites.shuffle(shuffled)
        cursor = 0
        for banner_type, eu_only, non_eu_only, fraction in plan:
            count = round(fraction * len(domains))
            for domain in shuffled[cursor:cursor + count]:
                concrete = banner_type
                if banner_type == "other":
                    concrete = "slider" if self.rng_sites.random() < 0.5 else "checkbox"
                self.porn_attrs[domain]["banner"] = BannerSpec(
                    concrete, eu_only=eu_only, non_eu_only=non_eu_only
                )
            cursor += count

        # --- Privacy policies (§7.3).
        operator_template: Dict[str, int] = {}
        policy_count = 0
        policy_budget = round(targets.privacy_policy_fraction * len(domains))
        operator_sites = [d for d in domains if self.porn_attrs[d]["owner"]]
        independent_sites = [d for d in domains if not self.porn_attrs[d]["owner"]]
        for domain in operator_sites:
            owner = self.porn_attrs[domain]["owner"]
            if owner not in operator_template:
                operator_template[owner] = stable_hash(owner, "tpl") % TEMPLATE_COUNT
            if self.rng_sites.random() < 0.85:
                spec = self.policy_gen.sample_spec(
                    operator_template=operator_template[owner],
                    heavy_tracker=self.porn_attrs[domain]["trajectory"].tier <= 1,
                )
                self.porn_attrs[domain]["policy"] = spec
                policy_count += 1
        remaining = max(0, policy_budget - policy_count)
        self.rng_sites.shuffle(independent_sites)
        for domain in independent_sites[:remaining]:
            spec = self.policy_gen.sample_spec(
                heavy_tracker=self.porn_attrs[domain]["trajectory"].tier <= 1
            )
            self.porn_attrs[domain]["policy"] = spec

        # Broken policy links: HTTP-error pages the naive crawler miscounts.
        with_policy = [d for d in domains if self.porn_attrs[d]["policy"]]
        self.rng_sites.shuffle(with_policy)
        for domain in with_policy[: self.scaled(
                targets.policy_http_error_false_positives, minimum=0)]:
            spec = self.porn_attrs[domain]["policy"]
            self.porn_attrs[domain]["policy"] = dataclasses.replace(
                spec, link_broken=True
            )

        # One site discloses its complete third-party list (§7.3).
        if "pornhub.com" in self.porn_attrs and \
                self.porn_attrs["pornhub.com"]["policy"] is not None:
            self.full_list_site = "pornhub.com"
        elif with_policy:
            self.full_list_site = with_policy[-1]
        if self.full_list_site is not None:
            spec = self.porn_attrs[self.full_list_site]["policy"]
            if spec is None:
                spec = self.policy_gen.sample_spec(heavy_tracker=True)
            self.porn_attrs[self.full_list_site]["policy"] = dataclasses.replace(
                spec, full_third_party_list=True, link_broken=False,
                discloses_cookies=True, discloses_data_types=True,
                discloses_third_parties=True,
            )

        # --- Age gates (§7.2): general population, then top-50 overrides.
        for domain in domains:
            if self.rng_sites.random() < 0.18:
                self.porn_attrs[domain]["age_gate"] = AgeGateSpec(mode="button")
            else:
                self.porn_attrs[domain]["age_gate"] = None
        crawlable = [d for tier in self.crawlable_by_tier for d in tier]
        ranked = sorted(
            crawlable,
            key=lambda d: self.porn_attrs[d]["trajectory"].observed_best or 10**9,
        )
        top_n = ranked[: min(50, len(ranked))]
        gates_everywhere = max(1, round(0.20 * len(top_n)))
        ru_suppressed = round(0.12 * len(top_n))
        ru_only = round(0.06 * len(top_n))
        for domain in top_n:
            self.porn_attrs[domain]["age_gate"] = None
        for index, domain in enumerate(top_n[:gates_everywhere]):
            suppressed = frozenset({"RU"}) if index < ru_suppressed else frozenset()
            self.porn_attrs[domain]["age_gate"] = AgeGateSpec(
                mode="button", suppressed_countries=suppressed
            )
        for domain in top_n[gates_everywhere:gates_everywhere + ru_only]:
            self.porn_attrs[domain]["age_gate"] = AgeGateSpec(
                mode="button", countries=frozenset({"RU"})
            )
        social_site = "pornhub.com" if "pornhub.com" in self.porn_attrs else (
            top_n[0] if top_n else None
        )
        if social_site is not None:
            self.porn_attrs[social_site]["age_gate"] = AgeGateSpec(
                mode="social_login", countries=frozenset({"RU"})
            )

        # --- Business models (§4.1).
        for domain in domains:
            if self.rng_sites.random() < targets.subscription_fraction:
                paid = self.rng_sites.random() < targets.paid_subscription_fraction
                self.porn_attrs[domain]["subscription"] = "paid" if paid else "free"

        # --- Malicious porn sites and country blocking.
        shuffled = list(domains)
        self.rng_sites.shuffle(shuffled)
        for domain in shuffled[: self.scaled(targets.malicious_porn_sites)]:
            self.porn_attrs[domain]["scanner_hits"] = 4 + int(
                self.rng_sites.integers(0, 20)
            )
        blocked_ru = shuffled[-self.scaled(targets.blocked_sites_russia):]
        for domain in blocked_ru:
            self.porn_attrs[domain]["blocked_countries"] = frozenset({"RU"})
        start = len(shuffled) - self.scaled(targets.blocked_sites_russia)
        blocked_in = shuffled[start - self.scaled(targets.blocked_sites_india):start]
        for domain in blocked_in:
            current = self.porn_attrs[domain]["blocked_countries"]
            self.porn_attrs[domain]["blocked_countries"] = current | {"IN"}

        # --- First-party canvas fingerprinting (the 26% of §5.1.3 scripts).
        candidates = [d for d in crawlable
                      if self.porn_attrs[d]["trajectory"].tier >= 2]
        self.rng_sites.shuffle(candidates)
        for domain in candidates[: self.scaled(64)]:
            self.porn_attrs[domain]["first_party_canvas_fp"] = True

        # --- Own-CDN domains (the §4.2 first-party FQDNs) and dynamic hosts.
        cdn_budget = self.scaled(self.targets.porn_first_party_fqdns)
        eligible = [d for d in domains if len(d.split(".")[0]) >= 7]
        self.rng_sites.shuffle(eligible)
        for domain in eligible[:cdn_budget]:
            stem, _, tld = domain.rpartition(".")
            cdn_domain = self.names.reserve(f"{stem}-cdn.{tld}")
            self.site_cdns[cdn_domain] = domain
        for domain in eligible[cdn_budget:cdn_budget + self.scaled(35)]:
            self.dynamic_cdn_sites.add(domain)

    def _assign_unresponsive_candidates(self) -> None:
        """Porn candidates that were dead at sanitization time (§3)."""
        for _ in range(self.scaled(self.targets.unresponsive_candidates)):
            domain = self.names.porn_domain(with_keyword=True)
            trajectory = self._porn_trajectory(3, None)
            self.porn_attrs[domain] = {
                "domain": domain,
                "trajectory": trajectory,
                "language": "en",
                "content_category": "tube",
                "owner": None,
                "cert_org": None,
                "discovered_by": DISCOVERY_KEYWORD,
                "has_adult_keyword": True,
                "responsive": False,
                "crawl_flaky": False,
                "https": False,
                "embedded_services": (),
                "first_party_cookies": 0,
                "first_party_id_cookie": False,
                "passes_id_to": None,
                "first_party_canvas_fp": False,
                "policy": None,
                "banner": None,
                "age_gate": None,
                "rta_label": False,
                "subscription": None,
                "scanner_hits": 0,
                "blocked_countries": frozenset(),
            }
            self.site_embeds[domain] = []

    # ------------------------------------------------------------------
    # Third-party services
    # ------------------------------------------------------------------

    def build_services(self) -> None:
        self._place_named_services()
        self._build_porn_tail()
        self._build_country_unique_services()
        self._build_rtb_bidders()
        self._apply_geo_exclusions()
        self._ensure_minimum_embeds()
        self._assign_first_party_sync()

    def _eligible_sites(self, tier: int, *, sets_cookies: bool,
                        https_service: bool = True,
                        crawlable_only: bool = False) -> List[str]:
        pool = self.crawlable_by_tier[tier] if crawlable_only \
            else self.sites_by_tier[tier]
        if sets_cookies:
            pool = [d for d in pool if d not in self.cookie_free_sites]
        if not https_service:
            # HTTPS publishers avoid plain-HTTP embeds (mixed content), so
            # non-TLS services concentrate on non-TLS sites — that is what
            # keeps the paper's fully-HTTPS population clean (§5.2).
            pool = [d for d in pool if not self.porn_attrs[d]["https"]]
        return list(pool)

    def _place_service_on_sites(
        self, service: ThirdPartyService, counts_per_tier: Sequence[int],
        *, crawlable_only: bool = False,
    ) -> int:
        """Attach the service to randomly chosen sites; returns placements."""
        placed = 0
        for tier, count in enumerate(counts_per_tier):
            if count <= 0:
                continue
            pool = self._eligible_sites(tier, sets_cookies=service.sets_cookies,
                                        https_service=service.https,
                                        crawlable_only=crawlable_only)
            if not pool:
                continue
            count = min(count, len(pool))
            chosen = self.rng_services.choice(len(pool), size=count, replace=False)
            for index in chosen:
                domain = pool[int(index)]
                self.site_embeds[domain].append(service.domain)
                placed += 1
        return placed

    def _place_named_services(self) -> None:
        sanitized_total = sum(len(t) for t in self.sites_by_tier)
        tier_sizes = [len(t) for t in self.sites_by_tier]
        for service in NAMED_SERVICES:
            self.names.reserve(service.domain)
            self.services[service.domain] = service
            if service.prevalence_porn <= 0:
                continue
            total = max(1, round(service.prevalence_porn * sanitized_total))
            weights = [service.tier_weights[t] * tier_sizes[t] for t in range(4)]
            weight_sum = sum(weights) or 1.0
            counts = [round(total * w / weight_sum) for w in weights]
            self._place_service_on_sites(service, counts)

    def _tail_service(
        self,
        domain: str,
        *,
        home_tier: int,
        is_ats: bool,
        listed: bool,
        countries: Optional[frozenset] = None,
        category: Optional[str] = None,
    ) -> dict:
        """Sampled attribute dict for one long-tail service."""
        rng = self.rng_services
        if category is None:
            category = [CATEGORY_ADS, CATEGORY_ADS, CATEGORY_ANALYTICS,
                        CATEGORY_CDN, CATEGORY_CONTENT, CATEGORY_SOCIAL][
                int(rng.integers(0, 6))]
        if is_ats and category in (CATEGORY_CDN, CATEGORY_CONTENT, CATEGORY_SOCIAL):
            category = CATEGORY_ADS
        https = rng.random() < self.targets.tier_https_service_fraction[home_tier]
        attributable = rng.random() < self.targets.attributable_fqdn_fraction
        organization = self.org_allocator.next_org() if attributable else None
        sets_cookies = rng.random() < 0.61 and category != CATEGORY_CDN
        names_pool = ("uid", "id", "sid", "visitor", "tuid", "cid")
        n_names = 1 + int(rng.integers(0, 3))
        cookie_names = tuple(
            names_pool[int(rng.integers(0, len(names_pool)))] for _ in range(n_names)
        )
        return {
            "domain": domain,
            "organization": organization,
            "category": category,
            "is_ats": is_ats,
            "https": https,
            "cert_org": organization if attributable else None,
            "in_easylist": listed,
            "in_easyprivacy": False,
            "in_disconnect": False,
            "sets_cookies": sets_cookies,
            "cookie_rate": float(np.exp(rng.normal(0.45, 0.35))),
            "cookie_names": tuple(dict.fromkeys(cookie_names)),
            "session_cookie_fraction": float(rng.uniform(0.1, 0.5)),
            "huge_cookie_fraction": 0.035 if rng.random() < 0.5 else 0.0,
            "embeds_client_ip_fraction": 0.2 if rng.random() < 0.01 else 0.0,
            "countries": countries,
        }

    def _build_porn_tail(self) -> None:
        """Tail services hitting the Table 2/3 distinct-domain targets."""
        targets = self.targets
        rng = self.rng_services
        tier_sizes = [len(t) for t in self.sites_by_tier]

        # Which named services landed in which tiers.
        named_tiers: Dict[str, Set[int]] = {}
        for tier, sites in enumerate(self.sites_by_tier):
            for site in sites:
                for svc in self.site_embeds[site]:
                    named_tiers.setdefault(svc, set()).add(tier)
        named_per_tier = [
            sum(1 for tiers in named_tiers.values() if t in tiers) for t in range(4)
        ]
        named_all_tiers = sum(1 for tierss in named_tiers.values() if len(tierss) == 4)
        named_unique = [
            sum(1 for tiers in named_tiers.values() if tiers == {t}) for t in range(4)
        ]

        total_target = self.scaled(targets.porn_third_party_fqdns)
        all_tier_target = max(
            0, round(targets.all_tier_fraction * total_target) - named_all_tiers
        )
        totals = [self.scaled(c) for c in targets.tier_third_party_totals]
        uniques = [self.scaled(c) for c in targets.tier_third_party_unique]

        # Listed-ATS budget for the tail.
        named_listed = sum(
            1 for s in NAMED_SERVICES
            if (s.in_easylist or s.in_easyprivacy) and s.prevalence_porn > 0
        )
        ats_budget = max(0, self.scaled(targets.porn_ats_fqdns) - named_listed)
        tail_planned = max(1, total_target - len(named_tiers))
        listed_p = min(1.0, ats_budget / tail_planned)

        created: List[str] = []
        all_tier_tail: List[str] = []
        shared_tail: List[str] = []

        def make_tail(home_tier: int) -> ThirdPartyService:
            domain = (self.names.obscure_domain() if rng.random() < 0.25
                      else self.names.adtech_domain())
            listed = rng.random() < listed_p
            attrs = self._tail_service(domain, home_tier=home_tier,
                                       is_ats=listed or rng.random() < 0.3,
                                       listed=listed)
            service = ThirdPartyService(**attrs)
            self.services[domain] = service
            created.append(domain)
            return service

        # All-tier pool.
        for _ in range(all_tier_target):
            service = make_tail(0)
            all_tier_tail.append(service.domain)
            share = float(np.exp(rng.uniform(np.log(0.001), np.log(0.02))))
            counts = [max(1, round(tier_sizes[t] * share)) for t in range(4)]
            self._place_service_on_sites(service, counts)

        # Tier-unique pools.
        for tier in range(4):
            need = max(0, uniques[tier] - named_unique[tier])
            for _ in range(need):
                service = make_tail(tier)
                count = 1 + min(int(rng.geometric(0.65)) - 1, 4)
                counts = [0, 0, 0, 0]
                counts[tier] = count
                self._place_service_on_sites(service, counts, crawlable_only=True)

        # Shared pool: consume the per-tier remainders pairwise/triple-wise.
        remainders = [
            max(0, totals[t] - named_per_tier[t] - all_tier_target
                - max(0, uniques[t] - named_unique[t]))
            for t in range(4)
        ]
        while sum(1 for r in remainders if r > 0) >= 2:
            open_tiers = [t for t in range(4) if remainders[t] > 0]
            k = 2 if len(open_tiers) == 2 or rng.random() < 0.6 else 3
            chosen = rng.choice(len(open_tiers), size=min(k, len(open_tiers)),
                                replace=False)
            tiers = [open_tiers[int(i)] for i in chosen]
            service = make_tail(min(tiers))
            shared_tail.append(service.domain)
            counts = [0, 0, 0, 0]
            for t in tiers:
                counts[t] = 1 + min(int(rng.geometric(0.7)) - 1, 3)
                remainders[t] -= 1
            self._place_service_on_sites(service, counts, crawlable_only=True)

        self._upgrade_tail_trackers(created)
        self._assign_tail_sync(created, all_tier_tail, shared_tail)
        self._assign_disconnect_coverage(created)

    def _upgrade_tail_trackers(self, created: List[str]) -> None:
        """Give a sample of tail services fingerprinting / WebRTC / malware."""
        from .thirdparty import _EVASIVE_CANVAS, _MEASURE_TEXT_PROBE  # noqa: E501 — behavior templates

        rng = self.rng_services
        pool = [d for d in created if self.services[d].category
                in (CATEGORY_ADS, CATEGORY_ANALYTICS)]
        rng.shuffle(pool)
        cursor = 0

        canvas_count = self.scaled(39)
        for domain in pool[cursor:cursor + canvas_count]:
            self.services[domain] = dataclasses.replace(
                self.services[domain],
                canvas_fp=_EVASIVE_CANVAS,
                font_probe=_MEASURE_TEXT_PROBE,
                fp_script_variants=1 + int(rng.integers(0, 2)),
                in_easylist=False,
            )
        cursor += canvas_count

        webrtc_count = self.scaled(10)
        for domain in pool[cursor:cursor + webrtc_count]:
            self.services[domain] = dataclasses.replace(
                self.services[domain],
                webrtc=True,
                webrtc_script_variants=1 + int(rng.integers(0, 3)),
            )
        cursor += webrtc_count

        malware_count = self.scaled(9)
        for domain in pool[cursor:cursor + malware_count]:
            self.services[domain] = dataclasses.replace(
                self.services[domain], scanner_hits=4 + int(rng.integers(0, 30))
            )
        cursor += malware_count

        for country_set in _GEO_MALWARE_SETS[: self.scaled(len(_GEO_MALWARE_SETS))]:
            if cursor >= len(pool):
                break
            domain = pool[cursor]
            cursor += 1
            self.services[domain] = dataclasses.replace(
                self.services[domain],
                scanner_hits=4 + int(rng.integers(0, 10)),
                malicious_countries=country_set,
            )

    def _assign_tail_sync(
        self, created: List[str], all_tier_tail: List[str],
        shared_tail: List[str],
    ) -> None:
        """Cookie-sync graph (§5.1.2 / Fig. 4).

        Origins must be services present on *many* sites to generate the
        paper's 4,675 distinct (origin, destination) pairs — each origin
        rotates through its partner pool site by site — so syncing is
        concentrated on the all-tier core and the multi-tier shared pool,
        plus the named ad networks (whose pools are widened here).
        """
        rng = self.rng_services
        cookie_setters = [d for d in created if self.services[d].sets_cookies]
        destinations = [d for d in cookie_setters if self.services[d].is_ats]
        named_receivers = [s.domain for s in NAMED_SERVICES
                           if s.accepts_first_party_sync]
        destination_pool = destinations[: self.scaled(650)] + named_receivers
        if not destination_pool:
            return

        def sample_partners(domain: str, pool_size: int) -> Tuple[str, ...]:
            chosen = rng.choice(len(destination_pool),
                                size=min(pool_size, len(destination_pool)),
                                replace=False)
            return tuple(
                destination_pool[int(i)] for i in chosen
                if destination_pool[int(i)] != domain
            )

        # Named ad networks: widen the hand-written pools.
        for service in NAMED_SERVICES:
            if not service.sync_partners:
                continue
            extra = sample_partners(service.domain, 9)
            merged = tuple(dict.fromkeys(service.sync_partners + extra))
            self.services[service.domain] = dataclasses.replace(
                self.services[service.domain], sync_partners=merged
            )

        origins: List[str] = []
        for domain in all_tier_tail:
            if self.services[domain].sets_cookies and rng.random() < 0.9:
                origins.append(domain)
        for domain in shared_tail:
            if self.services[domain].sets_cookies and rng.random() < 0.35:
                origins.append(domain)
        for domain in origins:
            pool_size = 14 + int(rng.integers(0, 10))
            self.services[domain] = dataclasses.replace(
                self.services[domain],
                sync_partners=sample_partners(domain, pool_size),
                sync_probability=float(rng.uniform(0.7, 1.0)),
            )

    def _assign_disconnect_coverage(self, created: List[str]) -> None:
        """Disconnect knows only ~142 organizations (§4.2(3))."""
        rng = self.rng_services
        named_disconnect_orgs = {
            s.organization for s in NAMED_SERVICES if s.in_disconnect and s.organization
        }
        budget = max(0, self.scaled(self.targets.disconnect_only_organizations)
                     - len(named_disconnect_orgs))
        orgs = sorted({
            self.services[d].organization for d in created
            if self.services[d].organization
        })
        rng.shuffle(orgs)
        covered = set(orgs[:budget])
        for domain in created:
            service = self.services[domain]
            if service.organization in covered:
                self.services[domain] = dataclasses.replace(service,
                                                            in_disconnect=True)

    def _build_country_unique_services(self) -> None:
        """Regional services seen from exactly one vantage point (Table 7)."""
        rng = self.rng_services
        crawlable = [d for tier in self.crawlable_by_tier for d in tier]
        per_country_unique = {c: u for c, _, u, _, _ in self.targets.per_country_fqdns}
        per_country_ats = {c: a for c, _, _, _, a in self.targets.per_country_fqdns}
        for country, unique_total in per_country_unique.items():
            service_count = self.scaled(round(unique_total * 0.9))
            ats_count = self.scaled(per_country_ats[country])
            for index in range(service_count):
                tld = "ru" if country == "RU" else None
                domain = self.names.adtech_domain(tld=tld) \
                    if rng.random() < 0.7 else self.names.obscure_domain()
                listed = index < ats_count
                attrs = self._tail_service(
                    domain, home_tier=2, is_ats=listed or rng.random() < 0.4,
                    listed=listed, countries=frozenset({country}),
                )
                service = ThirdPartyService(**attrs)
                self.services[domain] = service
                pool = crawlable if service.https else [
                    d for d in crawlable if not self.porn_attrs[d]["https"]
                ]
                if not pool:
                    continue
                count = 1 + int(rng.integers(0, 4))
                chosen = rng.choice(len(pool), size=min(count, len(pool)),
                                    replace=False)
                for i in chosen:
                    self.site_embeds[pool[int(i)]].append(domain)

    def _build_rtb_bidders(self) -> None:
        """Dynamically loaded bidders (reached only through ad iframes)."""
        rng = self.rng_services
        for _ in range(self.scaled(120)):
            domain = self.names.adtech_domain()
            attrs = self._tail_service(domain, home_tier=2, is_ats=True,
                                       listed=rng.random() < 0.3)
            self.services[domain] = ThirdPartyService(**attrs)
            self.rtb_bidders.append(domain)

    def _apply_geo_exclusions(self) -> None:
        """Russia misses ~700 services; others miss a few at random (§6)."""
        rng = self.rng_services
        global_tails = [
            d for d, s in self.services.items()
            if s.countries is None and s.prevalence_porn == 0.0
            and d not in self.rtb_bidders
        ]
        rng.shuffle(global_tails)
        ru_excluded = self.scaled(700)
        for domain in global_tails[:ru_excluded]:
            self.services[domain] = dataclasses.replace(
                self.services[domain], excluded_countries=frozenset({"RU"})
            )
        for domain in global_tails[ru_excluded:]:
            if rng.random() < 0.05:
                country = _NON_ES_COUNTRIES[int(rng.integers(0, 4))]
                self.services[domain] = dataclasses.replace(
                    self.services[domain],
                    excluded_countries=frozenset({country}),
                )

    def _ensure_minimum_embeds(self) -> None:
        """Every crawlable porn site references at least two third parties."""
        fillers = [
            s.domain for s in NAMED_SERVICES
            if s.prevalence_porn > 0 and not s.sets_cookies
            and not s.miner and not s.webrtc and not s.fingerprints
        ]
        if not fillers:
            return
        for tier in self.crawlable_by_tier:
            for domain in tier:
                embeds = self.site_embeds[domain]
                index = 0
                while len(embeds) < 2 and index < len(fillers):
                    if fillers[index] not in embeds:
                        embeds.append(fillers[index])
                    index += 1

    def _assign_first_party_sync(self) -> None:
        """Sites that forward their own visitor ID to an ad network."""
        rng = self.rng_sites
        for tier in self.crawlable_by_tier:
            for domain in tier:
                if domain in self.cookie_free_sites:
                    continue
                accepting = [
                    svc for svc in self.site_embeds[domain]
                    if self.services[svc].accepts_first_party_sync
                ]
                if accepting and rng.random() < 0.33:
                    choice = accepting[int(rng.integers(0, len(accepting)))]
                    self.porn_attrs[domain]["passes_id_to"] = choice

    # ------------------------------------------------------------------
    # Regular corpus
    # ------------------------------------------------------------------

    def build_regular_sites(self) -> None:
        targets = self.targets
        rng = self.rng_sites
        total = self.scaled(targets.regular_corpus)
        crawlable = self.scaled(targets.regular_crawlable)
        categories = ("news", "tech", "shopping", "sports", "finance", "travel",
                      "games", "health", "education", "entertainment")

        regular_domains: List[str] = []
        for index in range(total):
            domain = self.names.regular_domain()
            tier = 0 if rng.random() < 0.1 else 1
            trajectory = self.rank_model.sample(tier)
            self.regular_attrs[domain] = {
                "domain": domain,
                "trajectory": trajectory,
                "category": categories[int(rng.integers(0, len(categories)))],
                "https": rng.random() < (0.95 if tier == 0 else 0.85),
                "cert_org": None,
                "embedded_services": (),
                "first_party_cookies": 2,
                "responsive": index < crawlable,
                "has_adult_keyword": False,
                "in_reference_corpus": True,
            }
            regular_domains.append(domain)

        # Own CDNs (first-party FQDNs of Table 2's regular column).
        eligible = [d for d in regular_domains if len(d.split(".")[0]) >= 7]
        rng.shuffle(eligible)
        for domain in eligible[: self.scaled(targets.regular_first_party_fqdns)]:
            stem, _, tld = domain.rpartition(".")
            cdn_domain = self.names.reserve(f"{stem}-cdn.{tld}")
            self.site_cdns[cdn_domain] = domain

        self._place_regular_named(regular_domains)
        self._build_regular_tail(regular_domains)
        self._build_false_positive_sites()

    def _place_regular_named(self, regular_domains: List[str]) -> None:
        rng = self.rng_services
        crawlable = [d for d in regular_domains
                     if self.regular_attrs[d]["responsive"]]
        for service in NAMED_SERVICES:
            if service.prevalence_regular <= 0:
                continue
            count = max(1, round(service.prevalence_regular * len(crawlable)))
            count = min(count, len(crawlable))
            chosen = rng.choice(len(crawlable), size=count, replace=False)
            for index in chosen:
                domain = crawlable[int(index)]
                embeds = self.regular_attrs[domain].setdefault("_embeds", [])
                embeds.append(service.domain)

    def _build_regular_tail(self, regular_domains: List[str]) -> None:
        rng = self.rng_services
        targets = self.targets
        crawlable = [d for d in regular_domains
                     if self.regular_attrs[d]["responsive"]]

        # Crossover services: porn tails that also appear on regular sites.
        porn_tails = [
            d for d, s in self.services.items()
            if s.prevalence_porn == 0.0 and s.countries is None
            and d not in self.rtb_bidders
        ]
        named_cross = sum(
            1 for s in NAMED_SERVICES
            if s.prevalence_porn > 0 and s.prevalence_regular > 0
        )
        cross_budget = max(0, self.scaled(targets.fqdn_intersection) - named_cross)
        cross_ats_budget = max(
            0,
            self.scaled(targets.ats_intersection)
            - sum(1 for s in NAMED_SERVICES
                  if s.prevalence_porn > 0 and s.prevalence_regular > 0
                  and (s.in_easylist or s.in_easyprivacy)),
        )
        listed_tails = [d for d in porn_tails if self.services[d].in_easylist]
        unlisted_tails = [d for d in porn_tails if not self.services[d].in_easylist]
        rng.shuffle(listed_tails)
        rng.shuffle(unlisted_tails)
        crossover = listed_tails[:cross_ats_budget] + \
            unlisted_tails[: max(0, cross_budget - cross_ats_budget)]
        for domain in crossover:
            count = 1 + int(rng.integers(0, 5))
            chosen = rng.choice(len(crawlable), size=min(count, len(crawlable)),
                                replace=False)
            for index in chosen:
                site = crawlable[int(index)]
                self.regular_attrs[site].setdefault("_embeds", []).append(domain)

        # Regular-only tail: the bulk of the 21k distinct domains.
        regular_only = max(
            0,
            self.scaled(targets.regular_third_party_fqdns)
            - len(crossover) - named_cross
            - sum(1 for s in NAMED_SERVICES if s.prevalence_regular > 0
                  and s.prevalence_porn <= 0),
        )
        ats_quota = max(0, self.scaled(targets.regular_ats_fqdns)
                        - self.scaled(targets.ats_intersection))
        for index in range(regular_only):
            domain = self.names.adtech_domain() if rng.random() < 0.3 \
                else self.names.cdn_domain()
            listed = index < ats_quota
            attrs = self._tail_service(domain, home_tier=0,
                                       is_ats=listed, listed=listed)
            if not listed and attrs["category"] == CATEGORY_ADS:
                attrs["category"] = CATEGORY_CDN
                attrs["is_ats"] = False
                attrs["sets_cookies"] = False
            self.services[domain] = ThirdPartyService(**attrs)
            count = 1 + min(int(rng.geometric(0.55)) - 1, 6)
            chosen = rng.choice(len(crawlable), size=min(count, len(crawlable)),
                                replace=False)
            for i in chosen:
                site = crawlable[int(i)]
                self.regular_attrs[site].setdefault("_embeds", []).append(domain)

    def _build_false_positive_sites(self) -> None:
        """Non-porn sites whose domains contain adult keywords (§3)."""
        rng = self.rng_sites
        for _ in range(self.scaled(self.targets.non_porn_keyword_matches)):
            domain = self.names.false_positive_domain()
            tier = int(rng.choice(4, p=(0.01, 0.09, 0.40, 0.50)))
            trajectory = self._porn_trajectory(tier, None)
            self.regular_attrs[domain] = {
                "domain": domain,
                "trajectory": trajectory,
                "category": "news",
                "https": rng.random() < 0.6,
                "cert_org": None,
                "embedded_services": (),
                "first_party_cookies": 2,
                "responsive": True,
                "has_adult_keyword": True,
                "in_reference_corpus": False,
            }

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self, *, lazy: bool = False,
                 fetch_cache_size: Optional[int] = None) -> Universe:
        """Assemble the universe.

        ``lazy=True`` stores specs as packed rows decoded on access
        (see :mod:`repro.webgen.lazyspecs`); attribute sampling is
        identical — the two modes differ only in what stays resident.
        """
        aggregators, category_sites = self._plan_discovery_sources()

        if lazy:
            porn_packed: Dict[str, bytes] = {}
            for domain, attrs in self.porn_attrs.items():
                attrs["embedded_services"] = tuple(
                    dict.fromkeys(self.site_embeds.get(domain, ()))
                )
                porn_packed[domain] = pack_porn_spec(PornSiteSpec(**attrs))
            regular_packed: Dict[str, bytes] = {}
            for domain, attrs in self.regular_attrs.items():
                embeds = attrs.pop("_embeds", [])
                attrs["embedded_services"] = tuple(dict.fromkeys(embeds))
                regular_packed[domain] = pack_regular_spec(
                    RegularSiteSpec(**attrs)
                )
            porn_sites: Mapping = LazySpecMap(
                porn_packed, porn_spec_from_packed
            )
            regular_sites: Mapping = LazySpecMap(
                regular_packed, regular_spec_from_packed
            )
            certificates: Mapping = LazyCertificates(
                self._build_service_certificates(),
                porn_sites, regular_sites, self.site_cdns,
            )
            policy_texts: Mapping = self._plan_policy_texts()
        else:
            eager_porn: Dict[str, PornSiteSpec] = {}
            for domain, attrs in self.porn_attrs.items():
                attrs["embedded_services"] = tuple(
                    dict.fromkeys(self.site_embeds.get(domain, ()))
                )
                eager_porn[domain] = PornSiteSpec(**attrs)
            eager_regular: Dict[str, RegularSiteSpec] = {}
            for domain, attrs in self.regular_attrs.items():
                embeds = attrs.pop("_embeds", [])
                attrs["embedded_services"] = tuple(dict.fromkeys(embeds))
                eager_regular[domain] = RegularSiteSpec(**attrs)
            porn_sites = eager_porn
            regular_sites = eager_regular
            certificates = self._build_certificates(eager_porn, eager_regular)
            self._render_policies(eager_porn)
            policy_texts = self.policy_texts

        easylist_text, easyprivacy_text = self._build_filter_lists()
        disconnect = self._build_disconnect()
        # The WHOIS pass draws from ``rng_sites`` once per operator-owned
        # site, in porn-site insertion order — identical in both modes.
        whois = self._build_whois(
            (domain, attrs.get("owner"))
            for domain, attrs in self.porn_attrs.items()
        )

        return Universe(
            self.config,
            porn_sites=porn_sites,
            regular_sites=regular_sites,
            services=self.services,
            site_cdns=self.site_cdns,
            dynamic_cdn_sites=self.dynamic_cdn_sites,
            rtb_bidders=self.rtb_bidders,
            certificates=certificates,
            easylist_text=easylist_text,
            easyprivacy_text=easyprivacy_text,
            disconnect=disconnect,
            aggregator_listings=aggregators,
            alexa_category_sites=category_sites,
            policy_texts=policy_texts,
            full_list_site=self.full_list_site,
            whois=whois,
            fetch_cache_size=fetch_cache_size,
        )

    def _build_service_certificates(self) -> Dict[str, Certificate]:
        certificates: Dict[str, Certificate] = {}
        for domain, service in self.services.items():
            if not service.https:
                continue
            certificates[domain] = Certificate(
                subject_cn=domain,
                subject_o=service.cert_org,
                san=frozenset({domain, f"*.{domain}"}),
            )
        return certificates

    def _build_certificates(
        self,
        porn_sites: Dict[str, PornSiteSpec],
        regular_sites: Dict[str, RegularSiteSpec],
    ) -> Dict[str, Certificate]:
        certificates = self._build_service_certificates()
        for domain, site in porn_sites.items():
            if site.https:
                certificates[domain] = Certificate(
                    subject_cn=domain,
                    subject_o=site.cert_org,
                    san=frozenset({domain, f"*.{domain}"}),
                )
        for domain, site in regular_sites.items():
            if site.https:
                certificates[domain] = Certificate(
                    subject_cn=domain, subject_o=None,
                    san=frozenset({domain, f"*.{domain}"}),
                )
        for cdn_domain, owner_domain in self.site_cdns.items():
            site = porn_sites.get(owner_domain) or regular_sites.get(owner_domain)
            if site is None or not site.https:
                continue
            # SAN bridging: the CDN certificate also covers the parent site.
            certificates[cdn_domain] = Certificate(
                subject_cn=cdn_domain,
                subject_o=getattr(site, "cert_org", None),
                san=frozenset({cdn_domain, f"*.{cdn_domain}", owner_domain}),
            )
        return certificates

    def _build_filter_lists(self) -> Tuple[str, str]:
        easylist = ["[Adblock Plus 2.0]", "! Title: Synthetic EasyList",
                    "! Adult advertising section"]
        easyprivacy = ["[Adblock Plus 2.0]", "! Title: Synthetic EasyPrivacy"]
        for domain, service in sorted(self.services.items()):
            if service.in_easylist:
                if service.easylist_path_only:
                    easylist.append(f"||{domain}/ad/")
                    easylist.append(f"||{domain}/px")
                else:
                    easylist.append(f"||{domain}^$third-party")
            if service.in_easyprivacy:
                easyprivacy.append(f"||{domain}^$third-party")
        return "\n".join(easylist), "\n".join(easyprivacy)

    def _build_whois(
        self, porn_owners: Iterable[Tuple[str, Optional[str]]]
    ) -> WhoisRegistry:
        """WHOIS records: ad-tech registers openly, porn sites hide.

        Attributable services expose their organization; porn-site records
        are privacy-redacted except for a fraction of operator-owned sites
        (§4.1 could attribute only 4% of sites to a company).

        ``porn_owners`` yields ``(domain, owner)`` in porn-site insertion
        order — the RNG draw per owned site makes the order part of the
        deterministic contract.
        """
        registry = WhoisRegistry()
        for domain, service in self.services.items():
            registry.register(domain, organization=service.cert_org)
        operators = {op.name: op.legal_name
                     for op in operators_from_targets(self.targets)}
        for domain, owner in porn_owners:
            organization = None
            if owner is not None and \
                    self.rng_sites.random() < 0.6:
                organization = operators.get(owner)
            registry.register(domain, organization=organization)
        return registry

    def _build_disconnect(self) -> DisconnectList:
        by_org: Dict[str, List[str]] = {}
        categories: Dict[str, str] = {}
        for domain, service in self.services.items():
            if not service.in_disconnect or not service.organization:
                continue
            by_org.setdefault(service.organization, []).append(domain)
            categories[service.organization] = (
                "analytics" if service.category == CATEGORY_ANALYTICS
                else "advertising"
            )
        entries = [
            DisconnectEntry(org, categories[org], tuple(sorted(domains)))
            for org, domains in sorted(by_org.items())
        ]
        return DisconnectList(entries)

    def _plan_discovery_sources(
        self,
    ) -> Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]:
        non_keyword = [d for d, attrs in self.porn_attrs.items()
                       if attrs["responsive"] and not attrs["has_adult_keyword"]]
        self.rng_sites.shuffle(non_keyword)
        category_count = self.scaled(self.targets.from_alexa_category)
        category_sites = tuple(non_keyword[:category_count])
        aggregator_sites = non_keyword[category_count:]
        for domain in category_sites:
            self.porn_attrs[domain]["discovered_by"] = DISCOVERY_ALEXA_CATEGORY
        # Spread over three aggregator listings with overlap.
        listings: List[List[str]] = [[], [], []]
        for index, domain in enumerate(aggregator_sites):
            listings[index % 3].append(domain)
            if self.rng_sites.random() < 0.3:
                listings[(index + 1) % 3].append(domain)
        return tuple(tuple(listing) for listing in listings), category_sites

    def _render_policies(self, porn_sites: Dict[str, PornSiteSpec]) -> None:
        operators = {op.name: op for op in operators_from_targets(self.targets)}
        for domain, site in porn_sites.items():
            if site.policy is None or site.policy.link_broken:
                continue
            company = None
            if site.owner is not None and site.owner in operators:
                company = operators[site.owner].legal_name
            third_parties: Sequence[str] = ()
            if site.policy.full_third_party_list:
                third_parties = site.embedded_services
            self.policy_texts[domain] = self.policy_gen.render(
                site.policy, site_domain=domain, company=company,
                third_parties=third_parties,
            )

    def _plan_policy_texts(self) -> LazyPolicyTexts:
        """The lazy counterpart of :meth:`_render_policies`.

        Same site selection and same render inputs, but the text (mean
        ~17k chars, tail ~240k) is produced on first read.  Requires
        ``porn_attrs[domain]["embedded_services"]`` to be final.
        """
        operators = {op.name: op for op in operators_from_targets(self.targets)}
        plans: Dict[str, bytes] = {}
        for domain, attrs in self.porn_attrs.items():
            policy = attrs.get("policy")
            if policy is None or policy.link_broken:
                continue
            company = None
            owner = attrs.get("owner")
            if owner is not None and owner in operators:
                company = operators[owner].legal_name
            third_parties: Tuple[str, ...] = ()
            if policy.full_third_party_list:
                third_parties = tuple(attrs["embedded_services"])
            plans[domain] = marshal.dumps(
                (policy_to_row(policy), company, third_parties)
            )
        return LazyPolicyTexts(plans, self.policy_gen)


def build_universe(
    config: Optional[UniverseConfig] = None,
    *,
    lazy: bool = False,
    fetch_cache_size: Optional[int] = None,
) -> Universe:
    """Build the complete synthetic web from a configuration.

    ``lazy=True`` keeps site specs as packed rows decoded on access —
    bit-identical to the eager universe (asserted by the parity tests)
    but O(routing tables + hot LRU) resident instead of O(corpus).

    ``config.epoch > 0`` builds the epoch-0 universe first, then applies
    that many deterministic evolution steps
    (:func:`repro.webgen.evolve.evolve_universe`), so any epoch is
    reachable from the configuration alone — which is what lets a stored
    epoch's universe be reconstructed for delta-crawl hash comparison.
    """
    from .evolve import evolve_universe

    config = config or UniverseConfig()
    epoch = config.epoch
    if epoch:
        config = dataclasses.replace(config, epoch=0)
    builder = _Builder(config)
    builder.build_porn_sites()
    builder.build_services()
    builder.build_regular_sites()
    universe = builder.finalize(lazy=lazy, fetch_cache_size=fetch_cache_size)
    for _ in range(epoch):
        universe = evolve_universe(universe, fetch_cache_size=fetch_cache_size)
    return universe
