"""Versioned SQLite schema for the crawl datastore.

The layout mirrors OpenWPM's instrumentation database: one row per
observed event (request, cookie, JS call), grouped under a *run* — one
crawler session from one vantage point over one ordered site list.  The
``runs`` table is the run manifest; ``run_sites`` records per-site
completion, which is the unit of checkpoint/resume granularity.

Schema changes bump :data:`SCHEMA_VERSION`; :func:`ensure_schema`
creates a fresh schema or verifies the stored version, refusing to open
stores written by an incompatible layout (there is no silent migration —
measurement data is re-creatable from the deterministic universe, so a
hard error beats a subtly wrong upgrade).
"""

from __future__ import annotations

import sqlite3

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "ensure_schema",
    "shard_stamp",
    "stamp_shard",
]

#: Bump on any table/column change.
SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

-- Run manifest: one crawler session.  ``run_key`` is the content hash of
-- (UniverseConfig, vantage point, crawler kind); ``domains_hash`` covers
-- the ordered site list so the same logical crawl over a different
-- corpus slice is a distinct run.
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    run_key       TEXT    NOT NULL,
    kind          TEXT    NOT NULL,
    country_code  TEXT    NOT NULL,
    client_ip     TEXT    NOT NULL,
    config_json   TEXT    NOT NULL,
    vantage_json  TEXT    NOT NULL,
    domains_hash  TEXT    NOT NULL,
    total_sites   INTEGER NOT NULL,
    seq           INTEGER NOT NULL DEFAULT 0,
    started_at    REAL    NOT NULL,
    finished_at   REAL,
    elapsed       REAL    NOT NULL DEFAULT 0.0,
    stats_json    TEXT,
    UNIQUE (run_key, domains_hash)
);

-- Per-site completion ledger: the ordered site list of a run, with the
-- checkpoint flag and per-site timings/counts for the manifest view.
CREATE TABLE IF NOT EXISTS run_sites (
    run_id    INTEGER NOT NULL REFERENCES runs(id),
    position  INTEGER NOT NULL,
    domain    TEXT    NOT NULL,
    completed INTEGER NOT NULL DEFAULT 0,
    elapsed   REAL,
    requests  INTEGER,
    cookies   INTEGER,
    js_calls  INTEGER,
    PRIMARY KEY (run_id, position)
);

CREATE TABLE IF NOT EXISTS visits (
    run_id         INTEGER NOT NULL REFERENCES runs(id),
    position       INTEGER NOT NULL,
    site_domain    TEXT    NOT NULL,
    url            TEXT    NOT NULL,
    success        INTEGER NOT NULL,
    status         INTEGER,
    failure_reason TEXT    NOT NULL,
    html           TEXT    NOT NULL,
    https          INTEGER NOT NULL,
    PRIMARY KEY (run_id, position)
);

CREATE TABLE IF NOT EXISTS requests (
    run_id            INTEGER NOT NULL REFERENCES runs(id),
    position          INTEGER NOT NULL,
    url               TEXT    NOT NULL,
    fqdn              TEXT    NOT NULL,
    scheme            TEXT    NOT NULL,
    page_domain       TEXT    NOT NULL,
    resource_type     TEXT    NOT NULL,
    initiator         TEXT,
    referrer          TEXT,
    seq               INTEGER NOT NULL,
    status            INTEGER,
    failed            INTEGER NOT NULL,
    error             TEXT    NOT NULL,
    redirect_location TEXT,
    PRIMARY KEY (run_id, position)
);

CREATE TABLE IF NOT EXISTS cookies (
    run_id      INTEGER NOT NULL REFERENCES runs(id),
    position    INTEGER NOT NULL,
    page_domain TEXT    NOT NULL,
    set_by_host TEXT    NOT NULL,
    domain      TEXT    NOT NULL,
    name        TEXT    NOT NULL,
    value       TEXT    NOT NULL,
    session     INTEGER NOT NULL,
    secure      INTEGER NOT NULL,
    over_https  INTEGER NOT NULL,
    seq         INTEGER NOT NULL,
    PRIMARY KEY (run_id, position)
);

CREATE TABLE IF NOT EXISTS js_calls (
    run_id        INTEGER NOT NULL REFERENCES runs(id),
    position      INTEGER NOT NULL,
    script_url    TEXT    NOT NULL,
    document_host TEXT    NOT NULL,
    api           TEXT    NOT NULL,
    args_json     TEXT    NOT NULL,
    PRIMARY KEY (run_id, position)
);

-- Opaque auxiliary payloads (e.g. the pickled Selenium inspection pass)
-- keyed like runs, for crawl products that are not CrawlLog-shaped.
CREATE TABLE IF NOT EXISTS artifacts (
    artifact_key TEXT PRIMARY KEY,
    payload      BLOB NOT NULL,
    created_at   REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_runs_key       ON runs (run_key);
CREATE INDEX IF NOT EXISTS idx_requests_page  ON requests (run_id, page_domain);
CREATE INDEX IF NOT EXISTS idx_cookies_page   ON cookies (run_id, page_domain);
"""


class SchemaError(RuntimeError):
    """The store file exists but was written by an incompatible schema."""


def _verify_version(connection: sqlite3.Connection) -> None:
    stored = connection.execute(
        "SELECT value FROM meta WHERE key='schema_version'"
    ).fetchone()
    if stored is None or int(stored[0]) != SCHEMA_VERSION:
        found = "missing" if stored is None else stored[0]
        raise SchemaError(
            f"store schema version {found} != supported {SCHEMA_VERSION}"
        )


def ensure_schema(connection: sqlite3.Connection) -> None:
    """Create the schema on a fresh store, or verify a stored version.

    Creation is one ``BEGIN IMMEDIATE`` transaction with a re-check
    inside, because concurrent workers race to open a fresh store: a
    second opener must never observe the tables without the version row
    (``executescript`` would expose exactly that window).
    """
    row = connection.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
    ).fetchone()
    if row is not None:
        _verify_version(connection)
        return
    connection.execute("BEGIN IMMEDIATE")
    try:
        row = connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        if row is not None:  # another opener won the race
            _verify_version(connection)
        else:
            # Statement-at-a-time (executescript would auto-commit);
            # comment lines go first since they may contain semicolons.
            ddl = "\n".join(
                line for line in _DDL.splitlines()
                if not line.lstrip().startswith("--")
            )
            for statement in ddl.split(";"):
                if statement.strip():
                    connection.execute(statement)
            connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
    except BaseException:
        connection.execute("ROLLBACK")
        raise
    connection.execute("COMMIT")


def stamp_shard(connection: sqlite3.Connection, index: int, count: int) -> None:
    """Mark a store file as shard ``index`` of a ``count``-way v2 store.

    Shard files are self-describing: each carries its position so a
    half-copied directory or a renamed file is detected at open time
    instead of silently routing rows to the wrong shard.
    """
    with connection:
        connection.executemany(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            [("shard_index", str(index)), ("shard_count", str(count))],
        )


def shard_stamp(connection: sqlite3.Connection):
    """The ``(index, count)`` stamp of a shard file, or ``None`` for v1."""
    rows = dict(connection.execute(
        "SELECT key, value FROM meta"
        " WHERE key IN ('shard_index', 'shard_count')"
    ))
    if not rows:
        return None
    return int(rows["shard_index"]), int(rows["shard_count"])
