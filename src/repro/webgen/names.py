"""Deterministic domain-name generation for the synthetic universe.

Corpus compilation (Section 3) discovers candidates by substring-matching
adult keywords against Alexa-indexed domains, so the generator must mint:

* porn-site domains that contain those keywords (most of them);
* porn-site domains *without* keywords (only discoverable via aggregators
  or Alexa's Adult category — the paper's motivation for multiple sources);
* non-porn domains that nevertheless contain a keyword (the false
  positives, e.g. ``youtube.com`` matching ``tube``);
* regular-web domains and third-party service domains.

Names are drawn from word pools with a seeded generator, and a registry
guarantees global uniqueness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

__all__ = ["ADULT_KEYWORDS", "NameFactory"]

#: The keyword bag from Section 3 step (3).
ADULT_KEYWORDS = ("porn", "tube", "sex", "gay", "lesbian", "mature", "xxx")

_ADULT_PREFIXES = (
    "hot", "free", "best", "real", "wild", "super", "mega", "ultra", "top",
    "big", "sweet", "dark", "red", "blue", "gold", "vip", "club", "my",
    "your", "euro", "asia", "latin", "amateur", "classic", "retro", "hd",
    "4k", "live", "daily", "prime", "crazy", "naughty", "secret", "private",
)

_ADULT_SUFFIXES = (
    "hub", "land", "zone", "world", "star", "stars", "videos", "video",
    "clips", "movies", "films", "cams", "cam", "dreams", "heaven", "palace",
    "planet", "city", "island", "garden", "vault", "box", "spot", "place",
    "base", "center", "network", "channel", "stream", "gallery", "archive",
)

#: Innocent words containing adult keywords — the false-positive generator.
_KEYWORD_TRAPS = {
    "sex": ("essex", "sussex", "middlesex", "sextet", "sextant"),
    "tube": ("tuberecipes", "tubestation", "innertube", "tubemap", "testtube"),
    "mature": ("maturefunds", "maturedbonds", "prematurecare"),
    "gay": ("gayleforum", "nagayama", "gaylordhotels"),
    "porn": (),            # hard to collide innocently; the paper saw few
    "lesbian": (),
    "xxx": ("xxxl-fashion", "sizexxxl"),
}

_REGULAR_WORDS = (
    "news", "daily", "tech", "cloud", "shop", "store", "media", "games",
    "sports", "travel", "food", "recipe", "health", "finance", "bank",
    "music", "radio", "photo", "design", "code", "dev", "data", "social",
    "forum", "blog", "wiki", "mail", "search", "weather", "auto", "home",
    "garden", "fashion", "style", "book", "movie", "stream", "learn",
    "school", "job", "career", "market", "trade", "crypto", "chart",
)

_ADTECH_WORDS = (
    "ad", "ads", "click", "track", "traffic", "media", "serve", "srv",
    "pixel", "tag", "sync", "bid", "rtb", "banner", "pop", "push",
    "native", "cpm", "cpa", "affiliate", "promo", "reach", "audience",
    "metric", "stat", "stats", "analytics", "count", "beacon", "deliver",
    "engine", "net", "hub", "flow", "link", "zone", "boost", "juicy",
)

_TLDS_PORN = ("com", "com", "com", "net", "org", "xxx", "tv", "me")
_TLDS_REGULAR = ("com", "com", "com", "net", "org", "io", "co.uk", "de", "fr", "es", "in", "ru")
_TLDS_ADTECH = ("com", "com", "net", "ru", "party", "top", "pro", "info", "biz")


class NameFactory:
    """Mints globally unique domain names from themed word pools."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._taken: Set[str] = set()

    def reserve(self, domain: str) -> str:
        """Mark a hand-picked domain as taken (idempotent) and return it."""
        self._taken.add(domain.lower())
        return domain.lower()

    def is_taken(self, domain: str) -> bool:
        return domain.lower() in self._taken

    def _choice(self, pool: Sequence[str]) -> str:
        return pool[int(self._rng.integers(0, len(pool)))]

    def _unique(self, build) -> str:
        """Call ``build()`` until it yields an unused name (suffixing if needed)."""
        for _ in range(64):
            name = build()
            if name not in self._taken:
                self._taken.add(name)
                return name
        # Exhausted the combinatorial pool; disambiguate numerically.
        base = build()
        counter = 2
        while f"{base[:-4]}{counter}{base[-4:]}" in self._taken:
            counter += 1
        name = f"{base[:-4]}{counter}{base[-4:]}"
        self._taken.add(name)
        return name

    # -- porn sites -----------------------------------------------------------

    def porn_domain(self, *, with_keyword: bool = True) -> str:
        """A porn-site domain, with or without an adult keyword in it."""
        def build() -> str:
            if with_keyword:
                tld = self._choice(_TLDS_PORN)
            else:
                # ".xxx" itself is one of the discovery keywords, so
                # keyword-free domains must avoid it.
                tld = self._choice(tuple(t for t in _TLDS_PORN if t != "xxx"))
            if with_keyword:
                keyword = self._choice(ADULT_KEYWORDS)
                pattern = int(self._rng.integers(0, 3))
                if pattern == 0:
                    stem = f"{self._choice(_ADULT_PREFIXES)}{keyword}{self._choice(_ADULT_SUFFIXES)}"
                elif pattern == 1:
                    stem = f"{keyword}{self._choice(_ADULT_SUFFIXES)}{int(self._rng.integers(1, 100))}"
                else:
                    stem = f"{self._choice(_ADULT_PREFIXES)}-{keyword}-{self._choice(_ADULT_SUFFIXES)}"
            else:
                # Brandable names with no keyword (e.g. livejasmin-style).
                stem = (
                    f"{self._choice(_ADULT_PREFIXES)}"
                    f"{self._choice(('desire', 'velvet', 'night', 'blush', 'flirt', 'tease', 'vixen', 'amour'))}"
                    f"{self._choice(_ADULT_SUFFIXES)}"
                )
            return f"{stem}.{tld}"
        return self._unique(build)

    def false_positive_domain(self) -> str:
        """A *non-porn* domain that contains an adult keyword substring."""
        def build() -> str:
            trap_keyword = self._choice(("sex", "tube", "mature", "gay", "xxx"))
            traps = _KEYWORD_TRAPS[trap_keyword]
            if traps and self._rng.random() < 0.7:
                stem = f"{self._choice(traps)}{self._choice(('', '-online', '-hq', 'group'))}"
            else:
                stem = f"{self._choice(_REGULAR_WORDS)}{trap_keyword}{self._choice(_REGULAR_WORDS)}"
            return f"{stem}.{self._choice(('com', 'com', 'co.uk', 'org', 'net'))}"
        return self._unique(build)

    # -- regular sites -----------------------------------------------------------

    def regular_domain(self) -> str:
        def build() -> str:
            pattern = int(self._rng.integers(0, 3))
            if pattern == 0:
                stem = f"{self._choice(_REGULAR_WORDS)}{self._choice(_REGULAR_WORDS)}"
            elif pattern == 1:
                stem = f"{self._choice(_REGULAR_WORDS)}-{self._choice(_REGULAR_WORDS)}"
            else:
                stem = f"{self._choice(_REGULAR_WORDS)}{int(self._rng.integers(1, 1000))}"
            return f"{stem}.{self._choice(_TLDS_REGULAR)}"
        return self._unique(build)

    # -- third parties -----------------------------------------------------------

    def adtech_domain(self, *, tld: Optional[str] = None) -> str:
        """A plausible ad-tech / analytics service domain."""
        def build() -> str:
            chosen_tld = tld or self._choice(_TLDS_ADTECH)
            pattern = int(self._rng.integers(0, 4))
            first = self._choice(_ADTECH_WORDS)
            second = self._choice(_ADTECH_WORDS)
            if pattern == 0:
                stem = f"{first}{second}"
            elif pattern == 1:
                stem = f"{first}-{second}"
            elif pattern == 2:
                stem = f"{first}{second}{int(self._rng.integers(1, 100))}"
            else:
                stem = f"{first}{self._choice(('ly', 'ify', 'io', 'x', 'z'))}"
            return f"{stem}.{chosen_tld}"
        return self._unique(build)

    def obscure_domain(self) -> str:
        """A throwaway-looking tracker domain (``xcvgdf.party`` style)."""
        def build() -> str:
            consonants = "bcdfghjklmnpqrstvwxz"
            length = int(self._rng.integers(5, 9))
            letters = "".join(
                consonants[int(self._rng.integers(0, len(consonants)))]
                for _ in range(length)
            )
            return f"{letters}.{self._choice(('party', 'top', 'pro', 'info', 'biz'))}"
        return self._unique(build)

    def cdn_domain(self) -> str:
        def build() -> str:
            stem = (
                f"{self._choice(('cdn', 'static', 'img', 'media', 'assets', 'cache', 'edge'))}"
                f"{self._choice(('fast', 'net', 'wave', 'core', 'layer', 'stack', 'grid'))}"
                f"{int(self._rng.integers(1, 50))}"
            )
            return f"{stem}.{self._choice(('com', 'net', 'io'))}"
        return self._unique(build)
