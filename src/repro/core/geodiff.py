"""Section 6 / Table 7 — geographical differences.

The same corpus is crawled from every vantage point; this module compares
the per-country sets of directly embedded third-party FQDNs, ATSes, the
country-unique populations, overlap with the regular web ecosystem, plus
per-country malware presence and site blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..browser.events import CrawlLog
from ..net.url import registrable_domain
from .ats import ATSResult
from .malware import MalwareReport
from .partylabel import PartyLabels

__all__ = ["CountryObservation", "CountryRow", "GeoReport", "analyze_geography"]


@dataclass
class CountryObservation:
    """Inputs for one vantage point."""

    log: CrawlLog
    labels: PartyLabels
    ats: ATSResult
    malware: Optional[MalwareReport] = None


@dataclass(frozen=True)
class CountryRow:
    """One Table 7 row."""

    country: str
    fqdn_count: int
    web_ecosystem_fraction: float
    unique_fqdns: int
    ats_count: int
    unique_ats: int
    blocked_sites: int


@dataclass
class GeoReport:
    rows: List[CountryRow] = field(default_factory=list)
    total_fqdns: int = 0
    total_unique: int = 0
    total_ats: int = 0
    total_unique_ats: int = 0
    #: country -> malicious third-party domains observed there.
    malicious_domains: Dict[str, Set[str]] = field(default_factory=dict)
    #: country -> porn sites hosting malicious content there.
    malicious_sites: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def malicious_domains_everywhere(self) -> Set[str]:
        sets = list(self.malicious_domains.values())
        if not sets:
            return set()
        common = set(sets[0])
        for entry in sets[1:]:
            common &= entry
        return common

    @property
    def malicious_sites_everywhere(self) -> Set[str]:
        sets = list(self.malicious_sites.values())
        if not sets:
            return set()
        common = set(sets[0])
        for entry in sets[1:]:
            common &= entry
        return common


def analyze_geography(
    observations: Dict[str, CountryObservation],
    *,
    regular_web_fqdns: Set[str],
) -> GeoReport:
    """Build Table 7 from per-country crawl observations."""
    report = GeoReport()
    per_country_fqdns: Dict[str, Set[str]] = {}
    per_country_ats: Dict[str, Set[str]] = {}
    regular_bases = {registrable_domain(f) for f in regular_web_fqdns}

    for country, observation in observations.items():
        per_country_fqdns[country] = set(observation.labels.all_third_party_fqdns)
        per_country_ats[country] = {
            fqdn for fqdn in observation.ats.ats_fqdns
            if fqdn in per_country_fqdns[country]
        }

    for country, observation in observations.items():
        fqdns = per_country_fqdns[country]
        ats = per_country_ats[country]
        others: Set[str] = set()
        other_ats: Set[str] = set()
        for other_country, other_fqdns in per_country_fqdns.items():
            if other_country != country:
                others |= other_fqdns
                other_ats |= per_country_ats[other_country]
        in_web = sum(
            1 for fqdn in fqdns if registrable_domain(fqdn) in regular_bases
        )
        blocked = sum(
            1 for visit in observation.log.visits
            if not visit.success and visit.status == 451
        )
        # Country-level blocking can also surface as network failures.
        blocked += sum(
            1 for visit in observation.log.visits
            if not visit.success and visit.status is None
            and visit.failure_reason == "FetchError"
        )
        report.rows.append(
            CountryRow(
                country=country,
                fqdn_count=len(fqdns),
                web_ecosystem_fraction=in_web / len(fqdns) if fqdns else 0.0,
                unique_fqdns=len(fqdns - others),
                ats_count=len(ats),
                unique_ats=len(ats - other_ats),
                blocked_sites=blocked,
            )
        )
        if observation.malware is not None:
            report.malicious_domains[country] = set(
                observation.malware.malicious_third_parties
            )
            report.malicious_sites[country] = set(
                observation.malware.sites_with_malicious_third_parties
            )

    all_fqdns: Set[str] = set()
    all_ats: Set[str] = set()
    for fqdns in per_country_fqdns.values():
        all_fqdns |= fqdns
    for ats in per_country_ats.values():
        all_ats |= ats
    report.total_fqdns = len(all_fqdns)
    report.total_ats = len(all_ats)
    report.total_unique = sum(row.unique_fqdns for row in report.rows)
    report.total_unique_ats = sum(row.unique_ats for row in report.rows)
    return report
