"""Regulatory-compliance analyses (Section 7)."""

from .age_verification import (
    AgeVerificationReport,
    CountryGateSummary,
    study_age_verification,
)
from .banners import (
    BANNER_BINARY,
    BANNER_CONFIRMATION,
    BANNER_NO_OPTION,
    BANNER_OTHER,
    BannerObservation,
    BannerReport,
    analyze_banners,
    detect_banner,
)
from .policies import (
    CollectedPolicy,
    DisclosureSummary,
    PolicyReport,
    analyze_policies,
    collect_policies,
    extract_disclosures,
    pairwise_similarity_fractions,
    pairwise_similarity_fractions_dense,
)

__all__ = [
    "AgeVerificationReport",
    "CountryGateSummary",
    "study_age_verification",
    "BANNER_BINARY",
    "BANNER_CONFIRMATION",
    "BANNER_NO_OPTION",
    "BANNER_OTHER",
    "BannerObservation",
    "BannerReport",
    "analyze_banners",
    "detect_banner",
    "CollectedPolicy",
    "DisclosureSummary",
    "PolicyReport",
    "analyze_policies",
    "collect_policies",
    "extract_disclosures",
    "pairwise_similarity_fractions",
    "pairwise_similarity_fractions_dense",
]
