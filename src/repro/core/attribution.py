"""Section 4.2(3) — attributing third-party domains to parent companies.

Disconnect's entity list alone resolves very few organizations; the paper
completes it with the organization field of each domain's X.509
certificate, discarding domain-validated certificates whose Subject only
repeats the domain name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..blocklists.disconnect import DisconnectList
from ..net.tls import Certificate
from ..net.url import registrable_domain

__all__ = ["AttributionResult", "attribute_organizations"]

CertLookup = Callable[[str], Optional[Certificate]]


WhoisLookup = Callable[[str], Optional[str]]


@dataclass
class AttributionResult:
    """Organization attribution for a set of third-party FQDNs."""

    organization_of: Dict[str, str] = field(default_factory=dict)  # fqdn -> org
    via_disconnect: Set[str] = field(default_factory=set)
    via_certificate: Set[str] = field(default_factory=set)
    via_whois: Set[str] = field(default_factory=set)
    unattributed: Set[str] = field(default_factory=set)

    @property
    def attributed_count(self) -> int:
        return len(self.organization_of)

    @property
    def organizations(self) -> Set[str]:
        return set(self.organization_of.values())

    @property
    def disconnect_only_organizations(self) -> Set[str]:
        """Organizations resolvable with Disconnect alone."""
        return {
            self.organization_of[fqdn]
            for fqdn in self.via_disconnect
        }

    def domains_of(self, organization: str) -> Set[str]:
        return {
            fqdn for fqdn, org in self.organization_of.items()
            if org == organization
        }

    def attributed_fraction(self, total: Optional[int] = None) -> float:
        denominator = total if total else (
            len(self.organization_of) + len(self.unattributed)
        )
        return len(self.organization_of) / denominator if denominator else 0.0


def attribute_organizations(
    fqdns: Iterable[str],
    *,
    disconnect: DisconnectList,
    cert_lookup: Optional[CertLookup] = None,
    whois_lookup: Optional[WhoisLookup] = None,
) -> AttributionResult:
    """Attribute each FQDN to its parent organization.

    Priority: Disconnect's curated mapping, then the X.509 Subject
    organization, then the WHOIS registrant (the only evidence for domains
    without TLS).
    """
    result = AttributionResult()
    for fqdn in fqdns:
        organization = disconnect.organization_of(fqdn)
        if organization is not None:
            result.organization_of[fqdn] = organization
            result.via_disconnect.add(fqdn)
            continue
        if cert_lookup is not None:
            certificate = cert_lookup(fqdn)
            if certificate is not None and certificate.has_organization:
                result.organization_of[fqdn] = certificate.subject_o
                result.via_certificate.add(fqdn)
                continue
        if whois_lookup is not None:
            organization = whois_lookup(fqdn)
            if organization is not None:
                result.organization_of[fqdn] = organization
                result.via_whois.add(fqdn)
                continue
        result.unattributed.add(fqdn)
    return result
