"""An Adblock Plus filter-list engine (EasyList / EasyPrivacy).

Section 4.2 classifies third-party domains as advertising-and-tracking
services (ATS) by matching the *full request URL* against EasyList and
EasyPrivacy, because the lists are rule-based (``bbc.co.uk`` is clean while
``bbc.co.uk/analytics`` is blocked).  The paper also uses a relaxed
base-domain match.  This module implements the filter syntax subset those
lists actually rely on:

* ``||domain^`` domain-anchor rules (host or any subdomain);
* ``|`` start-of-URL anchors;
* plain substring rules with ``*`` wildcards and ``^`` separators;
* ``@@`` exception rules;
* ``$`` options: ``third-party``, ``~third-party``, resource types
  (``script``, ``image``, ``subdocument``, ``xmlhttprequest``), and
  ``domain=``;
* ``!`` comments and ``[Adblock...]`` headers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..net.url import URL, is_subdomain_of, parse_url, registrable_domain

__all__ = ["FilterRule", "FilterList", "MatchContext", "parse_rule"]

_SEPARATOR_CLASS = r"[^\w.%-]"

_TYPE_OPTIONS = {"script", "image", "subdocument", "xmlhttprequest", "document"}

_RESOURCE_ALIASES = {
    "sub_frame": "subdocument",
    "xhr": "xmlhttprequest",
}


@dataclass(frozen=True)
class MatchContext:
    """Request context needed to evaluate rule options."""

    first_party_host: str = ""
    resource_type: str = "document"

    @property
    def canonical_type(self) -> str:
        return _RESOURCE_ALIASES.get(self.resource_type, self.resource_type)


@dataclass
class FilterRule:
    """One compiled filter rule."""

    raw: str
    is_exception: bool = False
    anchor_domain: Optional[str] = None
    pattern: Optional[re.Pattern] = None
    third_party: Optional[bool] = None
    resource_types: Optional[Set[str]] = None
    include_domains: Optional[Set[str]] = None
    exclude_domains: Optional[Set[str]] = None
    #: The ABP pattern body the regex was compiled from, plus its anchors —
    #: kept so the token index can extract guaranteed substrings.
    pattern_text: Optional[str] = None
    start_anchor: bool = False
    end_anchor: bool = False

    def matches(self, url: URL, context: MatchContext) -> bool:
        """Evaluate this rule against a request URL and its context."""
        if self.anchor_domain is not None:
            if not is_subdomain_of(url.host, self.anchor_domain):
                return False
        if self.pattern is not None and not self.pattern.search(str(url)):
            return False
        if self.third_party is not None and context.first_party_host:
            request_party = registrable_domain(url.host)
            page_party = registrable_domain(context.first_party_host)
            is_third = request_party != page_party
            if self.third_party != is_third:
                return False
        if self.resource_types is not None:
            if context.canonical_type not in self.resource_types:
                return False
        if self.include_domains is not None and context.first_party_host:
            if not any(
                is_subdomain_of(context.first_party_host, domain)
                for domain in self.include_domains
            ):
                return False
        if self.exclude_domains is not None and context.first_party_host:
            if any(
                is_subdomain_of(context.first_party_host, domain)
                for domain in self.exclude_domains
            ):
                return False
        return True


def _compile_pattern(body: str, *, start_anchor: bool, end_anchor: bool) -> Optional[re.Pattern]:
    """Translate an ABP pattern body into a regular expression."""
    if not body and not start_anchor and not end_anchor:
        return None
    escaped = []
    for char in body:
        if char == "*":
            escaped.append(".*")
        elif char == "^":
            escaped.append(f"(?:{_SEPARATOR_CLASS}|$)")
        else:
            escaped.append(re.escape(char))
    regex = "".join(escaped)
    if start_anchor:
        regex = "^" + regex
    if end_anchor:
        regex += "$"
    return re.compile(regex)


def parse_rule(line: str) -> Optional[FilterRule]:
    """Parse one filter-list line; return ``None`` for comments/unsupported."""
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        return None
    # Element-hiding rules (##, #@#) are irrelevant to request classification.
    if "##" in line or "#@#" in line or "#?#" in line:
        return None

    raw = line
    is_exception = line.startswith("@@")
    if is_exception:
        line = line[2:]

    options_text = ""
    dollar = line.rfind("$")
    if dollar > 0 and "/" not in line[dollar:]:
        options_text = line[dollar + 1:]
        line = line[:dollar]

    rule = FilterRule(raw=raw, is_exception=is_exception)

    if options_text:
        types: Set[str] = set()
        for option in options_text.split(","):
            option = option.strip()
            if option == "third-party":
                rule.third_party = True
            elif option == "~third-party":
                rule.third_party = False
            elif option in _TYPE_OPTIONS:
                types.add(option)
            elif option.startswith("domain="):
                include: Set[str] = set()
                exclude: Set[str] = set()
                for domain in option[len("domain="):].split("|"):
                    if domain.startswith("~"):
                        exclude.add(domain[1:].lower())
                    elif domain:
                        include.add(domain.lower())
                rule.include_domains = include or None
                rule.exclude_domains = exclude or None
            # Unknown options are ignored rather than rejected; EasyList
            # carries many options that do not affect URL classification.
        rule.resource_types = types or None

    if line.startswith("||"):
        body = line[2:]
        # Split the domain part from any path part.
        cut = len(body)
        for index, char in enumerate(body):
            if char in "/^*":
                cut = index
                break
        rule.anchor_domain = body[:cut].lower()
        remainder = body[cut:]
        if remainder and remainder != "^":
            rule.pattern = _compile_pattern(remainder.lstrip("^"), start_anchor=False,
                                            end_anchor=False)
        return rule

    start_anchor = line.startswith("|")
    if start_anchor:
        line = line[1:]
    end_anchor = line.endswith("|")
    if end_anchor:
        line = line[:-1]
    rule.pattern = _compile_pattern(line, start_anchor=start_anchor,
                                    end_anchor=end_anchor)
    rule.pattern_text = line
    rule.start_anchor = start_anchor
    rule.end_anchor = end_anchor
    if rule.pattern is None and rule.anchor_domain is None:
        return None
    return rule


# ---------------------------------------------------------------------------
# Token index (Adblock-Plus style)
# ---------------------------------------------------------------------------

#: Characters that form a token both in filter patterns and in URLs.
_TOKEN_RE = re.compile(r"[a-zA-Z0-9%]+")


def _safe_tokens(body: str, *, start_anchor: bool, end_anchor: bool) -> List[str]:
    """Literal substrings every matching URL must contain as *whole* tokens.

    A run of token characters in the pattern body is safe to index on only
    when both its edges are known non-token characters in any matching URL:
    a literal separator, an ABP ``^`` placeholder, or a ``|`` anchor.  Runs
    touching a ``*`` wildcard or an unanchored pattern edge may continue
    into neighbouring token characters of the URL (``ads`` matching inside
    ``loads.js``) and are skipped.
    """
    tokens: List[str] = []
    for segment_index, segment in enumerate(body.split("*")):
        first_segment = segment_index == 0
        last_segment = segment_index == body.count("*")
        for match in _TOKEN_RE.finditer(segment):
            left_safe = match.start() > 0 or (first_segment and start_anchor)
            right_safe = match.end() < len(segment) or (last_segment and end_anchor)
            if left_safe and right_safe:
                tokens.append(match.group())
    return tokens


class _TokenIndex:
    """Maps one representative token per rule to its candidate list.

    Rules without a safe token land in the always-checked bucket, so the
    candidate set is a superset of the matching set and evaluating every
    candidate with :meth:`FilterRule.matches` reproduces the linear scan
    exactly.
    """

    def __init__(self) -> None:
        self._by_token: Dict[str, List[FilterRule]] = {}
        self._no_token: List[FilterRule] = []

    def add(self, rule: FilterRule) -> None:
        tokens = ()
        if rule.pattern_text is not None:
            tokens = _safe_tokens(rule.pattern_text,
                                  start_anchor=rule.start_anchor,
                                  end_anchor=rule.end_anchor)
        if not tokens:
            self._no_token.append(rule)
            return
        # Prefer the rarest token so far (longest as tie-break): candidate
        # lists stay short even when many rules share a common prefix.
        best = min(tokens, key=lambda t: (len(self._by_token.get(t, ())), -len(t)))
        self._by_token.setdefault(best, []).append(rule)

    def candidates(self, url_text: str) -> Iterable[FilterRule]:
        yield from self._no_token
        if not self._by_token:
            return
        for token in dict.fromkeys(_TOKEN_RE.findall(url_text)):
            rules = self._by_token.get(token)
            if rules:
                yield from rules


class FilterList:
    """A compiled filter list with EasyList-style matching semantics."""

    def __init__(self, rules: Iterable[FilterRule] = ()) -> None:
        self._block_by_domain: Dict[str, List[FilterRule]] = {}
        self._block_generic: List[FilterRule] = []
        self._block_index = _TokenIndex()
        self._exceptions: List[FilterRule] = []
        self._exc_by_domain: Dict[str, List[FilterRule]] = {}
        self._exc_index = _TokenIndex()
        self._size = 0
        for rule in rules:
            self.add_rule(rule)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "FilterList":
        rules = (parse_rule(line) for line in lines)
        return cls(rule for rule in rules if rule is not None)

    @classmethod
    def from_text(cls, text: str) -> "FilterList":
        return cls.from_lines(text.splitlines())

    def add_rule(self, rule: FilterRule) -> None:
        self._size += 1
        if rule.is_exception:
            self._exceptions.append(rule)
            if rule.anchor_domain is not None:
                key = registrable_domain(rule.anchor_domain)
                self._exc_by_domain.setdefault(key, []).append(rule)
            else:
                self._exc_index.add(rule)
            return
        if rule.anchor_domain is not None:
            key = registrable_domain(rule.anchor_domain)
            self._block_by_domain.setdefault(key, []).append(rule)
        else:
            self._block_generic.append(rule)
            self._block_index.add(rule)

    def __len__(self) -> int:
        return self._size

    def _candidate_rules(self, url: URL) -> Iterable[FilterRule]:
        yield from self._block_by_domain.get(registrable_domain(url.host), ())
        yield from self._block_generic

    def matches(self, url, context: Optional[MatchContext] = None) -> bool:
        """True if the request would be blocked (exceptions honored).

        Candidate rules come from a token index (domain-anchored rules by
        the host's registrable domain, generic rules by URL substring
        tokens), so the scan touches a handful of rules per URL instead of
        the whole list; :meth:`matches_linear` keeps the exhaustive scan
        for parity testing.
        """
        if not isinstance(url, URL):
            url = parse_url(str(url))
        context = context or MatchContext()
        url_text = str(url)
        blocked = any(
            rule.matches(url, context)
            for rule in self._indexed_block_candidates(url, url_text)
        )
        if not blocked:
            return False
        return not any(
            rule.matches(url, context)
            for rule in self._indexed_exception_candidates(url, url_text)
        )

    def _indexed_block_candidates(self, url: URL, url_text: str) -> Iterable[FilterRule]:
        yield from self._block_by_domain.get(registrable_domain(url.host), ())
        yield from self._block_index.candidates(url_text)

    def _indexed_exception_candidates(self, url: URL, url_text: str) -> Iterable[FilterRule]:
        yield from self._exc_by_domain.get(registrable_domain(url.host), ())
        yield from self._exc_index.candidates(url_text)

    def matches_linear(self, url, context: Optional[MatchContext] = None) -> bool:
        """The pre-index exhaustive scan; reference semantics for tests."""
        if not isinstance(url, URL):
            url = parse_url(str(url))
        context = context or MatchContext()
        blocked = any(rule.matches(url, context) for rule in self._candidate_rules(url))
        if not blocked:
            return False
        return not any(rule.matches(url, context) for rule in self._exceptions)

    def matches_domain(self, host: str) -> bool:
        """Relaxed base-FQDN match used by the paper to count ATS *organizations*.

        True when any domain-anchored rule targets the host's registrable
        domain (ignoring path parts and options).
        """
        return registrable_domain(host) in self._block_by_domain

    def blocked_domains(self) -> Set[str]:
        """Registrable domains with at least one domain-anchored block rule."""
        return set(self._block_by_domain)
