"""Extension (§10) — cross-border flows of tracking identifiers.

Following Iordanou et al. (IMC'18), which the paper cites as the natural
follow-up: for a European visitor, how much of the tracking traffic —
especially requests carrying identifier cookies — terminates on servers
outside the EU, where GDPR transfer rules apply?

Server locations come from geo-IP over the resolved addresses, exactly
how a measurement study would do it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ...browser.events import CrawlLog
from ...net.geo import COUNTRIES, GeoIPDatabase
from ...net.url import registrable_domain
from ...webgen.universe import Universe
from ..cookie_analysis import MIN_ID_LENGTH
from ..partylabel import PartyLabels

__all__ = ["CrossBorderReport", "analyze_cross_border"]


@dataclass
class CrossBorderReport:
    """Destination-country breakdown of an EU client's tracking traffic."""

    requests_total: int = 0
    requests_outside_eu: int = 0
    #: country code -> third-party requests terminating there.
    by_country: Dict[str, int] = field(default_factory=dict)
    #: third-party domains that both hold an ID cookie for the browser and
    #: are hosted outside the EU (identifier exports).
    id_exporting_domains: Set[str] = field(default_factory=set)
    id_cookie_domains: Set[str] = field(default_factory=set)

    @property
    def outside_eu_fraction(self) -> float:
        return self.requests_outside_eu / self.requests_total \
            if self.requests_total else 0.0

    @property
    def id_export_fraction(self) -> float:
        """Fraction of ID-cookie holders hosted outside the EU."""
        if not self.id_cookie_domains:
            return 0.0
        return len(self.id_exporting_domains) / len(self.id_cookie_domains)


def analyze_cross_border(
    universe: Universe,
    log: CrawlLog,
    labels: PartyLabels,
) -> CrossBorderReport:
    """Locate every third-party request's server and flag EU exits."""
    report = CrossBorderReport()
    geoip: GeoIPDatabase = universe.geoip
    location_cache: Dict[str, Optional[str]] = {}

    def country_of_host(fqdn: str) -> Optional[str]:
        if fqdn not in location_cache:
            address = universe.dns.try_resolve(fqdn)
            country = geoip.country_of(address) if address else None
            location_cache[fqdn] = country.code if country else None
        return location_cache[fqdn]

    for record in log.requests:
        if record.failed or record.resource_type == "document":
            continue
        page_third = labels.third_party_direct.get(record.page_domain, set())
        if record.fqdn not in page_third:
            continue
        code = country_of_host(record.fqdn)
        if code is None:
            continue
        report.requests_total += 1
        report.by_country[code] = report.by_country.get(code, 0) + 1
        if not COUNTRIES[code].in_eu:
            report.requests_outside_eu += 1

    seen = set()
    for cookie in log.cookies:
        key = (cookie.domain, cookie.name)
        if key in seen:
            continue
        seen.add(key)
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        base = registrable_domain(cookie.domain)
        if base == registrable_domain(cookie.page_domain):
            continue
        report.id_cookie_domains.add(base)
        code = country_of_host(cookie.set_by_host)
        if code is not None and not COUNTRIES[code].in_eu:
            report.id_exporting_domains.add(base)
    return report
