"""Tests for §4.1: owner discovery (Table 1) and business models."""

import pytest

from repro.core.business import (
    MODEL_FREE,
    MODEL_NONE,
    MODEL_PAID,
    classify_business_models,
)
from repro.core.owners import (
    extract_head_organization,
    extract_policy_company,
    normalize_company,
)
from repro.crawler.selenium import (
    AgeGateObservation,
    PolicyObservation,
    SiteInspection,
)


class TestCompanyExtraction:
    def test_policy_company_extracted(self):
        text = ("This privacy statement explains how Gamma Entertainment Ltd. "
                "collects, stores, uses and discloses information")
        assert extract_policy_company(text) == "Gamma Entertainment Ltd"

    def test_generic_operator_rejected(self):
        text = ("This privacy statement explains how the operator of "
                "somesite.com collects, stores, uses")
        assert extract_policy_company(text) is None

    def test_no_match_returns_none(self):
        assert extract_policy_company("nothing here") is None

    def test_head_copyright_meta(self):
        html = ('<html><head><meta name="copyright" content="MindGeek">'
                "</head><body></body></html>")
        assert extract_head_organization(html) == "MindGeek"

    def test_head_generator_network_cms(self):
        html = ('<html><head><meta name="generator" '
                'content="Techpump Network CMS v2.1"></head></html>')
        assert extract_head_organization(html) == "Techpump"

    def test_generic_generator_ignored(self):
        html = ('<html><head><meta name="generator" '
                'content="WordPress 4.9.8"></head></html>')
        assert extract_head_organization(html) is None

    def test_normalize_company_strips_legal_suffixes(self):
        assert normalize_company("Gamma Entertainment Ltd.") == \
            normalize_company("gamma entertainment")
        assert normalize_company("ExoClick S.L.") == "exoclick"
        assert normalize_company("MindGeek") == "mindgeek"


class TestOwnerDiscovery:
    @pytest.fixture(scope="class")
    def report(self, study):
        return study.owners()

    def test_operator_clusters_recovered(self, universe, report):
        truth = {}
        for site in universe.porn_sites.values():
            if site.owner and site.responsive and not site.crawl_flaky:
                truth.setdefault(site.owner, set()).add(site.domain)
        recovered = {normalize_company(c.company) for c in report.clusters
                     if c.size >= 2}
        expected = {normalize_company(owner) for owner, sites in truth.items()
                    if len(sites) >= 2}
        # The method should recover the large clusters.
        assert len(recovered & expected) >= len(expected) * 0.7

    def test_no_false_merging_of_template_sharers(self, universe, report):
        """Independent sites sharing the dominant template must not cluster."""
        independents = {d for d, s in universe.porn_sites.items()
                        if s.owner is None}
        for cluster in report.clusters:
            independent_members = set(cluster.sites) & independents
            # An owner cluster never contains independent sites.
            owned_members = set(cluster.sites) - independents
            assert not (independent_members and owned_members)

    def test_tfidf_discovery_produced_rejections(self, report):
        # Template reuse creates many candidate pairs that verification
        # must reject (the paper's manual-filter step).
        assert report.rejected_pairs > 0

    def test_table1_sorted_by_size(self, report, study):
        rows = report.table1(study.best_rank)
        sizes = [size for _, size, _, _ in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_mindgeek_flagship_is_pornhub(self, report, study):
        rows = report.table1(study.best_rank)
        mindgeek = [row for row in rows
                    if normalize_company(row[0]) == "mindgeek"]
        if not mindgeek:
            pytest.skip("MindGeek cluster too small at this scale")
        _, _, flagship, rank = mindgeek[0]
        assert flagship == "pornhub.com"
        assert rank == 22


def inspection(domain, *, account=False, premium=False, payment=False,
               reachable=True):
    return SiteInspection(
        domain=domain,
        reachable=reachable,
        age_gate=AgeGateObservation(detected=False),
        policy=PolicyObservation(link_found=False),
        has_account_option=account,
        has_premium_cue=premium,
        has_payment_cue=payment,
    )


class TestBusinessModels:
    def test_no_cues_is_ad_supported(self):
        report = classify_business_models([inspection("a.com")])
        assert report.models[0].model == MODEL_NONE

    def test_account_plus_payment_is_paid(self):
        report = classify_business_models(
            [inspection("a.com", account=True, payment=True)]
        )
        assert report.models[0].model == MODEL_PAID

    def test_account_without_payment_is_free(self):
        report = classify_business_models(
            [inspection("a.com", account=True)]
        )
        assert report.models[0].model == MODEL_FREE

    def test_unreachable_excluded(self):
        report = classify_business_models(
            [inspection("a.com", reachable=False)]
        )
        assert report.inspected == 0

    def test_integration_fractions(self, study):
        report = study.business_models()
        assert 0.08 <= report.subscription_fraction <= 0.25
        assert 0.05 <= report.paid_fraction_of_subscriptions <= 0.5

    def test_ground_truth_agreement(self, universe, study):
        report = study.business_models()
        truth = {
            d: s.subscription for d, s in universe.porn_sites.items()
        }
        checked = mismatched = 0
        for model in report.models:
            expected = truth.get(model.site_domain)
            checked += 1
            is_subscription = model.model != MODEL_NONE
            if is_subscription != (expected is not None):
                mismatched += 1
        assert mismatched / checked < 0.05
