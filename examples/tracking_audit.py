#!/usr/bin/env python3
"""Tracking audit (the paper's Section 5 on a mid-scale corpus).

Measures HTTP cookies, cookie synchronization, and fingerprinting across
the crawled corpus and prints the paper's Tables 4-5 plus the Figure 4
sync graph.

Run:  python examples/tracking_audit.py [scale]
"""

import sys

from repro import Study, UniverseConfig
from repro.reporting import figure4_ascii, render_table4, render_table5


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    study = Study.build(UniverseConfig(scale=scale))
    corpus = study.corpus_domains()
    print(f"corpus: {len(corpus)} pornographic websites (scale={scale})\n")

    # --- HTTP cookies (§5.1.1) -------------------------------------------------
    stats = study.cookie_stats()
    print(f"{stats.sites_with_cookies_fraction:.0%} of sites install cookies; "
          f"{stats.sites_with_third_party_cookies_fraction:.0%} install "
          "third-party cookies")
    print(f"{stats.id_cookies} potential identifier cookies "
          f"({stats.third_party_id_cookies} third-party); "
          f"{stats.ip_cookies} embed the client IP; "
          f"{stats.geo_cookies} embed geolocation\n")
    print(render_table4(stats))

    # --- Cookie syncing (§5.1.2) -------------------------------------------------
    sync = study.cookie_sync()
    print(f"\ncookie syncing on {len(sync.sites)} sites: "
          f"{sync.pair_count} (origin, destination) pairs, "
          f"{len(sync.origins)} origins, {len(sync.destinations)} destinations")
    print(figure4_ascii(sync, minimum=max(2, int(75 * scale)), top_n=10))

    # --- Fingerprinting (§5.1.3) ---------------------------------------------------
    fingerprinting = study.fingerprinting()
    print(f"\nstrict Englehardt-Narayanan canvas detections: "
          f"{len(fingerprinting.englehardt_scripts)} (the paper also found 0)")
    print(f"canvas fingerprinting via the measureText rule: "
          f"{len(fingerprinting.canvas_scripts)} scripts on "
          f"{len(fingerprinting.canvas_sites)} sites from "
          f"{len(fingerprinting.canvas_services())} third-party services")
    print(f"{fingerprinting.unlisted_canvas_fraction():.0%} of those scripts "
          "are NOT indexed by EasyList/EasyPrivacy")
    print(f"WebRTC usage: {len(fingerprinting.webrtc_scripts)} scripts on "
          f"{len(fingerprinting.webrtc_sites)} sites\n")

    labels = study.porn_labels()
    classifier = study.ats_classifier()
    rows = fingerprinting.per_service_table(
        lambda domain: len(labels.sites_embedding(domain))
    )
    print(render_table5(
        rows,
        is_ats=classifier.matches_domain,
        in_regular_web=lambda domain: False,
    ))


if __name__ == "__main__":
    main()
