"""HTML rendering for the synthetic universe's pages.

Every page is deterministic given (site, client country, verified flag).
The markup deliberately exhibits the patterns the paper's detectors key
on: floating consent overlays, multilingual button labels, privacy-policy
links, account/premium cues, adult-content vocabulary for the corpus
sanitizer, and operator-specific ``<head>`` boilerplate for the TF-IDF
owner clustering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..util import token_for
from .sites import AgeGateSpec, BannerSpec, PornSiteSpec, RegularSiteSpec

__all__ = [
    "render_porn_landing",
    "render_regular_landing",
    "render_policy_page",
    "render_error_page",
    "head_boilerplate",
    "page_manifest",
]

#: Per-language strings (subset large enough for the 8-language detectors).
_STRINGS: Dict[str, Dict[str, str]] = {
    "en": {
        "age_warning": "This website contains adult content. You must be 18 years or older to enter.",
        "age_button": "Enter",
        "age_leave": "Leave",
        "banner_text": "This website uses cookies to improve your experience and deliver personalised advertising.",
        "banner_ok": "Accept",
        "banner_reject": "Decline",
        "privacy_link": "Privacy Policy",
        "login": "Log In",
        "signup": "Sign Up",
        "premium": "Premium",
    },
    "es": {
        "age_warning": "Este sitio contiene contenido para adultos. Debes tener 18 años para entrar.",
        "age_button": "Entrar",
        "age_leave": "Salir",
        "banner_text": "Este sitio utiliza cookies para mejorar su experiencia y mostrar publicidad personalizada.",
        "banner_ok": "Aceptar",
        "banner_reject": "Rechazar",
        "privacy_link": "Política de Privacidad",
        "login": "Iniciar Sesión",
        "signup": "Regístrate",
        "premium": "Premium",
    },
    "fr": {
        "age_warning": "Ce site contient du contenu adulte. Vous devez avoir 18 ans pour entrer.",
        "age_button": "Entrer",
        "age_leave": "Quitter",
        "banner_text": "Ce site utilise des cookies pour améliorer votre expérience.",
        "banner_ok": "Accepter",
        "banner_reject": "Refuser",
        "privacy_link": "Politique de Confidentialité",
        "login": "Connexion",
        "signup": "S'inscrire",
        "premium": "Premium",
    },
    "pt": {
        "age_warning": "Este site contém conteúdo adulto. Você deve ter 18 anos para entrar.",
        "age_button": "Entrar",
        "age_leave": "Sair",
        "banner_text": "Este site usa cookies para melhorar sua experiência.",
        "banner_ok": "Aceitar",
        "banner_reject": "Recusar",
        "privacy_link": "Política de Privacidade",
        "login": "Entrar na Conta",
        "signup": "Cadastre-se",
        "premium": "Premium",
    },
    "ru": {
        "age_warning": "Этот сайт содержит материалы для взрослых. Вам должно быть 18 лет.",
        "age_button": "Войти",
        "age_leave": "Выход",
        "banner_text": "Этот сайт использует файлы cookie для улучшения вашего опыта.",
        "banner_ok": "Принять",
        "banner_reject": "Отказ",
        "privacy_link": "Политика Конфиденциальности",
        "login": "Вход",
        "signup": "Регистрация",
        "premium": "Премиум",
    },
    "it": {
        "age_warning": "Questo sito contiene contenuti per adulti. Devi avere 18 anni per entrare.",
        "age_button": "Entra",
        "age_leave": "Esci",
        "banner_text": "Questo sito utilizza cookie per migliorare la tua esperienza.",
        "banner_ok": "Accetto",
        "banner_reject": "Rifiuto",
        "privacy_link": "Politica sulla Privacy",
        "login": "Accedi",
        "signup": "Registrati",
        "premium": "Premium",
    },
    "de": {
        "age_warning": "Diese Website enthält Inhalte für Erwachsene. Sie müssen 18 Jahre alt sein.",
        "age_button": "Eintreten",
        "age_leave": "Verlassen",
        "banner_text": "Diese Website verwendet Cookies, um Ihr Erlebnis zu verbessern.",
        "banner_ok": "Akzeptieren",
        "banner_reject": "Ablehnen",
        "privacy_link": "Datenschutz Richtlinie",
        "login": "Anmelden",
        "signup": "Registrieren",
        "premium": "Premium",
    },
    "ro": {
        "age_warning": "Acest site conține conținut pentru adulți. Trebuie să ai 18 ani pentru a intra.",
        "age_button": "Accept",
        "age_leave": "Ieșire",
        "banner_text": "Acest site folosește cookie-uri pentru a vă îmbunătăți experiența.",
        "banner_ok": "Accept",
        "banner_reject": "Refuz",
        "privacy_link": "Politica de Confidențialitate",
        "login": "Autentificare",
        "signup": "Înregistrare",
        "premium": "Premium",
    },
}

_ADULT_CATEGORIES = (
    "amateur", "anal", "asian", "bbw", "big tits", "blonde", "brunette",
    "creampie", "cumshot", "ebony", "hardcore", "latina", "lesbian", "milf",
    "teen 18+", "threesome", "vintage", "webcam",
)

_GENERIC_GENERATORS = (
    "WordPress 4.9.8", "KVS 5.1.0", "MechBunny 3.2", "Smart CJ 4",
    "TubeAce 2.8", "custom",
)


def _strings(language: str) -> Dict[str, str]:
    return _STRINGS.get(language, _STRINGS["en"])


def head_boilerplate(site: PornSiteSpec) -> str:
    """Operator-specific ``<head>`` markup (the §4.1 clustering signal)."""
    if site.owner is not None:
        generator = f"{site.owner} Network CMS v2.1"
        theme = site.owner.lower().replace(" ", "-").replace(".", "")
        extra = (
            f'<link rel="stylesheet" href="/themes/{theme}/network.css">'
            f'<meta name="copyright" content="{site.owner}">'
            f'<meta name="network-id" content="{token_for(8, "network", site.owner)}">'
        )
    else:
        generator = _GENERIC_GENERATORS[
            int(token_for(4, "gen", site.domain), 36) % len(_GENERIC_GENERATORS)
        ]
        extra = ""
    return (
        f'<meta charset="utf-8">'
        f'<meta name="generator" content="{generator}">'
        f'<meta name="keywords" content="porn, sex, xxx, adult videos, free porn">'
        f"{extra}"
    )


def _age_gate_html(gate: AgeGateSpec, language: str) -> str:
    strings = _strings(language)
    if gate.mode == "social_login":
        # The verifiable gate (§7.2: pornhub in Russia): no simple button,
        # only a social-network login that the crawler cannot complete.
        return (
            '<div id="age-gate" style="position:fixed;top:0;left:0;'
            'width:100%;height:100%;background:#000c">'
            f"<div class='modal'><h2>{strings['age_warning']}</h2>"
            "<p>Подтвердите свой возраст через аккаунт социальной сети, "
            "привязанный к паспорту.</p>"
            '<button id="social-login" data-gate="social">'
            "Войти через социальную сеть</button>"
            "</div></div>"
        )
    return (
        '<div id="age-gate" style="position:fixed;top:0;left:0;'
        'width:100%;height:100%;background:#000c">'
        f"<div class='modal'><h2>{strings['age_warning']}</h2>"
        f'<button id="age-enter" data-gate="button">{strings["age_button"]}</button>'
        f'<button id="age-leave">{strings["age_leave"]}</button>'
        "</div></div>"
    )


def _banner_html(banner: BannerSpec, language: str, *,
                 policy_available: bool = True) -> str:
    strings = _strings(language)
    buttons = ""
    if banner.banner_type == "confirmation":
        buttons = f'<button class="cc-accept">{strings["banner_ok"]}</button>'
    elif banner.banner_type == "binary":
        buttons = (
            f'<button class="cc-accept">{strings["banner_ok"]}</button>'
            f'<button class="cc-reject">{strings["banner_reject"]}</button>'
        )
    elif banner.banner_type == "slider":
        buttons = (
            '<input type="range" min="0" max="3" value="1" class="cc-level">'
            f'<button class="cc-accept">{strings["banner_ok"]}</button>'
        )
    elif banner.banner_type == "checkbox":
        buttons = (
            '<input type="checkbox" class="cc-purpose" checked>Functional '
            '<input type="checkbox" class="cc-purpose">Advertising '
            f'<button class="cc-accept">{strings["banner_ok"]}</button>'
        )
    link = (f'<a href="/privacy">{strings["privacy_link"]}</a> '
            if policy_available else "")
    return (
        '<div id="cookie-banner" style="position:fixed;bottom:0;left:0;'
        'width:100%;background:#222;color:#fff;padding:8px">'
        f"<span>{strings['banner_text']}</span> {link}{buttons}</div>"
    )


def _embed_tags(embeds: Sequence[Tuple[str, str]]) -> str:
    """Render (kind, url) resource embeds in order."""
    parts = []
    for kind, url in embeds:
        if kind == "script":
            parts.append(f'<script src="{url}"></script>')
        elif kind == "img":
            parts.append(f'<img src="{url}" width="1" height="1" alt="">')
        elif kind == "iframe":
            parts.append(f'<iframe src="{url}" width="300" height="250"></iframe>')
        elif kind == "link":
            parts.append(f'<link rel="stylesheet" href="{url}">')
        else:
            raise ValueError(f"unknown embed kind: {kind!r}")
    return "\n".join(parts)


def page_manifest(embeds: Sequence[Tuple[str, str]]) -> Tuple[Tuple[str, str], ...]:
    """The render manifest matching :func:`_embed_tags`' markup.

    Exactly the crawlable subresource references of a page rendered with
    ``embeds``: the embed list in document order, minus same-document
    relative assets (which the browser never logs).  Every other resource
    tag the landing templates emit uses a ``/``-relative URL, so this *is*
    the page's full fetch list — the manifest-vs-parse property test
    asserts that for every rendered page type.
    """
    return tuple(
        (kind, url) for kind, url in embeds if url and not url.startswith("/")
    )


def render_porn_landing(
    site: PornSiteSpec,
    *,
    embeds: Sequence[Tuple[str, str]],
    show_age_gate: bool,
    show_banner: bool,
    policy_available: bool,
    verified: bool = False,
) -> str:
    """The landing page of a pornographic website."""
    strings = _strings(site.language)
    parts: List[str] = [
        "<html>",
        f"<head><title>{site.domain} - Free Porn Videos</title>",
        head_boilerplate(site),
        "</head><body>",
    ]
    # The caller (the server) decides gate visibility: a verified token only
    # clears button gates, never the verifiable social-login gate.
    if show_age_gate and site.age_gate is not None:
        parts.append(_age_gate_html(site.age_gate, site.language))
    if show_banner and site.banner is not None:
        parts.append(_banner_html(site.banner, site.language,
                                  policy_available=policy_available))

    # Navigation with account / premium cues (§4.1 business models).
    nav = ['<a href="/">Home</a>', '<a href="/categories">Categories</a>']
    if site.has_subscription:
        nav.append(f'<a href="/login">{strings["login"]}</a>')
        nav.append(f'<a href="/signup">{strings["signup"]}</a>')
        nav.append(f'<a href="/premium">{strings["premium"]}</a>')
    parts.append("<nav>" + " | ".join(nav) + "</nav>")
    if site.subscription == "paid":
        parts.append(
            "<div class='paywall'>Join now for $29.95/month — full HD access. "
            "Secure billing by our payment partner.</div>"
        )
    elif site.subscription == "free":
        parts.append("<div class='join'>100% free registration — no credit card.</div>")

    # Adult-content vocabulary: the sanitizer's classification signal.
    categories = " ".join(
        f'<a href="/c/{category.replace(" ", "-")}">{category}</a>'
        for category in _ADULT_CATEGORIES
    )
    parts.append(f"<div class='categories'>{categories}</div>")
    if site.content_category == "proxy":
        parts.append(
            "<p>Mirror and proxy access to the best adult tube sites. "
            "Unblock porn videos from anywhere.</p>"
        )
    elif site.content_category == "cams":
        parts.append("<p>Live sex cams — free adult webcam shows streaming now.</p>")
    else:
        parts.append(
            "<p>Watch free porn videos in HD. New xxx movies added daily. "
            "Adults only — 18+.</p>"
        )

    if site.rta_label:
        parts.append('<meta name="RATING" content="RTA-5042-1996-1400-1577-RTA">')

    parts.append(_embed_tags(embeds))

    footer = ['<a href="/terms">Terms</a>', '<a href="/2257">18 U.S.C. 2257</a>']
    if policy_available:
        footer.append(f'<a href="/privacy">{strings["privacy_link"]}</a>')
    parts.append("<footer>" + " | ".join(footer) + "</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)


def render_regular_landing(
    site: RegularSiteSpec, *, embeds: Sequence[Tuple[str, str]]
) -> str:
    """The landing page of a regular (reference corpus) website."""
    topic = site.category
    return "\n".join(
        [
            "<html>",
            f"<head><title>{site.domain} - {topic} and more</title>",
            '<meta charset="utf-8">',
            f'<meta name="keywords" content="{topic}, articles, daily updates">',
            "</head><body>",
            f"<nav><a href='/'>Home</a> | <a href='/about'>About</a></nav>",
            f"<h1>Welcome to {site.domain}</h1>",
            f"<p>The latest {topic} stories, guides and community discussions. "
            "Updated every day by our editorial team.</p>",
            _embed_tags(embeds),
            "<footer><a href='/privacy'>Privacy Policy</a> | "
            "<a href='/contact'>Contact</a></footer>",
            "</body></html>",
        ]
    )


def render_policy_page(site_domain: str, policy_text: str) -> str:
    paragraphs = "".join(f"<p>{block}</p>" for block in policy_text.split("\n\n"))
    return (
        f"<html><head><title>Privacy Policy - {site_domain}</title></head>"
        f"<body><h1>Privacy Policy</h1>{paragraphs}</body></html>"
    )


def render_error_page(status: int, reason: str) -> str:
    return (
        f"<html><head><title>{status} {reason}</title></head>"
        f"<body><h1>{status} {reason}</h1></body></html>"
    )
