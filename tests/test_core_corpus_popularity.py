"""Tests for §3: corpus compilation, sanitization, and popularity."""

import pytest

from repro.core.corpus import (
    SOURCE_AGGREGATOR,
    SOURCE_ALEXA_CATEGORY,
    SOURCE_KEYWORD,
    build_corpus,
    classify_adult_content,
    compile_candidates,
)
from repro.core.popularity import analyze_popularity, tier_counts


@pytest.fixture(scope="module")
def corpus_result(study):
    return study.corpus()


class TestCandidateCompilation:
    def test_sources_combined(self, universe):
        candidates = compile_candidates(universe)
        by_source = candidates.count_by_source()
        assert by_source.get(SOURCE_AGGREGATOR, 0) > 0
        assert by_source.get(SOURCE_KEYWORD, 0) > 0

    def test_keyword_candidates_contain_keywords(self, universe):
        candidates = compile_candidates(universe)
        for domain, source in candidates.sources.items():
            if source == SOURCE_KEYWORD:
                assert any(
                    keyword in domain
                    for keyword in ("porn", "tube", "sex", "gay", "lesbian",
                                    "mature", "xxx")
                )

    def test_dedup_first_source_wins(self, universe):
        candidates = compile_candidates(universe)
        assert not candidates.add(candidates.domains[0], SOURCE_KEYWORD)

    def test_candidate_count_scales(self, universe):
        candidates = compile_candidates(universe)
        expected = universe.config.scaled(universe.targets.candidates_total)
        assert abs(len(candidates) - expected) <= max(8, expected * 0.05)


class TestAdultClassifier:
    def test_porn_page_classified(self, universe, crawlable_porn):
        from repro.browser.browser import Browser
        from repro.webgen.universe import ClientContext

        browser = Browser(universe, ClientContext("ES", "31.0.0.1"))
        visit = browser.visit(crawlable_porn[0])
        assert classify_adult_content(visit.html)

    def test_regular_page_not_classified(self):
        html = """
        <html><head><meta name="keywords" content="news, sports"></head>
        <body><h1>Essex County News</h1>
        <p>The latest sports stories and weather updates.</p></body></html>
        """
        assert not classify_adult_content(html)

    def test_token_matching_not_substring(self):
        # "Essex" and "Sussex" must not trip the classifier.
        html = "<html><body><p>Essex Sussex Middlesex tube station</p></body></html>"
        assert not classify_adult_content(html)


class TestSanitization:
    def test_corpus_size(self, universe, corpus_result):
        _, sanitized = corpus_result
        expected = universe.config.scaled(universe.targets.sanitized_corpus)
        assert abs(len(sanitized.corpus) - expected) <= max(6, expected * 0.05)

    def test_unresponsive_removed(self, universe, corpus_result):
        _, sanitized = corpus_result
        assert sanitized.unresponsive
        for domain in sanitized.unresponsive:
            site = universe.porn_sites.get(domain)
            if site is not None:
                assert not site.responsive

    def test_non_adult_removed(self, universe, corpus_result):
        _, sanitized = corpus_result
        for domain in sanitized.non_adult:
            assert domain in universe.regular_sites

    def test_no_false_negatives(self, universe, corpus_result):
        """Every responsive porn site survives sanitization."""
        _, sanitized = corpus_result
        kept = set(sanitized.corpus)
        for domain, site in universe.porn_sites.items():
            if site.responsive:
                assert domain in kept


class TestPopularity:
    def test_report_covers_corpus(self, study):
        report = study.popularity()
        assert len(report.sites) == len(study.corpus_domains())

    def test_always_top1m_fraction_near_16_percent(self, study):
        report = study.popularity()
        assert 0.10 <= report.always_top_1m_fraction <= 0.25

    def test_figure1_series_sorted(self, study):
        best, median, presence = study.popularity().figure1_series()
        listed = [rank for rank in best if rank]
        assert listed == sorted(listed)
        assert all(0.0 <= p <= 1.0 for p in presence)

    def test_tier_counts_sum(self, study):
        report = study.popularity()
        counts = tier_counts(report)
        assert sum(counts.values()) == len(report.sites)

    def test_unknown_domain_gets_zero_ranks(self, universe):
        report = analyze_popularity(universe, ["never-ranked.example"])
        assert report.sites[0].best_rank == 0
        assert report.sites[0].tier == 3
