"""Integration tests for the Study orchestrator and reporting layer."""

import pytest

from repro.reporting.figures import (
    bar,
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure4_ascii,
    figure4_edges_csv,
)
from repro.reporting.tables import (
    format_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
    render_table8,
)


class TestStudyCaching:
    def test_logs_are_cached(self, study):
        assert study.porn_log() is study.porn_log()
        assert study.table2() is study.table2()

    def test_corpus_consistent_with_popularity(self, study):
        assert len(study.popularity().sites) == len(study.corpus_domains())

    def test_per_country_logs_independent(self, study):
        es = study.porn_log("ES")
        ru = study.porn_log("RU")
        assert es is not ru
        assert es.country_code == "ES"
        assert ru.country_code == "RU"

    def test_table2_corpus_sizes(self, study, universe):
        table = study.table2()
        config = universe.config
        expected_porn = config.scaled(config.targets.crawlable_corpus)
        assert abs(table.porn_corpus - expected_porn) <= expected_porn * 0.1

    def test_table3_site_counts_sum_to_crawled(self, study):
        table = study.table3()
        total = sum(row.site_count for row in table.rows)
        assert total == len(study.porn_log().successful_visits())

    def test_figure3_sorted_by_porn_prevalence(self, study):
        bars = study.figure3(top_n=10)
        fractions = [entry.porn_fraction for entry in bars]
        assert fractions == sorted(fractions, reverse=True)

    def test_attribution_covers_majority(self, study):
        attribution = study.porn_attribution()
        assert attribution.attributed_fraction() > 0.55

    def test_best_rank_helper(self, study):
        domain = study.corpus_domains()[0]
        assert study.best_rank(domain) >= 0


class TestTableRendering:
    def test_format_table_alignment(self):
        text = format_table(("A", "Bee"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")

    def test_render_table2(self, study):
        text = render_table2(study.table2())
        assert "Third-party ATS" in text
        assert "Corpus size" in text

    def test_render_table3(self, study):
        text = render_table3(study.table3())
        assert "10k-100k" in text

    def test_render_table4(self, study):
        text = render_table4(study.cookie_stats())
        assert "% cookies with user IP" in text

    def test_render_table6(self, study):
        text = render_table6(study.https_report())
        assert "HTTPS" in text
        assert "Porn websites" in text

    def test_render_table8(self, study):
        text = render_table8(study.banners("ES"), study.banners("US"))
        assert "No Option" in text
        assert "Total" in text

    def test_render_table1(self, study):
        text = render_table1(study.owners(), study.best_rank)
        assert "# sites" in text


class TestFigureRendering:
    def test_bar_widths(self):
        assert bar(0.0, width=10) == "." * 10
        assert bar(1.0, width=10) == "#" * 10
        assert bar(2.0, width=4) == "####"  # clamped

    def test_figure1_csv_header(self, study):
        csv = figure1_csv(study.popularity())
        assert csv.startswith("site,best_rank,median_rank")
        assert len(csv.splitlines()) == len(study.popularity().sites) + 1

    def test_figure1_ascii(self, study):
        text = figure1_ascii(study.popularity())
        assert "always in top-1M" in text

    def test_figure3_csv(self, study):
        csv = figure3_csv(study.figure3(top_n=5))
        assert csv.startswith("organization,")
        assert len(csv.splitlines()) <= 6

    def test_figure3_ascii(self, study):
        text = figure3_ascii(study.figure3(top_n=3))
        assert "P " in text and "R " in text

    def test_figure4_csv_threshold(self, study):
        csv = figure4_edges_csv(study.cookie_sync(), minimum=1)
        assert csv.startswith("origin,destination")

    def test_figure4_ascii(self, study):
        text = figure4_ascii(study.cookie_sync(), minimum=1)
        assert "cookie syncing" in text
